"""Gateway consolidation: keep performance while removing 10x gateways.

Reproduces the operational story of paper §5.3 / Figure 9: because
SwitchV2P absorbs most translations inside the network, an operator can
shrink the gateway fleet by an order of magnitude with nearly unchanged
FCT, while the gateway-driven baseline degrades (and starts dropping
packets when the remaining gateways saturate).

Run:  python examples/gateway_consolidation.py
"""

from repro.experiments import FigureScale, figure9
from repro.metrics.reporting import render_table


def main() -> None:
    scale = FigureScale(num_vms=256, hadoop_flows=2000)
    rows = figure9(scale, gateways_per_pod=(10, 2, 1),
                   schemes=("SwitchV2P", "NoCache"))
    table = [
        [int(row.x_value), row.scheme, f"{row.hit_rate:.1%}",
         f"{row.fct_improvement:.2f}x", f"{row.first_packet_improvement:.2f}x",
         row.result.drops]
        for row in rows
    ]
    print(render_table(
        ["#gateways", "scheme", "hit rate", "FCT vs NoCache",
         "first-pkt vs NoCache", "drops"],
        table,
        title="Shrinking the gateway fleet (Hadoop, cache=8x addr space)"))
    print()
    v2p = [r for r in rows if r.scheme == "SwitchV2P"]
    most, fewest = v2p[0], v2p[-1]
    delta = (fewest.result.avg_fct_ns / most.result.avg_fct_ns - 1) * 100
    print(f"SwitchV2P FCT change going from {int(most.x_value)} to "
          f"{int(fewest.x_value)} gateways: {delta:+.1f}%")


if __name__ == "__main__":
    main()
