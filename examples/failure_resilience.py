"""Switch failures: opportunistic caching vs the in-switch DHT.

The paper's §2.4 explains why SwitchV2P caches rather than storing the
V2P database in switch memory: a cache lost to a switch failure costs
only performance (misses fall back to the gateway), while a DHT shard
lost with its resolver black-holes part of the address space.

This example warms both designs, fails a spine switch, and shows
SwitchV2P delivering everything while the DHT stalls whenever the
failed switch was a resolver.

Run:  python examples/failure_resilience.py
"""

from repro import (
    DhtStore,
    FatTreeSpec,
    FlowSpec,
    NetworkConfig,
    SwitchV2P,
    TrafficPlayer,
    VirtualNetwork,
    usec,
)

NUM_VMS = 128


def run(scheme, fail_switch_picker):
    network = VirtualNetwork(NetworkConfig(spec=FatTreeSpec(), seed=11), scheme)
    network.place_vms(NUM_VMS)
    player = TrafficPlayer(network)

    # Warm up: a few flows to destination 40.
    player.add_flows([FlowSpec(src_vip=i, dst_vip=40, size_bytes=4_000,
                               start_ns=i * usec(100)) for i in range(4)])
    network.engine.run(until=usec(2_000))
    warm_complete = sum(1 for f in player.flows if f.completed)

    # Fail a switch, then keep sending to the same destination.
    victim = fail_switch_picker(network, scheme)
    victim.failed = True
    player.add_flows([FlowSpec(src_vip=10 + i, dst_vip=40, size_bytes=4_000,
                               start_ns=network.engine.now + i * usec(100))
                      for i in range(4)])
    network.run(until=network.engine.now + 20_000_000)
    total_complete = sum(1 for f in player.flows if f.completed)
    return victim, warm_complete, total_complete, len(player.flows)


def pick_any_spine(network, scheme):
    return network.fabric.spines[(0, 1)]


def pick_resolver(network, scheme):
    return scheme.resolver_of(40)


def main() -> None:
    for name, scheme, picker in (
        ("SwitchV2P", SwitchV2P(total_cache_slots=1024), pick_any_spine),
        ("DhtStore", DhtStore(), pick_resolver),
    ):
        victim, warm, total, flows = run(scheme, picker)
        print(f"--- {name} ---")
        print(f"  failed switch:          {victim.name}")
        print(f"  flows before failure:   {warm}/4 complete")
        print(f"  flows overall:          {total}/{flows} complete")
        if total < flows:
            print("  -> the DHT black-holes VIPs whose resolver died "
                  "(the paper's reason for caching instead)")
        else:
            print("  -> opportunistic caching: the failure cost only "
                  "cache state, not reachability")
        print()


if __name__ == "__main__":
    main()
