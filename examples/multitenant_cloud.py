"""Multi-tenant deployment: per-VPC cache partitions and hybrid hosts.

Demonstrates the paper's §4 deployment discussions on one network:

* two VPCs share the fabric, each with a private cache partition —
  the operator enables caching only for the "premium" tenant and both
  still communicate correctly;
* the hybrid scheme (SwitchV2P + Andromeda-style host rules) offloads
  a hot destination to the sender's hypervisor, after which the
  in-switch entry naturally goes cold.

Run:  python examples/multitenant_cloud.py
"""

from repro import (
    FatTreeSpec,
    FlowSpec,
    HybridSwitchV2P,
    MultiTenantSwitchV2P,
    NetworkConfig,
    TenantRegistry,
    TrafficPlayer,
    VirtualNetwork,
    usec,
)


def tenant_demo() -> None:
    registry = TenantRegistry()
    premium = registry.add_tenant(1, 128)   # VIPs 0-127
    standard = registry.add_tenant(2, 128)  # VIPs 128-255

    scheme = MultiTenantSwitchV2P(
        total_cache_slots=4 * registry.total_vips,
        registry=registry,
        enabled_tenants={1},  # operator policy: cache only tenant 1
    )
    network = VirtualNetwork(NetworkConfig(spec=FatTreeSpec(), seed=7), scheme)
    network.place_vms(registry.total_vips)

    player = TrafficPlayer(network)
    flows = []
    for i in range(10):
        flows.append(FlowSpec(src_vip=premium[0], dst_vip=premium[50],
                              size_bytes=4_000, start_ns=i * usec(150)))
        flows.append(FlowSpec(src_vip=standard[0], dst_vip=standard[50],
                              size_bytes=4_000, start_ns=i * usec(150) + usec(60)))
    player.add_flows(flows)
    player.run()

    stats = scheme.tenant_hit_stats()
    lookups, hits = stats.get(1, (0, 0))
    print("--- per-VPC cache partitions ---")
    print(f"  tenant 1 (cached):   {hits} in-network hits")
    print(f"  tenant 2 (policy off): no partitions, all via gateway")
    print(f"  all flows completed: {network.collector.completion_rate:.0%}")
    print()


def hybrid_demo() -> None:
    scheme = HybridSwitchV2P(total_cache_slots=1024, offload_threshold=8,
                             install_delay_ns=usec(500))
    network = VirtualNetwork(NetworkConfig(spec=FatTreeSpec(), seed=7), scheme)
    network.place_vms(256)

    player = TrafficPlayer(network)
    player.add_flows([FlowSpec(src_vip=3, dst_vip=77, size_bytes=3_000,
                               start_ns=i * usec(200)) for i in range(15)])
    player.run()

    host = network.host_of(3)
    print("--- hybrid host offloading ---")
    print(f"  host rules installed:  {scheme.rules_installed}")
    print(f"  host now resolves:     {sorted(scheme.host_rules(host))}")
    print(f"  gateway packets total: {network.collector.gateway_arrivals}")
    print("  (once the host resolves locally, the shadowed switch "
          "entries stop being refreshed and age out)")


def main() -> None:
    tenant_demo()
    hybrid_demo()


if __name__ == "__main__":
    main()
