"""A tour of the paper's five workloads through SwitchV2P.

Generates each trace (Hadoop, WebSearch, Alibaba RPC, Microbursts, 8K
Video), reports its destination-reuse characteristics (§5 "Address
reuse characteristics"), runs it through SwitchV2P at a 50%-of-address-
space cache, and shows where in the topology the cache hits landed
(Table 5's story: ToR-heavy for TCP traces, more core/spine for UDP).

Run:  python examples/workload_tour.py
"""

from repro.experiments import FigureScale, build_trace, ft8_spec, ft16_spec
from repro.experiments.runner import run_experiment
from repro.metrics.reporting import render_table
from repro.net.node import Layer
from repro.traces import summarize

TRACES = ("hadoop", "websearch", "alibaba", "microbursts", "video")


def main() -> None:
    scale = FigureScale(num_vms=256, hadoop_flows=2000, websearch_flows=80,
                        microburst_bursts=200, alibaba_rpcs=1200,
                        alibaba_services=32)
    # The paper's 50% configuration gives each switch 64 entries
    # (10240 VIPs / 80 switches); ratio 4 reproduces a similar
    # per-switch share at this example's reduced address space.
    cache_ratio = 4.0
    rows = []
    for trace in TRACES:
        flows, num_vms = build_trace(trace, scale)
        summary = summarize(flows, num_vms)
        spec = ft16_spec() if trace == "alibaba" else ft8_spec()
        result = run_experiment(spec, "SwitchV2P", flows, num_vms,
                                cache_ratio=cache_ratio, seed=scale.seed,
                                keep_network=True, trace_name=trace)
        shares = result.collector.hit_share_by_layer()
        rows.append([
            trace,
            summary.num_flows,
            f"{summary.reuse_fraction:.0%}",
            f"{result.hit_rate:.1%}",
            f"{shares[Layer.CORE]:.0%}",
            f"{shares[Layer.SPINE]:.0%}",
            f"{shares[Layer.TOR]:.0%}",
            f"{result.avg_fct_ns / 1000:.0f}",
        ])
    print(render_table(
        ["trace", "flows", "dst reuse", "hit rate", "core hits",
         "spine hits", "tor hits", "avg FCT [us]"],
        rows,
        title=f"SwitchV2P across the paper's workloads (cache = "
              f"{cache_ratio:g}x address space)"))


if __name__ == "__main__":
    main()
