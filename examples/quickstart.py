"""Quickstart: run SwitchV2P on a fat-tree and read the core metrics.

Builds the paper's FT8 fabric, places VMs, plays a handful of flows
through SwitchV2P and a NoCache baseline, and prints hit rate, average
FCT, first-packet latency and packet stretch for both.

Run:  python examples/quickstart.py
"""

from repro import (
    FatTreeSpec,
    FlowSpec,
    NetworkConfig,
    NoCache,
    SwitchV2P,
    TrafficPlayer,
    VirtualNetwork,
    usec,
)

NUM_VMS = 256
FLOWS = [
    # Two flows from different senders to the same destination: the
    # second benefits from mappings the first left in the network.
    FlowSpec(src_vip=1, dst_vip=100, size_bytes=20_000, start_ns=0),
    FlowSpec(src_vip=2, dst_vip=100, size_bytes=20_000, start_ns=usec(200)),
    # An RPC: the response exercises source learning at the ToRs.
    FlowSpec(src_vip=3, dst_vip=101, size_bytes=2_000, start_ns=usec(50),
             response_bytes=8_000),
    # Unrelated cross-pod traffic.
    FlowSpec(src_vip=200, dst_vip=17, size_bytes=50_000, start_ns=usec(100)),
]


def run(scheme) -> None:
    network = VirtualNetwork(NetworkConfig(spec=FatTreeSpec(), seed=42), scheme)
    network.place_vms(NUM_VMS)
    player = TrafficPlayer(network)
    player.add_flows(list(FLOWS))
    player.run()

    collector = network.collector
    name = getattr(scheme, "name", type(scheme).__name__)
    print(f"--- {name} ---")
    print(f"  flows completed:      {collector.completion_rate:.0%}")
    print(f"  in-network hit rate:  {collector.hit_rate:.1%}")
    print(f"  avg FCT:              {collector.average_fct_ns() / 1000:.1f} us")
    print(f"  avg first-packet:     "
          f"{collector.average_first_packet_latency_ns() / 1000:.1f} us")
    print(f"  avg packet stretch:   {collector.average_stretch():.1f} switches")
    print(f"  gateway packets:      {collector.gateway_arrivals}")
    print()


def main() -> None:
    # Aggregate cache budget = 8x the address space, split over all 80
    # switches (the paper sweeps 1% ... 1500x; see benchmarks/).
    run(SwitchV2P(total_cache_slots=8 * NUM_VMS))
    run(NoCache())


if __name__ == "__main__":
    main()
