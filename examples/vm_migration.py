"""Live VM migration under incast: the invalidation protocol at work.

Reproduces the paper's §5.2 scenario: many UDP senders target one VM,
which migrates to another rack mid-trace.  Compares NoCache, OnDemand
and three SwitchV2P variants — without invalidation packets, without
the timestamp vector, and the full protocol — showing how targeted
invalidations cut misdeliveries while the timestamp vector caps the
invalidation traffic (Table 4).

Run:  python examples/vm_migration.py
"""

from repro.experiments import run_migration_table
from repro.metrics.reporting import render_table
from repro.traces import IncastTraceParams


def main() -> None:
    # 16 senders x 500 packets over 1 ms = 64 Gbps of incast: heavy,
    # but under the destination NIC's 100 Gbps so the latency effect
    # of gateway detours stays visible (as in the paper's Table 4).
    params = IncastTraceParams(num_senders=16, packets_per_sender=500)
    rows = run_migration_table(params)
    base = rows[0]  # NoCache normalizes the table, as in the paper
    table = []
    for row in rows:
        table.append([
            row.label,
            f"{row.gateway_packet_fraction:.1%}",
            f"{row.avg_packet_latency_ns / base.avg_packet_latency_ns:.2f}x",
            f"{(row.last_misdelivered_arrival_ns or 0) / 1000:.0f}",
            f"{row.misdelivered_packets / max(1, base.misdelivered_packets):.1f}x",
            row.invalidation_packets,
        ])
    print(render_table(
        ["variant", "gateway pkts", "avg pkt latency",
         "last misdelivery [us]", "misdelivered", "invalidations"],
        table,
        title=f"VM migration at t=500us ({params.num_senders} senders, "
              f"{params.total_packets} packets)"))
    print()
    full, no_tsvec = rows[-1], rows[-2]
    if no_tsvec.invalidation_packets:
        saving = no_tsvec.invalidation_packets / max(1, full.invalidation_packets)
        print(f"Timestamp vector cut invalidation packets by {saving:.0f}x "
              f"({no_tsvec.invalidation_packets} -> "
              f"{full.invalidation_packets}) with identical latency.")


if __name__ == "__main__":
    main()
