"""8K video streaming workload (paper §5 "Datasets").

64 constant-rate UDP senders at 48 Mbps each, with disjoint
source/destination pairs — zero destination reuse, so in-network
caching cannot improve first-packet latency or FCT here; its benefit is
purely the reduced gateway load (§5.1 "Benefits of moving mappings to
traffic").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class VideoTraceParams:
    """Parameters for the video-streaming generator."""

    num_vms: int = 1024
    num_streams: int = 64
    stream_rate_bps: float = 48e6
    duration_ns: int = 2_000_000
    start_offset_ns: int = 0

    def __post_init__(self) -> None:
        if self.num_vms < 2 * self.num_streams:
            raise ValueError("need 2 VMs per stream for disjoint pairs")


def generate(params: VideoTraceParams, rng: np.random.Generator) -> list[FlowSpec]:
    """Generate disjoint constant-rate streams."""
    vips = rng.permutation(params.num_vms)[: 2 * params.num_streams]
    size = max(1, int(params.stream_rate_bps * params.duration_ns / 8e9))
    flows = []
    for s in range(params.num_streams):
        flows.append(FlowSpec(
            src_vip=int(vips[2 * s]),
            dst_vip=int(vips[2 * s + 1]),
            size_bytes=size,
            start_ns=params.start_offset_ns,
            transport="udp",
            udp_rate_bps=params.stream_rate_bps,
        ))
    return flows
