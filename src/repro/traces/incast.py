"""Incast workload for the VM-migration experiment (paper §5.2).

64 UDP senders on distinct physical servers all target one destination
VM; halfway through the 1 ms trace the VM migrates to a different rack.
The experiment measures gateway load, packet latency, misdelivered
packets and invalidation-packet counts across scheme variants
(Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class IncastTraceParams:
    """Parameters for the migration incast.

    Defaults reproduce Table 4: 64 senders, 64K packets over 1 ms
    (i.e. 1K packets per sender), migration at 500 us.  ``num_senders``
    and ``packets_per_sender`` shrink for benchmark scale.
    """

    num_senders: int = 64
    packets_per_sender: int = 1000
    packet_bytes: int = 1_000
    duration_ns: int = 1_000_000
    migration_time_ns: int = 500_000
    destination_vip: int = 0

    @property
    def total_packets(self) -> int:
        return self.num_senders * self.packets_per_sender


def generate(params: IncastTraceParams, rng: np.random.Generator,
             sender_vips: list[int]) -> list[FlowSpec]:
    """Generate one UDP flow per sender, paced to span the duration.

    Args:
        sender_vips: VIPs of the senders — the experiment places each
            on a distinct physical server, so the caller supplies VIPs
            with that placement.
    """
    if len(sender_vips) < params.num_senders:
        raise ValueError("not enough sender VIPs for the requested fan-in")
    flow_bytes = params.packets_per_sender * params.packet_bytes
    # Rate so each sender's packets exactly span the trace duration.
    rate_bps = flow_bytes * 8e9 / params.duration_ns
    flows = []
    for s in range(params.num_senders):
        flows.append(FlowSpec(
            src_vip=int(sender_vips[s]),
            dst_vip=params.destination_vip,
            size_bytes=flow_bytes,
            start_ns=int(rng.integers(0, 1_000)),
            transport="udp",
            udp_rate_bps=rate_bps,
        ))
    return flows
