"""WebSearch workload (DCTCP trace; paper §5 "Datasets").

Mostly heavy flows with minimal cross-flow destination sharing — at
full scale only ~48% of VMs are a destination at all, and almost none
recur.  The benefit of SwitchV2P here comes from moving mappings closer
to the traffic (shorter packet stretch), not from cross-flow reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.base import draw_pairs
from repro.traces.distributions import (
    WEBSEARCH_CDF,
    load_to_arrival_rate,
    mean_size,
    poisson_arrival_times,
    sample_sizes,
)
from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class WebSearchTraceParams:
    """Parameters for the WebSearch generator (defaults are bench scale)."""

    num_vms: int = 1024
    num_flows: int = 400
    num_servers: int = 128
    link_bps: float = 100e9
    load: float = 0.30
    start_offset_ns: int = 0


def generate(params: WebSearchTraceParams, rng: np.random.Generator) -> list[FlowSpec]:
    """Generate the WebSearch flow list."""
    sizes = sample_sizes(WEBSEARCH_CDF, params.num_flows, rng)
    rate = load_to_arrival_rate(params.load, params.num_servers, params.link_bps,
                                mean_size(WEBSEARCH_CDF))
    starts = poisson_arrival_times(rate, params.num_flows, rng)
    sources, destinations = draw_pairs(params.num_vms, params.num_flows, rng)
    return [
        FlowSpec(
            src_vip=int(sources[i]),
            dst_vip=int(destinations[i]),
            size_bytes=int(sizes[i]),
            start_ns=params.start_offset_ns + int(starts[i]),
        )
        for i in range(params.num_flows)
    ]
