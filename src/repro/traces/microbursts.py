"""Synthetic UDP microburst workload (paper §5 "Datasets").

Mice UDP flows arriving in short fan-in bursts, with the burst-duration
distribution tuned so the 99th percentile is ~158 us, matching the
paper's synthetic trace (which follows the measurement literature on
data-center microbursts).  Popular destinations recur across bursts,
giving the moderate cross-flow reuse the paper reports (2.6K VMs appear
as destinations of 10+ flows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.traces.distributions import poisson_arrival_times
from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class MicroburstTraceParams:
    """Parameters for the microburst generator.

    Attributes:
        burst_fanin: senders converging on one destination per burst.
        p99_burst_duration_ns: target 99th-percentile burst duration
            (158 us in the paper).
        dst_zipf: skew of destination popularity across bursts.
    """

    num_vms: int = 1024
    num_bursts: int = 400
    burst_fanin: int = 8
    flow_bytes: int = 3_000
    udp_rate_bps: float = 1e9
    burst_rate_per_ns: float = 0.00002
    p99_burst_duration_ns: int = 158_000
    dst_zipf: float = 1.0
    start_offset_ns: int = 0


def generate(params: MicroburstTraceParams, rng: np.random.Generator) -> list[FlowSpec]:
    """Generate the burst flow list."""
    starts = poisson_arrival_times(params.burst_rate_per_ns, params.num_bursts, rng)
    ranks = np.arange(1, params.num_vms + 1, dtype=np.float64)
    weights = ranks ** (-params.dst_zipf)
    weights /= weights.sum()
    popularity = rng.permutation(params.num_vms)
    # Exponential burst-duration model: p99 = -mean * ln(0.01).
    mean_duration = params.p99_burst_duration_ns / (-math.log(0.01))
    flows = []
    for b in range(params.num_bursts):
        dst = int(popularity[rng.choice(params.num_vms, p=weights)])
        duration = rng.exponential(mean_duration)
        senders = rng.choice(params.num_vms, params.burst_fanin, replace=False)
        offsets = rng.random(params.burst_fanin) * duration
        for sender, offset in zip(senders, offsets):
            src = int(sender)
            if src == dst:
                src = (src + 1) % params.num_vms
            flows.append(FlowSpec(
                src_vip=src,
                dst_vip=dst,
                size_bytes=params.flow_bytes,
                start_ns=params.start_offset_ns + int(starts[b]) + int(offset),
                transport="udp",
                udp_rate_bps=params.udp_rate_bps,
            ))
    return flows
