"""Common trace-generation machinery.

Each workload module produces a list of
:class:`~repro.transport.flow.FlowSpec` from a parameter dataclass and
a seeded RNG stream, so traces are reproducible and scalable: the
benchmark defaults shrink flow counts to keep pure-Python simulation
fast, while full-scale parameters match the paper (documented in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class TraceSummary:
    """Destination-reuse statistics of a generated trace (§5 analysis)."""

    num_flows: int
    num_vms: int
    destinations: int
    destinations_reused: int
    mean_flow_bytes: float

    @property
    def reuse_fraction(self) -> float:
        """Share of destinations appearing in at least two flows."""
        if self.destinations == 0:
            return 0.0
        return self.destinations_reused / self.destinations


def summarize(flows: list[FlowSpec], num_vms: int) -> TraceSummary:
    """Compute the destination-reuse characteristics of a trace."""
    counts: dict[int, int] = {}
    total_bytes = 0
    for flow in flows:
        counts[flow.dst_vip] = counts.get(flow.dst_vip, 0) + 1
        total_bytes += flow.size_bytes
    reused = sum(1 for c in counts.values() if c >= 2)
    mean = total_bytes / len(flows) if flows else 0.0
    return TraceSummary(
        num_flows=len(flows),
        num_vms=num_vms,
        destinations=len(counts),
        destinations_reused=reused,
        mean_flow_bytes=mean,
    )


def draw_pairs(num_vms: int, count: int, rng: np.random.Generator,
               dst_zipf: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Draw ``count`` (src, dst) VIP pairs with src != dst.

    Args:
        dst_zipf: 0 for uniform destinations (the paper's Hadoop /
            WebSearch setup); >0 applies Zipf-like skew over a random
            permanent popularity ranking of the VMs.
    """
    if num_vms < 2:
        raise ValueError("need at least two VMs to form flows")
    sources = rng.integers(0, num_vms, count)
    if dst_zipf > 0.0:
        ranks = np.arange(1, num_vms + 1, dtype=np.float64)
        weights = ranks ** (-dst_zipf)
        weights /= weights.sum()
        popularity = rng.permutation(num_vms)
        destinations = popularity[rng.choice(num_vms, count, p=weights)]
    else:
        destinations = rng.integers(0, num_vms, count)
    # Resolve src == dst collisions by shifting the destination.
    collisions = sources == destinations
    destinations = np.where(collisions, (destinations + 1) % num_vms, destinations)
    return sources.astype(np.int64), destinations.astype(np.int64)
