"""Trace persistence: save and load flow lists as JSON lines.

Generated traces are the experiment inputs; persisting them lets a run
be archived, diffed and replayed exactly (including across machines),
and lets externally produced traces be fed into the simulator.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.transport.flow import FlowSpec

_FIELDS = ("src_vip", "dst_vip", "size_bytes", "start_ns", "transport",
           "udp_rate_bps", "response_bytes", "flow_id")


def save_flows(path: str | Path, flows: Iterable[FlowSpec]) -> int:
    """Write flows to ``path`` as JSON lines; returns the count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for flow in flows:
            record = {field: getattr(flow, field) for field in _FIELDS}
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_flows(path: str | Path) -> list[FlowSpec]:
    """Read flows written by :func:`save_flows`.

    Raises:
        ValueError: on malformed lines or unknown fields.
    """
    path = Path(path)
    flows = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid JSON: {error}") from None
            unknown = set(record) - set(_FIELDS)
            if unknown:
                raise ValueError(f"{path}:{line_number}: unknown fields "
                                 f"{sorted(unknown)}")
            try:
                flows.append(FlowSpec(**record))
            except (TypeError, ValueError) as error:
                raise ValueError(
                    f"{path}:{line_number}: invalid flow record: {error}"
                ) from None
    return flows


def trace_stats(flows: list[FlowSpec]) -> dict[str, float]:
    """Summary statistics for a flow list (for CLI inspection)."""
    if not flows:
        return {"flows": 0}
    sizes = [flow.size_bytes for flow in flows]
    starts = [flow.start_ns for flow in flows]
    destinations = {flow.dst_vip for flow in flows}
    return {
        "flows": len(flows),
        "total_bytes": float(sum(sizes)),
        "mean_bytes": sum(sizes) / len(sizes),
        "max_bytes": float(max(sizes)),
        "duration_ns": float(max(starts) - min(starts)),
        "distinct_destinations": float(len(destinations)),
        "tcp_flows": float(sum(1 for f in flows if f.transport == "tcp")),
        "udp_flows": float(sum(1 for f in flows if f.transport == "udp")),
    }
