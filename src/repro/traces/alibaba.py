"""Alibaba microservice RPC workload (paper §5 "Datasets").

The paper replays a prefix of the Alibaba microservice call trace
(Luo et al., SoCC'21), whose headline property is extreme skew: ~95% of
requests target ~5% of microservices, producing very high cross-flow
destination reuse (18K+ VMs appear as destinations of 10+ flows).

We synthesize an equivalent workload: services with Zipf-distributed
popularity, several containers per service, and request/response RPC
pairs (small request, small response).  The response flow exercises
source learning at ToRs — the mechanism the paper credits for
SwitchV2P's Alibaba gains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.distributions import poisson_arrival_times
from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class AlibabaTraceParams:
    """Parameters for the synthetic microservice RPC generator.

    Attributes:
        num_services: distinct microservices.
        containers_per_service: VIPs per service; total VMs is the
            product.
        zipf_exponent: popularity skew across callee services (~1.1
            reproduces the 95/5 concentration of the real trace).
        rpc_rate_per_ns: aggregate RPC arrival rate.
        chain_probability: probability that a callee issues a dependent
            sub-RPC (the real trace's microservice call chains); chains
            extend geometrically up to ``max_chain_depth``.
        chain_gap_ns: service-time offset before a chained call starts.
    """

    num_services: int = 64
    containers_per_service: int = 16
    num_rpcs: int = 4000
    zipf_exponent: float = 1.1
    request_bytes: int = 2_000
    response_bytes: int = 8_000
    rpc_rate_per_ns: float = 0.002
    chain_probability: float = 0.0
    max_chain_depth: int = 3
    chain_gap_ns: int = 15_000
    start_offset_ns: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.chain_probability < 1.0:
            raise ValueError("chain_probability must be in [0, 1)")
        if self.max_chain_depth < 1:
            raise ValueError("max_chain_depth must be >= 1")

    @property
    def num_vms(self) -> int:
        return self.num_services * self.containers_per_service


def generate(params: AlibabaTraceParams, rng: np.random.Generator) -> list[FlowSpec]:
    """Generate request flows; responses are spawned on completion."""
    num_services = params.num_services
    ranks = np.arange(1, num_services + 1, dtype=np.float64)
    weights = ranks ** (-params.zipf_exponent)
    weights /= weights.sum()
    starts = poisson_arrival_times(params.rpc_rate_per_ns, params.num_rpcs, rng)
    callee_services = rng.choice(num_services, params.num_rpcs, p=weights)
    caller_vips = rng.integers(0, params.num_vms, params.num_rpcs)
    callee_offsets = rng.integers(0, params.containers_per_service, params.num_rpcs)
    flows = []
    for i in range(params.num_rpcs):
        callee = int(callee_services[i]) * params.containers_per_service \
            + int(callee_offsets[i])
        caller = int(caller_vips[i])
        if caller == callee:
            caller = (caller + 1) % params.num_vms
        start = params.start_offset_ns + int(starts[i])
        flows.append(FlowSpec(
            src_vip=caller,
            dst_vip=callee,
            size_bytes=params.request_bytes,
            start_ns=start,
            response_bytes=params.response_bytes,
        ))
        # Microservice call chains: the callee fans out to further
        # services with geometric depth.
        depth = 1
        chain_caller = callee
        while (depth < params.max_chain_depth
               and params.chain_probability > 0.0
               and rng.random() < params.chain_probability):
            next_service = int(rng.choice(num_services, p=weights))
            next_callee = (next_service * params.containers_per_service
                           + int(rng.integers(0, params.containers_per_service)))
            if next_callee == chain_caller:
                next_callee = (next_callee + 1) % params.num_vms
            start += params.chain_gap_ns
            flows.append(FlowSpec(
                src_vip=chain_caller,
                dst_vip=next_callee,
                size_bytes=params.request_bytes,
                start_ns=start,
                response_bytes=params.response_bytes,
            ))
            chain_caller = next_callee
            depth += 1
    return flows
