"""Workload generators for the paper's five traces plus the incast."""

from repro.traces import alibaba, hadoop, incast, microbursts, video, websearch
from repro.traces.alibaba import AlibabaTraceParams
from repro.traces.io import load_flows, save_flows, trace_stats
from repro.traces.base import TraceSummary, draw_pairs, summarize
from repro.traces.distributions import (
    HADOOP_CDF,
    WEBSEARCH_CDF,
    load_to_arrival_rate,
    mean_size,
    poisson_arrival_times,
    sample_sizes,
    validate_cdf,
)
from repro.traces.hadoop import HadoopTraceParams
from repro.traces.incast import IncastTraceParams
from repro.traces.spec import TRACE_REGISTRY, TraceSpec
from repro.traces.microbursts import MicroburstTraceParams
from repro.traces.video import VideoTraceParams
from repro.traces.websearch import WebSearchTraceParams

__all__ = [
    "hadoop",
    "websearch",
    "alibaba",
    "microbursts",
    "video",
    "incast",
    "HadoopTraceParams",
    "WebSearchTraceParams",
    "AlibabaTraceParams",
    "MicroburstTraceParams",
    "VideoTraceParams",
    "IncastTraceParams",
    "TraceSpec",
    "TRACE_REGISTRY",
    "TraceSummary",
    "summarize",
    "draw_pairs",
    "HADOOP_CDF",
    "WEBSEARCH_CDF",
    "sample_sizes",
    "validate_cdf",
    "mean_size",
    "poisson_arrival_times",
    "load_to_arrival_rate",
    "save_flows",
    "load_flows",
    "trace_stats",
]
