"""Hadoop workload (Facebook data-center trace; paper §5 "Datasets").

Short flows with high cross-flow destination reuse: at full scale the
paper draws ~100K flows over 10,240 VMs at 30% network load, so nearly
every VM recurs as a destination — the property SwitchV2P's in-network
sharing exploits most.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.base import draw_pairs
from repro.traces.distributions import (
    HADOOP_CDF,
    load_to_arrival_rate,
    mean_size,
    poisson_arrival_times,
    sample_sizes,
)
from repro.transport.flow import FlowSpec


@dataclass(frozen=True)
class HadoopTraceParams:
    """Parameters for the Hadoop trace generator.

    Defaults are benchmark scale; the paper-scale settings are
    ``num_vms=10240, num_flows=99297, num_servers=128``.
    """

    num_vms: int = 1024
    num_flows: int = 4000
    num_servers: int = 128
    link_bps: float = 100e9
    load: float = 0.30
    start_offset_ns: int = 0

    def __post_init__(self) -> None:
        if self.num_flows < 0:
            raise ValueError("flow count cannot be negative")


def generate(params: HadoopTraceParams, rng: np.random.Generator) -> list[FlowSpec]:
    """Generate the Hadoop flow list."""
    sizes = sample_sizes(HADOOP_CDF, params.num_flows, rng)
    rate = load_to_arrival_rate(params.load, params.num_servers, params.link_bps,
                                mean_size(HADOOP_CDF))
    starts = poisson_arrival_times(rate, params.num_flows, rng)
    sources, destinations = draw_pairs(params.num_vms, params.num_flows, rng)
    return [
        FlowSpec(
            src_vip=int(sources[i]),
            dst_vip=int(destinations[i]),
            size_bytes=int(sizes[i]),
            start_ns=params.start_offset_ns + int(starts[i]),
        )
        for i in range(params.num_flows)
    ]
