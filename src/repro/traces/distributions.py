"""Flow-size distributions for the paper's workloads.

The Hadoop and WebSearch traces are generated from the published
flow-size CDFs of the Facebook Hadoop cluster (Roy et al., SIGCOMM'15)
and the DCTCP web-search workload (Alizadeh et al., SIGCOMM'10) — the
same distributions the HPCC evaluation (which the paper's setup
follows) ships as trace inputs.  Sampling uses inverse-transform with
log-linear interpolation between CDF knots.
"""

from __future__ import annotations

import math

import numpy as np

#: (size_bytes, cumulative probability) knots; sizes strictly increasing.
SizeCdf = tuple[tuple[float, float], ...]

#: Facebook Hadoop intra-cluster flow sizes: dominated by sub-4KB mice
#: with a thin heavy tail.
HADOOP_CDF: SizeCdf = (
    (100, 0.0),
    (200, 0.1),
    (300, 0.3),
    (400, 0.45),
    (600, 0.6),
    (1_100, 0.7),
    (1_870, 0.8),
    (3_160, 0.9),
    (10_000, 0.95),
    (30_000, 0.97),
    (100_000, 0.98),
    (300_000, 0.99),
    (1_000_000, 0.999),
    (10_000_000, 1.0),
)

#: DCTCP web-search flow sizes: mostly heavy flows (median ~50KB,
#: tail in the tens of MB).
WEBSEARCH_CDF: SizeCdf = (
    (6_000, 0.0),
    (10_000, 0.15),
    (13_000, 0.2),
    (19_000, 0.3),
    (33_000, 0.4),
    (53_000, 0.53),
    (133_000, 0.6),
    (667_000, 0.7),
    (1_333_000, 0.8),
    (3_333_000, 0.9),
    (6_667_000, 0.97),
    (20_000_000, 1.0),
)


def validate_cdf(cdf: SizeCdf) -> None:
    """Check monotonicity of sizes and probabilities.

    Raises:
        ValueError: if the CDF is malformed.
    """
    if len(cdf) < 2:
        raise ValueError("CDF needs at least two knots")
    last_size, last_p = -1.0, -1.0
    for size, prob in cdf:
        if size <= last_size:
            raise ValueError(f"CDF sizes must strictly increase (at {size})")
        if prob < last_p:
            raise ValueError(f"CDF probabilities must not decrease (at {prob})")
        last_size, last_p = size, prob
    if abs(cdf[-1][1] - 1.0) > 1e-9:
        raise ValueError("CDF must end at probability 1.0")


def mean_size(cdf: SizeCdf) -> float:
    """Approximate mean flow size implied by the CDF (trapezoidal)."""
    validate_cdf(cdf)
    total = 0.0
    for (s0, p0), (s1, p1) in zip(cdf, cdf[1:]):
        total += (p1 - p0) * (s0 + s1) / 2
    return total


def sample_sizes(cdf: SizeCdf, count: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``count`` flow sizes from ``cdf`` (bytes, at least 1)."""
    validate_cdf(cdf)
    uniform = rng.random(count)
    sizes = np.empty(count)
    knots = list(cdf)
    probs = np.array([p for _, p in knots])
    for i, u in enumerate(uniform):
        j = int(np.searchsorted(probs, u, side="right"))
        j = min(max(j, 1), len(knots) - 1)
        s0, p0 = knots[j - 1]
        s1, p1 = knots[j]
        if p1 <= p0:
            sizes[i] = s1
            continue
        fraction = (u - p0) / (p1 - p0)
        # Log-linear interpolation keeps the heavy tail heavy.
        sizes[i] = math.exp(math.log(s0) + fraction * (math.log(s1) - math.log(s0)))
    return np.maximum(1, sizes).astype(np.int64)


def poisson_arrival_times(rate_per_ns: float, count: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Cumulative Poisson arrival times (ns) for ``count`` events."""
    if rate_per_ns <= 0:
        raise ValueError("arrival rate must be positive")
    gaps = rng.exponential(1.0 / rate_per_ns, count)
    return np.cumsum(gaps).astype(np.int64)


def load_to_arrival_rate(load: float, num_servers: int, link_bps: float,
                         mean_flow_bytes: float) -> float:
    """Flow arrival rate (per ns) that offers ``load`` on the host links.

    The paper generates Hadoop/WebSearch at 30% network load on
    100 Gbps links (§5, following HPCC's methodology).
    """
    if not 0 < load <= 1:
        raise ValueError(f"load must be in (0, 1], got {load}")
    bytes_per_second = load * num_servers * link_bps / 8
    flows_per_second = bytes_per_second / mean_flow_bytes
    return flows_per_second / 1e9
