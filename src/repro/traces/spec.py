"""Declarative trace specifications: regenerate flows instead of shipping them.

A :class:`TraceSpec` names a workload generator, its parameters and the
experiment seed — everything needed to *deterministically* rebuild the
flow list anywhere (``generate(params, RandomStreams(seed).stream(...))``
per :mod:`repro.sim.randomness`).  Two things build on this:

* the parallel sweep orchestrator pickles a spec (a few hundred bytes)
  into each worker instead of tens of thousands of materialized
  :class:`~repro.transport.flow.FlowSpec` objects, and the worker
  regenerates the flows locally;
* the run cache (:mod:`repro.experiments.runcache`) keys runs by the
  *content* of the trace, so a spec-carrying job and a flows-carrying
  job of the same workload hash identically.

Specs are frozen and fully hashable: parameters are stored as a sorted
tuple of ``(name, scalar)`` pairs, never as a dict.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.randomness import RandomStreams
from repro.traces import alibaba, hadoop, microbursts, video, websearch
from repro.traces.alibaba import AlibabaTraceParams
from repro.traces.hadoop import HadoopTraceParams
from repro.traces.microbursts import MicroburstTraceParams
from repro.traces.video import VideoTraceParams
from repro.traces.websearch import WebSearchTraceParams
from repro.transport.flow import FlowSpec

#: Trace name -> (parameter dataclass, generate(params, rng) callable).
#: Only generators with the uniform ``(params, rng)`` signature belong
#: here (the incast generator takes extra placement arguments and is
#: driven directly by the migration experiment).
TRACE_REGISTRY: dict[str, tuple[type, Callable]] = {
    "hadoop": (HadoopTraceParams, hadoop.generate),
    "websearch": (WebSearchTraceParams, websearch.generate),
    "microbursts": (MicroburstTraceParams, microbursts.generate),
    "video": (VideoTraceParams, video.generate),
    "alibaba": (AlibabaTraceParams, alibaba.generate),
}

_SCALAR_TYPES = (bool, int, float, str)


@dataclass(frozen=True)
class TraceSpec:
    """A self-contained, picklable recipe for one workload trace.

    Attributes:
        name: key into :data:`TRACE_REGISTRY`.
        seed: the experiment root seed; the generator draws from
            ``RandomStreams(seed).stream(stream or name)``, matching
            :func:`repro.experiments.figures.build_trace`.
        params: generator parameters as a sorted ``(name, value)``
            tuple; values must be scalars so the spec stays hashable.
        stream: override for the named RNG stream (defaults to the
            trace name).
    """

    name: str
    seed: int
    params: tuple[tuple[str, bool | int | float | str], ...] = ()
    stream: str | None = None

    def __post_init__(self) -> None:
        if self.name not in TRACE_REGISTRY:
            known = ", ".join(sorted(TRACE_REGISTRY))
            raise ValueError(f"unknown trace {self.name!r}; known: {known}")
        params = self.params
        if isinstance(params, dict):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted((str(k), v) for k, v in params))
        for key, value in params:
            if not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    f"trace param {key}={value!r} is not a scalar; "
                    "TraceSpec must stay hashable and picklable")
        object.__setattr__(self, "params", params)

    @classmethod
    def create(cls, name: str, seed: int, stream: str | None = None,
               **params) -> TraceSpec:
        """Build a spec from loose keyword parameters."""
        return cls(name=name, seed=seed,
                   params=tuple(sorted(params.items())), stream=stream)

    def build_params(self):
        """Instantiate the generator's parameter dataclass."""
        param_cls, _ = TRACE_REGISTRY[self.name]
        return param_cls(**dict(self.params))

    @property
    def num_vms(self) -> int:
        """The VM population implied by the parameters."""
        return int(self.build_params().num_vms)

    def materialize(self) -> list[FlowSpec]:
        """Regenerate the flow list, bit-identical on every call."""
        _, generate = TRACE_REGISTRY[self.name]
        rng = RandomStreams(self.seed).stream(self.stream or self.name)
        return generate(self.build_params(), rng)
