"""Heterogeneous in-switch memory allocation (paper §4).

The paper's evaluation splits the aggregate cache budget equally across
all switches, but §4 ("Heterogeneous memory allocation") observes that
other splits can be attractive — e.g. a ToR-only allocation captures
much of the FCT benefit for Hadoop while giving up the first-packet
gains, and leaves memory-allocation policies as future work.  This
module implements that design space so the trade-off is measurable
(see ``benchmarks/test_ablation_allocation.py``).

A policy assigns a relative weight to each switch based on its role;
the aggregate budget is distributed proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.roles import Role


@dataclass(frozen=True)
class AllocationPolicy:
    """Relative cache-memory weights per switch role.

    Weights are relative shares, not percentages: a switch's slot count
    is ``total * weight / sum-of-weights``.  A zero weight disables
    caching at that role entirely.
    """

    name: str
    tor: float = 1.0
    spine: float = 1.0
    core: float = 1.0
    gateway_tor: float = 1.0
    gateway_spine: float = 1.0

    def __post_init__(self) -> None:
        weights = (self.tor, self.spine, self.core, self.gateway_tor,
                   self.gateway_spine)
        if any(w < 0 for w in weights):
            raise ValueError(f"negative allocation weight in {self.name!r}")
        if all(w == 0 for w in weights):
            raise ValueError("allocation policy disables every switch")

    def weight(self, role: Role) -> float:
        if role == Role.TOR:
            return self.tor
        if role == Role.SPINE:
            return self.spine
        if role == Role.CORE:
            return self.core
        if role == Role.GATEWAY_TOR:
            return self.gateway_tor
        return self.gateway_spine


#: The paper's evaluated configuration: equal share everywhere.
UNIFORM = AllocationPolicy("uniform")

#: §4's alternative: memory only in ToR switches (incl. gateway ToRs).
TOR_ONLY = AllocationPolicy("tor-only", tor=1.0, spine=0.0, core=0.0,
                            gateway_tor=1.0, gateway_spine=0.0)

#: Bias toward the edge, keeping some fabric-level sharing.
EDGE_HEAVY = AllocationPolicy("edge-heavy", tor=4.0, spine=1.0, core=1.0,
                              gateway_tor=4.0, gateway_spine=1.0)

#: Bias toward shared upper layers (more entry sharing, farther hits).
CORE_HEAVY = AllocationPolicy("core-heavy", tor=1.0, spine=2.0, core=4.0,
                              gateway_tor=1.0, gateway_spine=2.0)

NAMED_POLICIES = {
    policy.name: policy
    for policy in (UNIFORM, TOR_ONLY, EDGE_HEAVY, CORE_HEAVY)
}


def distribute_slots(total_slots: int, roles: dict[int, Role],
                     policy: AllocationPolicy) -> dict[int, int]:
    """Split ``total_slots`` across switches according to ``policy``.

    Uses largest-remainder rounding so the distributed total never
    exceeds the budget and wastes at most a fraction of a slot per
    switch.
    """
    if total_slots < 0:
        raise ValueError(f"negative budget: {total_slots}")
    weights = {sid: policy.weight(role) for sid, role in roles.items()}
    weight_sum = sum(weights.values())
    if weight_sum == 0:
        return {sid: 0 for sid in roles}
    exact = {sid: total_slots * w / weight_sum for sid, w in weights.items()}
    floors = {sid: int(v) for sid, v in exact.items()}
    remainder = total_slots - sum(floors.values())
    # Hand out the leftover slots to the largest fractional parts.
    by_fraction = sorted(exact, key=lambda sid: exact[sid] - floors[sid],
                         reverse=True)
    for sid in by_fraction[:remainder]:
        floors[sid] += 1
    return floors
