"""Switch role classification (paper §3.2, Table 1).

SwitchV2P classifies switches into five categories by their position
relative to the gateways: gateway ToRs (directly attached to a
gateway), gateway spines (directly attached to a gateway ToR), and
regular ToRs, spines and cores.  Each category gets its own admission
policy and special functions.
"""

from __future__ import annotations

from enum import IntEnum

from repro.net.node import Layer
from repro.net.topology import Fabric


class Role(IntEnum):
    """SwitchV2P switch categories."""

    TOR = 0
    SPINE = 1
    CORE = 2
    GATEWAY_TOR = 3
    GATEWAY_SPINE = 4


def assign_roles(fabric: Fabric,
                 gateway_pips: set[int] | None = None) -> dict[int, Role]:
    """Map every switch id in ``fabric`` to its SwitchV2P role.

    Roles are recomputable at runtime — the paper's gateway-migration
    discussion (§4) notes that moving a gateway only requires this
    control-plane reclassification, with caches rebuilt in place.

    Args:
        gateway_pips: if given, gateway ToRs are derived from the
            switches these addresses actually attach to (the dynamic
            view after gateway moves); otherwise the static topology
            spec determines them.
    """
    if gateway_pips is None:
        gateway_tors = fabric.gateway_tor_ids()
        gateway_spines = fabric.gateway_spine_ids()
    else:
        gateway_tors = {
            switch.switch_id for switch in fabric.switches
            if switch.layer == Layer.TOR and switch.attached_pips & gateway_pips
        }
        gateway_pods = {fabric.switch_by_id[sid].pod for sid in gateway_tors}
        gateway_spines = {
            switch.switch_id for switch in fabric.switches
            if switch.layer == Layer.SPINE and switch.pod in gateway_pods
        }
    roles: dict[int, Role] = {}
    for switch in fabric.switches:
        if switch.switch_id in gateway_tors:
            roles[switch.switch_id] = Role.GATEWAY_TOR
        elif switch.switch_id in gateway_spines:
            roles[switch.switch_id] = Role.GATEWAY_SPINE
        elif switch.layer == Layer.TOR:
            roles[switch.switch_id] = Role.TOR
        elif switch.layer == Layer.SPINE:
            roles[switch.switch_id] = Role.SPINE
        else:
            roles[switch.switch_id] = Role.CORE
    return roles
