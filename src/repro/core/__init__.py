"""SwitchV2P: the paper's in-network address-caching protocol."""

from repro.core.allocation import (
    CORE_HEAVY,
    EDGE_HEAVY,
    NAMED_POLICIES,
    TOR_ONLY,
    UNIFORM,
    AllocationPolicy,
    distribute_slots,
)
from repro.core.antientropy import AntiEntropyAuditor
from repro.core.config import SwitchV2PConfig
from repro.core.hybrid import HybridSwitchV2P
from repro.core.multitenant import (
    MultiTenantSwitchV2P,
    PartitionedCache,
    TenantRegistry,
)
from repro.core.policy import AdaptiveTenantPolicy, GatewayLoadMonitor
from repro.core.protocol import SwitchV2P
from repro.core.roles import Role, assign_roles

__all__ = [
    "AntiEntropyAuditor",
    "SwitchV2P",
    "SwitchV2PConfig",
    "Role",
    "assign_roles",
    "AllocationPolicy",
    "distribute_slots",
    "UNIFORM",
    "TOR_ONLY",
    "EDGE_HEAVY",
    "CORE_HEAVY",
    "NAMED_POLICIES",
    "HybridSwitchV2P",
    "MultiTenantSwitchV2P",
    "TenantRegistry",
    "PartitionedCache",
    "GatewayLoadMonitor",
    "AdaptiveTenantPolicy",
]
