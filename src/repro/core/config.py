"""SwitchV2P protocol configuration.

Defaults follow the paper's evaluation setup (§5): learning packets at
0.5% of gateway-ToR traffic, and every protocol feature enabled.  The
feature switches exist for the ablation studies (Table 4 variants and
the topology-aware-caching ablation in Table 2's summary).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import usec


@dataclass(frozen=True)
class SwitchV2PConfig:
    """Tunable knobs of the SwitchV2P data-plane protocol.

    Attributes:
        p_learn: probability that a gateway ToR emits a learning packet
            for a translated packet it processes (§3.2.2); bounds the
            learning-packet bandwidth at ``100 * p_learn`` percent of
            switch traffic.
        enable_learning_packets: gateway-ToR mapping dissemination.
        enable_spillover: append evicted entries to packets so
            downstream switches can re-admit them.
        enable_promotion: spines promote hot entries to core switches.
        enable_invalidation: ToRs emit targeted invalidation packets
            for stale caches on misdelivery (§3.3).
        enable_timestamp_vector: rate-limit invalidation packets per
            target switch to one per base RTT (§3.3).
        role_aware: use per-role admission policies (Table 1); when
            False every switch behaves greedily (admit-all destination
            learning) — the ablation showing why topology-awareness
            matters.
        learning_packet_on_new_only: if True, gateway ToRs only emit
            learning packets when the mapping was newly learned
            (§3.2.2's narrow reading); the default False matches the
            evaluation setup, where generation is 0.5% of *all*
            traffic passing the gateway switch (§5).
        invalidation_gap_ns: minimum spacing between invalidations to
            the same switch (the base RTT in the paper's topologies).
        negative_ttl_ns: hold-down window after an invalidation during
            which switches refuse to re-learn the invalidated
            (vip, pip) pair.  Gray-failure hardening: under degraded
            links the invalidation/learning race repeatedly reinstalls
            just-invalidated stale mappings; the negative cache breaks
            the loop.  0 (the default) disables it, preserving the
            paper's protocol bit-for-bit.
    """

    p_learn: float = 0.005
    learning_packet_on_new_only: bool = False
    enable_learning_packets: bool = True
    enable_spillover: bool = True
    enable_promotion: bool = True
    enable_invalidation: bool = True
    enable_timestamp_vector: bool = True
    role_aware: bool = True
    invalidation_gap_ns: int = usec(12)
    negative_ttl_ns: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_learn <= 1.0:
            raise ValueError(f"p_learn must be a probability, got {self.p_learn}")
        if self.invalidation_gap_ns < 0:
            raise ValueError("invalidation_gap_ns must be non-negative")
        if self.negative_ttl_ns < 0:
            raise ValueError("negative_ttl_ns must be non-negative")
