"""SwitchV2P: the topology-aware in-network V2P caching protocol.

This is the paper's primary contribution (§3).  Every switch carries a
direct-mapped cache; packets are translated opportunistically en route
to the gateway, and the switches collaboratively manage the distributed
cache with per-role admission policies and four special functions:

* **learning packets** — gateway ToRs disseminate mappings toward the
  sender's ToR with probability ``p_learn``;
* **cache spillover** — evicted entries ride on the packet being
  processed and are re-admitted downstream;
* **promotion** — spines push entries that are hot on the gateway path
  up to the core switches so multiple pods can share them;
* **lazy invalidation** — misdelivery tags on re-forwarded packets plus
  targeted invalidation packets (rate-limited by a per-ToR timestamp
  vector) clean up stale entries after VM migrations (§3.3).
"""

from __future__ import annotations

from repro.baselines.caching import CachingScheme
from repro.core.allocation import UNIFORM, AllocationPolicy, distribute_slots
from repro.core.config import SwitchV2PConfig
from repro.core.roles import Role, assign_roles
from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Layer, Switch
from repro.net.packet import Packet, PacketKind
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork

#: Control packets (learning/invalidation) get flow ids far above any
#: data flow so ECMP hashing and flow bookkeeping never collide.
_CONTROL_FLOW_BASE = 1 << 40

# Enum members pre-bound as module globals: ``on_switch`` compares
# against these once per switch hop, and a LOAD_GLOBAL is measurably
# cheaper than LOAD_GLOBAL + LOAD_ATTR at that frequency.
_DATA = PacketKind.DATA
_ACK = PacketKind.ACK
_LEARNING = PacketKind.LEARNING
_LAYER_TOR = Layer.TOR
_ROLE_TOR = Role.TOR
_ROLE_SPINE = Role.SPINE
_ROLE_GATEWAY_TOR = Role.GATEWAY_TOR
_ROLE_GATEWAY_SPINE = Role.GATEWAY_SPINE


class _CacheTable(dict):
    """``switch_id -> cache`` dict that keeps the owner's hot table fresh.

    Tests and subclasses swap individual caches after setup (e.g. the
    Figure 4 walkthrough shrinks one ToR cache, ``on_switch_reset``
    rebuilds a failed switch's cache); the derived ``_hot`` view must
    follow every such mutation.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: SwitchV2P, *args) -> None:
        super().__init__(*args)
        self._owner = owner

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self._owner._rebuild_hot_table()

    def __delitem__(self, key) -> None:
        super().__delitem__(key)
        self._owner._rebuild_hot_table()

    def update(self, *args, **kwargs) -> None:
        super().update(*args, **kwargs)
        self._owner._rebuild_hot_table()

    def clear(self) -> None:
        super().clear()
        self._owner._rebuild_hot_table()

    def pop(self, *args):
        value = super().pop(*args)
        self._owner._rebuild_hot_table()
        return value

    def setdefault(self, key, default=None):
        value = super().setdefault(key, default)
        self._owner._rebuild_hot_table()
        return value


class SwitchV2P(CachingScheme):
    """The SwitchV2P translation scheme.

    Args:
        total_cache_slots: aggregate in-network cache budget.
        config: protocol feature configuration (defaults match §5).
        allocation: how the budget is split across switch roles; the
            default is the paper's equal split, alternatives implement
            the §4 heterogeneous-allocation discussion.
        cache_ways: cache associativity; 1 (the paper's direct-mapped
            hardware design) by default, >1 enables the set-associative
            ablation (not implementable at line rate on Tofino).
    """

    name = "SwitchV2P"

    def __init__(self, total_cache_slots: int,
                 config: SwitchV2PConfig | None = None,
                 allocation: AllocationPolicy = UNIFORM,
                 cache_ways: int = 1) -> None:
        super().__init__(total_cache_slots)
        self.config = config if config is not None else SwitchV2PConfig()
        self.allocation = allocation
        if cache_ways < 1:
            raise ValueError(f"associativity must be >= 1, got {cache_ways}")
        self.cache_ways = cache_ways
        self.roles: dict[int, Role] = {}
        #: Derived view joining ``roles`` and ``caches`` so the per-hop
        #: hot path does one dict lookup instead of two.  Rebuilt by
        #: ``setup``/``on_switch_reset``/``reassign_roles`` whenever
        #: either source table changes.
        self._hot: dict[int, tuple[Role, object]] = {}
        self._collector = None
        self._learn_rng = None
        self._control_flow_seq = _CONTROL_FLOW_BASE
        #: Per-ToR timestamp vector: ToR id -> (target switch id -> last
        #: invalidation send time).  Local timestamps only (§3.3).
        self._timestamp_vectors: dict[int, dict[int, int]] = {}
        self.learning_packets_sent = 0
        self.invalidation_packets_sent = 0
        self.spillovers_reinserted = 0
        self.promotions_sent = 0
        self.promotions_admitted = 0
        #: Negative cache: ``(vip, stale_pip) -> hold-down expiry``.
        #: Populated on invalidations when ``negative_ttl_ns > 0``;
        #: stays empty otherwise, so every guard below short-circuits
        #: on one falsy dict test.  The expiry check reads the live
        #: clock, which the fluid fast path cannot replay exactly —
        #: enabling the feature therefore opts the scheme out of
        #: fluid adoption (runs stay packet-level, still correct).
        self._negative: dict[tuple[int, int], int] = {}
        self.negative_blocks = 0
        if self.config.negative_ttl_ns > 0:
            self.fluid_compatible = False
        #: Learning-RNG consumption counter.  The hybrid-fidelity probe
        #: walk snapshots it: an analytic packet that skipped a draw its
        #: real counterpart would have made desynchronizes the stream,
        #: so draws are either replayed exactly (below) or escalate.
        self.rng_draws = 0
        #: Hybrid-fidelity hook: when set, called as ``(switch, packet)``
        #: immediately before every learning-RNG draw.  The fluid probe
        #: walk installs it to capture draw sites so commits can replay
        #: the draws via :meth:`replay_learning_draw`; always None in
        #: pure-packet mode (one predicted-None branch per draw).
        self.learning_draw_observer = None

    def make_cache(self, num_slots: int, salt: int):
        if self.cache_ways == 1:
            return super().make_cache(num_slots, salt)
        from repro.cache.set_associative import SetAssociativeCache
        return SetAssociativeCache(num_slots, ways=self.cache_ways, salt=salt)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def prepare(self, network: VirtualNetwork) -> None:
        """Assign roles and protocol state before caches are built."""
        self.roles = assign_roles(network.fabric)
        self._learn_rng = network.streams.stream("switchv2p-learning")
        self._timestamp_vectors = {}
        self._gateway_pips = network.gateway_pip_set()

    def slots_by_switch(self, network: VirtualNetwork,
                        ids: list[int]) -> dict[int, int]:
        roles = {switch_id: self.roles[switch_id] for switch_id in ids}
        return distribute_slots(self.total_cache_slots, roles, self.allocation)

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._collector = network.collector
        self._rebuild_hot_table()

    def on_switch_reset(self, switch: Switch) -> None:
        super().on_switch_reset(switch)
        self._rebuild_hot_table()

    #: ``caches`` is intercepted so *any* mutation — rebinding the whole
    #: table (MultiTenantSwitchV2P.setup) or swapping one entry — keeps
    #: ``_hot`` in sync without the data plane ever checking.
    @property
    def caches(self):
        return self._caches

    @caches.setter
    def caches(self, table) -> None:
        self._caches = _CacheTable(self, table)
        if hasattr(self, "roles"):
            self._rebuild_hot_table()

    def _rebuild_hot_table(self) -> None:
        caches = self._caches
        self._hot = {switch_id: (role, caches.get(switch_id))
                     for switch_id, role in self.roles.items()}

    def reassign_roles(self) -> None:
        """Recompute switch roles after a gateway move (paper §4).

        A control-plane operation: the former gateway ToR reverts to
        regular ToR behaviour and the new one takes over.  Caches are
        not migrated; they rebuild in place from traffic.
        """
        assert self.network is not None
        self.roles = assign_roles(self.network.fabric,
                                  self.network.gateway_pip_set())
        self._gateway_pips = self.network.gateway_pip_set()
        self._rebuild_hot_table()

    def _next_control_flow(self) -> int:
        self._control_flow_seq += 1
        return self._control_flow_seq

    # ------------------------------------------------------------------
    # host hooks
    # ------------------------------------------------------------------
    def on_misdelivery(self, host: Host, packet: Packet) -> None:
        """Misdelivered packets return to the gateway, tagged en route."""
        self.send_misdelivered_via_gateway(host, packet)

    # ------------------------------------------------------------------
    # switch hook
    # ------------------------------------------------------------------
    def on_switch(self, switch: Switch, packet: Packet, ingress) -> bool:
        # Per-hop hot path: every data/ack packet runs this body at
        # every switch it crosses.  The cache is fetched exactly once,
        # packet option fields are read through their private slots
        # (the properties exist for their setters' wire-size
        # invalidation), and the Table 1 learning policies are inlined
        # here instead of dispatching through learn_destination()/
        # learn_source() — same semantics, a third of the calls.
        kind = packet.kind
        if kind > _ACK:
            if kind is _LEARNING:
                return self._on_learning_packet(switch, packet)
            self._apply_invalidation(switch, packet)
            return True

        config = self.config
        role, cache = self._hot[switch.switch_id]
        if not config.role_aware:
            role = None

        # 1. Misdelivery tagging at ToRs (§3.3): a packet arriving from
        #    a host port whose outer source is not the attached server
        #    was re-forwarded by the hypervisor.  Gateways also attach
        #    to host ports but are excluded (their node type differs).
        #    A re-forwarded packet whose original sender is colocated
        #    with the old VM location has outer_src == the attached
        #    server, so the source check alone misses it — the stale
        #    mapping it carries in-band (§3.3) is the tell; without it
        #    the ToR's own stale entry bounces the packet back to the
        #    same host indefinitely.
        if (
            switch.layer is _LAYER_TOR
            and ingress is not None
            and ingress._src_is_host
            and not packet._misdelivery_tag
            and (packet.outer_src != ingress.src.pip
                 or packet._carried_mapping is not None)
        ):
            self._tag_misdelivered(switch, packet)

        # 2. Pick up in-band metadata: spilled entries (any non-core
        #    switch) and promotions (cores only).
        if packet._spill_entry is not None and config.enable_spillover:
            self._try_pickup_spill(switch, packet, role, cache)
        if packet._promote_entry is not None and (role == Role.CORE
                                                  or not config.role_aware):
            self._admit_promotion(switch, packet, cache)

        # 3. Lookup for unresolved packets, with spine promotion on a
        #    hot hit (access bit already set) for pod-leaving packets.
        #    The untagged case — every lookup except the short window
        #    after a migration — is the body of try_resolve() minus the
        #    misdelivery-tag protocol; tagged packets take the full
        #    method.
        if not packet.resolved and cache is not None:
            hot_before = (
                role is _ROLE_SPINE
                and config.enable_promotion
                and cache.access_bit(packet.dst_vip) == 1
            )
            if packet._misdelivery_tag and packet._carried_mapping is not None:
                resolved_here = self.try_resolve(switch, packet, cache)
            else:
                pip = cache.lookup(packet.dst_vip)
                if pip is None:
                    resolved_here = False
                else:
                    packet.outer_dst = pip
                    packet.resolved = True
                    packet.hit_switch = switch.switch_id
                    self._collector.record_hit(
                        switch.layer, kind is _DATA and packet.seq == 0)
                    resolved_here = True
            if resolved_here and hot_before \
                    and pip_pod(packet.outer_dst) != switch.pod:
                packet.promote_entry = (packet.dst_vip, packet.outer_dst)
                self.promotions_sent += 1

        # 4. Learning (Table 1), one policy per role.  Cores learn only
        #    from promotions (handled in the pickup above).
        if role is _ROLE_TOR:
            if cache is not None:
                result = cache.insert(packet.src_vip, packet.outer_src)
                if result.evicted is not None and config.enable_spillover:
                    packet.spill_entry = result.evicted
        elif role is _ROLE_SPINE or role is _ROLE_GATEWAY_SPINE:
            # Conservative admission: never evict a hot line.
            if packet.resolved and cache is not None and not (
                    self._negative
                    and self._negative_blocks(packet.dst_vip, packet.outer_dst)):
                result = cache.insert(packet.dst_vip, packet.outer_dst, True)
                if result.evicted is not None and config.enable_spillover:
                    packet.spill_entry = result.evicted
        elif role is _ROLE_GATEWAY_TOR:
            resolved = packet.resolved
            already_known = False
            if config.learning_packet_on_new_only and resolved \
                    and cache is not None:
                already_known = cache.peek(packet.dst_vip) == packet.outer_dst
            if resolved and cache is not None and not (
                    self._negative
                    and self._negative_blocks(packet.dst_vip, packet.outer_dst)):
                result = cache.insert(packet.dst_vip, packet.outer_dst)
                if result.evicted is not None and config.enable_spillover:
                    packet.spill_entry = result.evicted
            if resolved and not already_known:
                self._maybe_send_learning_packet(switch, packet)
        elif role is None and packet.resolved and cache is not None and not (
                self._negative
                and self._negative_blocks(packet.dst_vip, packet.outer_dst)):
            # Role-unaware ablation: greedy destination learning.
            result = cache.insert(packet.dst_vip, packet.outer_dst)
            if result.evicted is not None and config.enable_spillover:
                packet.spill_entry = result.evicted
        return True

    # ------------------------------------------------------------------
    # negative caching (gray-failure hardening)
    # ------------------------------------------------------------------
    def _negative_blocks(self, vip: int, pip: int) -> bool:
        """True while ``(vip, pip)`` is inside its post-invalidation
        hold-down window.  Expired entries are pruned on access."""
        expiry = self._negative.get((vip, pip))
        if expiry is None:
            return False
        assert self.network is not None
        if self.network.engine.now >= expiry:
            del self._negative[(vip, pip)]
            return False
        self.negative_blocks += 1
        return True

    def _note_negative(self, vip: int, stale_pip: int) -> None:
        """Open a hold-down window for a just-invalidated mapping."""
        ttl = self.config.negative_ttl_ns
        if ttl <= 0:
            return
        assert self.network is not None
        self._negative[(vip, stale_pip)] = self.network.engine.now + ttl

    # ------------------------------------------------------------------
    # learning policies
    # ------------------------------------------------------------------
    def _try_pickup_spill(self, switch: Switch, packet: Packet,
                          role: Role | None, cache) -> None:
        """Downstream switches attempt to re-admit a spilled entry."""
        if role == Role.CORE or cache is None:
            return  # Cores learn from promotions only (Table 1).
        vip, pip = packet._spill_entry
        if self._negative and self._negative_blocks(vip, pip):
            return
        conservative = role in (Role.SPINE, Role.GATEWAY_SPINE)
        result = cache.insert(vip, pip, only_if_clear=conservative)
        if result.admitted:
            packet.spill_entry = result.evicted
            self.spillovers_reinserted += 1
            self._collector.spillover_inserts += 1

    def _admit_promotion(self, switch: Switch, packet: Packet, cache) -> None:
        """Core switches admit promoted entries if the line is cold."""
        if cache is None:
            return
        vip, pip = packet._promote_entry
        if self._negative and self._negative_blocks(vip, pip):
            packet.promote_entry = None
            return
        result = cache.insert(vip, pip, only_if_clear=True)
        packet.promote_entry = None
        if result.admitted:
            self.promotions_admitted += 1
            self._collector.promotions += 1

    # ------------------------------------------------------------------
    # learning packets (§3.2.2)
    # ------------------------------------------------------------------
    def _maybe_send_learning_packet(self, switch: Switch, packet: Packet) -> None:
        if not self.config.enable_learning_packets:
            return
        obs = self.learning_draw_observer
        if obs is not None:
            obs(switch, packet)
        self.rng_draws += 1
        if self._learn_rng.random() >= self.config.p_learn:
            return
        sender_pip = packet.outer_src
        if sender_pip in self._gateway_pips or sender_pip < 0:
            return
        assert self.network is not None
        target_pod, target_rack = pip_pod(sender_pip), pip_rack(sender_pip)
        mapping = (packet.dst_vip, packet.outer_dst)
        target_tor = self.network.fabric.tors.get((target_pod, target_rack))
        if target_tor is None:
            return
        if target_tor is switch:
            self._install_at_tor(switch, mapping)
            return
        learning = Packet(
            PacketKind.LEARNING,
            flow_id=self._next_control_flow(),
            seq=0,
            payload_bytes=0,
            src_vip=packet.dst_vip,
            dst_vip=packet.dst_vip,
            outer_src=sender_pip,
            outer_dst=sender_pip,
            created_at=self.network.engine.now,
        )
        learning.carried_mapping = mapping
        self.learning_packets_sent += 1
        self.network.collector.learning_packets += 1
        switch.forward(learning)

    def replay_learning_draw(self, switch: Switch, template) -> None:
        """Repeat one learning-RNG draw for an analytic packet.

        ``template`` carries the only packet fields the draw path reads
        (``outer_src``, ``dst_vip``, ``outer_dst``) — identical for every
        packet of a warm flow, which is what makes replay exact.  A draw
        that triggers emits the real learning traffic (or performs the
        real ToR install) through the normal code paths.
        """
        self._maybe_send_learning_packet(switch, template)

    def _on_learning_packet(self, switch: Switch, packet: Packet) -> bool:
        """ToRs absorb learning packets addressed to their rack."""
        if switch.is_local_rack(packet.outer_dst):
            if packet.carried_mapping is not None:
                self._install_at_tor(switch, packet.carried_mapping)
            return False
        return True

    def _install_at_tor(self, switch: Switch, mapping: tuple[int, int]) -> None:
        cache = self.cache_of(switch)
        if cache is None:
            return
        if self._negative and self._negative_blocks(mapping[0], mapping[1]):
            return
        cache.insert(mapping[0], mapping[1])

    # ------------------------------------------------------------------
    # invalidation (§3.3)
    # ------------------------------------------------------------------
    def _tag_misdelivered(self, switch: Switch, packet: Packet) -> None:
        packet.misdelivery_tag = True
        if not self.config.enable_invalidation:
            return
        if packet.hit_switch is None or packet.carried_mapping is None:
            return
        if self.config.negative_ttl_ns > 0:
            self._note_negative(*packet.carried_mapping)
        if packet.hit_switch == switch.switch_id:
            return  # The tagged packet itself will fix the local cache.
        if self.config.enable_timestamp_vector and not self._timestamp_allows(
                switch.switch_id, packet.hit_switch):
            return
        self._send_invalidation(switch, packet.hit_switch, packet.carried_mapping)

    def _timestamp_allows(self, tor_id: int, target_id: int) -> bool:
        """Timestamp-vector rate limiting: one packet per RTT per target."""
        assert self.network is not None
        now = self.network.engine.now
        vector = self._timestamp_vectors.setdefault(tor_id, {})
        last = vector.get(target_id)
        if last is not None and now - last < self.config.invalidation_gap_ns:
            return False
        vector[target_id] = now
        return True

    def _send_invalidation(self, tor: Switch, target_id: int,
                           stale: tuple[int, int]) -> None:
        assert self.network is not None
        fabric = self.network.fabric
        target = fabric.switch_by_id.get(target_id)
        if target is None:
            return
        if target is tor:
            return
        flow_id = self._next_control_flow()
        route = fabric.path_from_tor(tor, target, key=flow_id)
        if not route:
            return
        packet = Packet(
            PacketKind.INVALIDATION,
            flow_id=flow_id,
            seq=0,
            payload_bytes=0,
            src_vip=stale[0],
            dst_vip=stale[0],
            outer_src=-1,
            outer_dst=-1,
            created_at=self.network.engine.now,
        )
        packet.carried_mapping = stale
        packet.target_switch = target_id
        packet.route_path = route
        packet.route_index = 0
        self.invalidation_packets_sent += 1
        self.network.collector.invalidation_packets += 1
        route[0].transmit(packet)

    def _apply_invalidation(self, switch: Switch, packet: Packet) -> None:
        """Every switch on an invalidation's path invalidates the entry."""
        if packet.carried_mapping is None:
            return
        cache = self.cache_of(switch)
        if cache is None:
            return
        vip, stale_pip = packet.carried_mapping
        if self.config.negative_ttl_ns > 0:
            self._note_negative(vip, stale_pip)
        cache.invalidate(vip, stale_pip)
