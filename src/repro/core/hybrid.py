"""SwitchV2P combined with dynamic host caching (paper §4).

Hybrid systems like Andromeda install hot V2P mappings directly in the
sender's hypervisor.  The paper argues SwitchV2P composes with this
automatically: resolved packets skip in-switch lookups, so a switch
entry shadowed by a host rule stops refreshing its access bit and is
naturally evicted by the conservative admission policies — no explicit
coordination needed.  This class realizes the combination so that claim
is testable (see ``tests/test_hybrid.py``).
"""

from __future__ import annotations

from repro.core.allocation import UNIFORM, AllocationPolicy
from repro.core.config import SwitchV2PConfig
from repro.core.protocol import SwitchV2P
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import msec
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork


class HybridSwitchV2P(SwitchV2P):
    """SwitchV2P plus Andromeda-style host flow-rule offloading."""

    name = "HybridSwitchV2P"

    def __init__(self, total_cache_slots: int,
                 config: SwitchV2PConfig | None = None,
                 allocation: AllocationPolicy = UNIFORM,
                 offload_threshold: int = 20,
                 install_delay_ns: int = msec(1)) -> None:
        super().__init__(total_cache_slots, config, allocation)
        if offload_threshold < 1:
            raise ValueError("offload threshold must be at least 1")
        self.offload_threshold = offload_threshold
        self.install_delay_ns = install_delay_ns
        self._host_rules: dict[int, dict[int, int]] = {}
        self._counts: dict[tuple[int, int], int] = {}
        self._pending: set[tuple[int, int]] = set()
        self.rules_installed = 0

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._host_rules = {host.pip: {} for host in network.hosts}
        self._counts.clear()
        self._pending.clear()

    def on_host_send(self, host: Host, packet: Packet) -> None:
        rules = self._host_rules[host.pip]
        pip = rules.get(packet.dst_vip)
        if pip is not None:
            # Already resolved at the host: switches will not look it
            # up, so shadowed in-switch entries age out (§4).
            self.resolve(packet, pip)
            return
        super().on_host_send(host, packet)
        if packet.kind not in (PacketKind.DATA, PacketKind.ACK):
            return
        key = (host.pip, packet.dst_vip)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count >= self.offload_threshold and key not in self._pending:
            self._pending.add(key)
            assert self.network is not None
            self.network.engine.schedule_after(
                self.install_delay_ns, self._install, host.pip, packet.dst_vip)

    def _install(self, host_pip: int, vip: int) -> None:
        assert self.network is not None
        self._pending.discard((host_pip, vip))
        pip = self.network.database.get(vip)
        if pip is not None:
            self._host_rules[host_pip][vip] = pip
            self.rules_installed += 1

    def host_rules(self, host: Host) -> dict[int, int]:
        """The host's installed flow rules (read-only view)."""
        return dict(self._host_rules.get(host.pip, {}))
