"""Anti-entropy audit: reconcile switch caches against the database.

SwitchV2P's lazy invalidation (§3.3) repairs stale entries only when
traffic trips over them — a misdelivered packet triggers the targeted
invalidation.  Under gray failures that guarantee breaks down: a
bit-flipped SRAM line for an idle VIP, or a stale mapping on a path
that degraded links keep losing invalidations on, can persist
indefinitely.  The :class:`AntiEntropyAuditor` closes the gap with a
control-plane sweep, the standard anti-entropy pattern: every period
it walks each switch cache and invalidates any entry that disagrees
with the authoritative :class:`~repro.vnet.mapping.MappingDatabase`.

This yields the bounded-staleness guarantee the runtime oracle checks
(:meth:`repro.faults.oracles.OracleSuite.configure_staleness`): once an
entry goes bad — by migration, retirement or corruption — it survives
at most one full audit period, because the next sweep to observe it
removes it.  Sweeps go through the caches' normal ``invalidate``
primitive, so mutation observers fire and the hybrid-fidelity engine
escalates affected flows exactly as it does for data-plane changes.

The audit models a centralized control-plane job (the SDN controller
re-reading switch registers), so it costs no data-plane packets; its
realism knob is the period — production systems sweep slowly to bound
controller load, which is exactly the staleness/overhead tradeoff the
degradation experiment measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vnet.network import VirtualNetwork


class AntiEntropyAuditor:
    """Periodically repair switch-cache entries that contradict the DB.

    Args:
        network: the virtual network whose scheme's caches are audited.
        period_ns: sweep period; also the staleness bound the audit
            enforces (an entry that goes bad survives at most one full
            period before a sweep removes it).
        staleness_bound_ns: the bound this deployment advertises;
            informational (the oracle reads it), must be at least
            ``period_ns`` when nonzero — a sweep cannot promise less
            than its own period.
    """

    def __init__(self, network: VirtualNetwork, period_ns: int,
                 staleness_bound_ns: int = 0) -> None:
        if period_ns <= 0:
            raise ValueError(f"audit period must be positive, got {period_ns}")
        if staleness_bound_ns and staleness_bound_ns < period_ns:
            raise ValueError(
                f"staleness bound {staleness_bound_ns} is tighter than the "
                f"audit period {period_ns}; the sweep cannot enforce it")
        self.network = network
        self.period_ns = period_ns
        self.staleness_bound_ns = staleness_bound_ns
        self.sweeps = 0
        self.entries_checked = 0
        self.repairs = 0
        self._timer = None
        self._running = False

    def start(self) -> None:
        """Arm the periodic sweep (idempotent)."""
        if self._running:
            return
        self._running = True
        self._timer = self.network.engine.schedule_timer(
            self.period_ns, self._sweep)

    def stop(self) -> None:
        """Cancel the sweep timer."""
        if not self._running:
            return
        self._running = False
        if self._timer is not None:
            self.network.engine.cancel_timer(self._timer)
            self._timer = None

    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        self.sweeps += 1
        self.audit_once()
        if self._running:
            self._timer = self.network.engine.schedule_timer(
                self.period_ns, self._sweep)

    def audit_once(self) -> int:
        """Run one full reconciliation pass; returns entries repaired.

        Exposed separately from the timer loop so tests and the
        degradation experiment can force a sweep at a known time.
        """
        scheme = self.network.scheme
        caches = getattr(scheme, "caches", None)
        if not caches:
            return 0
        db = self.network.database
        get = db.get
        repaired = 0
        for cache in caches.values():
            if cache is None:
                continue
            # Snapshot first: ``invalidate`` mutates the structures
            # ``entries()`` iterates.
            for vip, pip, _abit in cache.entries():
                self.entries_checked += 1
                if get(vip) != pip and cache.invalidate(vip):
                    repaired += 1
        self.repairs += repaired
        return repaired
