"""Multi-tenant SwitchV2P: per-VPC private cache partitions (paper §4).

VPCs use disjoint virtual address spaces, so cross-VPC destination
reuse is absent and a shared cache would only create interference.  The
paper proposes per-VPC private partitions in switch memory, enabled per
tenant by operator policy (e.g. when a VPC's gateway load crosses a
threshold), using runtime memory allocation.

Implementation: VIPs are allocated to tenants in blocks via a
:class:`TenantRegistry`, and each switch's cache becomes a
:class:`PartitionedCache` — one direct-mapped partition per enabled
tenant, routing by the VIP's owning tenant.  The partitioned cache
exposes the same primitive interface as the flat cache, so the entire
SwitchV2P protocol runs unmodified on top; disabled tenants simply miss
everywhere and fall through to their gateways.
"""

from __future__ import annotations

import bisect

from repro.cache.direct_mapped import CacheStats, DirectMappedCache, InsertResult
from repro.core.allocation import UNIFORM, AllocationPolicy
from repro.core.config import SwitchV2PConfig
from repro.core.protocol import SwitchV2P
from repro.vnet.network import VirtualNetwork


class TenantRegistry:
    """Allocates contiguous VIP blocks to tenants (VPCs)."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._blocks: list[tuple[int, int, int]] = []  # (start, end, tenant)
        self._next_vip = 0
        self.tenants: list[int] = []

    def add_tenant(self, tenant_id: int, num_vips: int) -> range:
        """Allocate the next ``num_vips`` VIPs to ``tenant_id``."""
        if num_vips < 1:
            raise ValueError("a tenant needs at least one VIP")
        if tenant_id in self.tenants:
            raise ValueError(f"tenant {tenant_id} already registered")
        start = self._next_vip
        end = start + num_vips
        self._next_vip = end
        self._starts.append(start)
        self._blocks.append((start, end, tenant_id))
        self.tenants.append(tenant_id)
        return range(start, end)

    def tenant_of(self, vip: int) -> int | None:
        """The tenant owning ``vip``, or None if unallocated."""
        index = bisect.bisect_right(self._starts, vip) - 1
        if index < 0:
            return None
        start, end, tenant = self._blocks[index]
        if start <= vip < end:
            return tenant
        return None

    @property
    def total_vips(self) -> int:
        return self._next_vip


class PartitionedCache:
    """A per-tenant partitioned cache with the flat-cache interface.

    Tenants without a partition (not enabled) miss on every lookup and
    reject every insert — their traffic behaves as under NoCache, the
    fallback the paper's per-VPC policy implies.
    """

    __slots__ = ("registry", "salt", "partitions", "stats")

    def __init__(self, registry: TenantRegistry,
                 slots_per_tenant: dict[int, int], salt: int = 0) -> None:
        self.registry = registry
        self.salt = salt
        self.partitions: dict[int, DirectMappedCache] = {
            tenant: DirectMappedCache(slots, salt=salt ^ (tenant * 0x85EBCA6B))
            for tenant, slots in slots_per_tenant.items()
        }
        self.stats = CacheStats()

    @property
    def num_slots(self) -> int:
        return sum(p.num_slots for p in self.partitions.values())

    def _partition(self, vip: int) -> DirectMappedCache | None:
        tenant = self.registry.tenant_of(vip)
        if tenant is None:
            return None
        return self.partitions.get(tenant)

    # -- flat-cache interface ------------------------------------------
    def lookup(self, vip: int) -> int | None:
        self.stats.lookups += 1
        partition = self._partition(vip)
        if partition is None:
            return None
        value = partition.lookup(vip)
        if value is not None:
            self.stats.hits += 1
        return value

    def insert(self, vip: int, pip: int, only_if_clear: bool = False) -> InsertResult:
        partition = self._partition(vip)
        if partition is None:
            self.stats.rejections += 1
            return InsertResult(False, None)
        result = partition.insert(vip, pip, only_if_clear)
        if result.admitted:
            self.stats.insertions += 1
        else:
            self.stats.rejections += 1
        return result

    def invalidate(self, vip: int, stale_pip: int | None = None) -> bool:
        partition = self._partition(vip)
        if partition is None:
            return False
        invalidated = partition.invalidate(vip, stale_pip)
        if invalidated:
            self.stats.invalidations += 1
        return invalidated

    def peek(self, vip: int) -> int | None:
        partition = self._partition(vip)
        return None if partition is None else partition.peek(vip)

    def access_bit(self, vip: int) -> int | None:
        partition = self._partition(vip)
        return None if partition is None else partition.access_bit(vip)

    def occupancy(self) -> int:
        return sum(p.occupancy() for p in self.partitions.values())

    def entries(self) -> list[tuple[int, int, int]]:
        out: list[tuple[int, int, int]] = []
        for partition in self.partitions.values():
            out.extend(partition.entries())
        return out

    def clear(self) -> None:
        for partition in self.partitions.values():
            partition.clear()

    def __len__(self) -> int:
        return self.occupancy()

    # -- runtime partition management (paper: NetVRM-style allocation) --
    def add_partition(self, tenant: int, slots: int) -> None:
        """Enable caching for a tenant at runtime."""
        if tenant in self.partitions:
            raise ValueError(f"tenant {tenant} already enabled")
        self.partitions[tenant] = DirectMappedCache(
            slots, salt=self.salt ^ (tenant * 0x85EBCA6B))

    def remove_partition(self, tenant: int) -> None:
        """Disable caching for a tenant, releasing its memory."""
        self.partitions.pop(tenant, None)


class MultiTenantSwitchV2P(SwitchV2P):
    """SwitchV2P with per-tenant private cache partitions.

    Args:
        total_cache_slots: aggregate budget across all switches and
            enabled tenants.
        registry: the VIP-to-tenant allocation.
        enabled_tenants: tenants granted in-switch caching; None means
            all registered tenants.
        tenant_shares: relative memory share per enabled tenant
            (default: equal).
    """

    name = "MultiTenantSwitchV2P"

    def __init__(self, total_cache_slots: int, registry: TenantRegistry,
                 enabled_tenants: set[int] | None = None,
                 tenant_shares: dict[int, float] | None = None,
                 config: SwitchV2PConfig | None = None,
                 allocation: AllocationPolicy = UNIFORM) -> None:
        super().__init__(total_cache_slots, config, allocation)
        self.registry = registry
        self.enabled_tenants = enabled_tenants
        self.tenant_shares = tenant_shares

    def _tenant_split(self, switch_slots: int) -> dict[int, int]:
        enabled = (list(self.enabled_tenants)
                   if self.enabled_tenants is not None
                   else list(self.registry.tenants))
        if not enabled:
            return {}
        shares = self.tenant_shares or {}
        weights = {tenant: shares.get(tenant, 1.0) for tenant in enabled}
        weight_sum = sum(weights.values())
        if weight_sum <= 0:
            return {tenant: 0 for tenant in enabled}
        return {tenant: int(switch_slots * weight / weight_sum)
                for tenant, weight in weights.items()}

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        # Replace each switch's flat cache with tenant partitions of
        # the same aggregate size.
        self.caches = {
            switch_id: PartitionedCache(self.registry,
                                        self._tenant_split(cache.num_slots),
                                        salt=switch_id * 0x9E3779B1)
            for switch_id, cache in self.caches.items()
        }

    def tenant_hit_stats(self) -> dict[int, tuple[int, int]]:
        """Per-tenant (lookups, hits) aggregated across all switches."""
        totals: dict[int, tuple[int, int]] = {}
        for cache in self.caches.values():
            for tenant, partition in cache.partitions.items():
                lookups, hits = totals.get(tenant, (0, 0))
                totals[tenant] = (lookups + partition.stats.lookups,
                                  hits + partition.stats.hits)
        return totals
