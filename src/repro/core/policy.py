"""Operator policies for enabling SwitchV2P per tenant (paper §4).

"As in-switch memory is a scarce resource, an operator may decide to
enable SwitchV2P for a particular VPC based on a policy, e.g., when the
gateway load exceeds a certain threshold."  This module implements that
loop: a :class:`GatewayLoadMonitor` measures per-tenant gateway packet
rates in sliding windows, and an :class:`AdaptiveTenantPolicy`
enables/disables tenants' cache partitions at runtime (NetVRM-style
memory allocation) based on those rates.
"""

from __future__ import annotations

from collections import Counter

from repro.core.multitenant import MultiTenantSwitchV2P, TenantRegistry
from repro.net.packet import Packet
from repro.vnet.network import VirtualNetwork


class GatewayLoadMonitor:
    """Windowed per-tenant gateway packet counters.

    Attaches to every gateway's packet observer (chaining with whatever
    observer — normally the metrics collector — is already installed).
    """

    def __init__(self, network: VirtualNetwork, registry: TenantRegistry,
                 window_ns: int) -> None:
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self.network = network
        self.registry = registry
        self.window_ns = window_ns
        self._current: Counter = Counter()
        self._previous: Counter = Counter()
        self._window_start = 0
        for gateway in network.gateways:
            inner = gateway.on_packet

            def observe(packet: Packet, _inner=inner) -> None:
                if _inner is not None:
                    _inner(packet)
                self._record(packet)

            gateway.on_packet = observe

    def _record(self, packet: Packet) -> None:
        now = self.network.engine.now
        if now - self._window_start >= self.window_ns:
            self._previous = self._current
            self._current = Counter()
            self._window_start = now
        tenant = self.registry.tenant_of(packet.dst_vip)
        if tenant is not None:
            self._current[tenant] += 1

    def window_counts(self, tenant: int) -> int:
        """Gateway packets for ``tenant`` in the last complete window
        (falls back to the in-progress window early in a run)."""
        if self._previous:
            return self._previous.get(tenant, 0)
        return self._current.get(tenant, 0)


class AdaptiveTenantPolicy:
    """Enable a tenant's partitions when its gateway load is high.

    Args:
        scheme: the multi-tenant SwitchV2P instance to reconfigure.
        monitor: the gateway-load measurement source.
        enable_threshold: gateway packets per window above which a
            tenant gets cache partitions.
        disable_threshold: load below which partitions are reclaimed
            (hysteresis; must be <= enable_threshold).
        slots_per_switch: partition size granted to a newly enabled
            tenant on each switch.
        period_ns: policy evaluation interval.
    """

    def __init__(self, scheme: MultiTenantSwitchV2P,
                 monitor: GatewayLoadMonitor,
                 enable_threshold: int,
                 disable_threshold: int,
                 slots_per_switch: int,
                 period_ns: int) -> None:
        if disable_threshold > enable_threshold:
            raise ValueError("disable threshold must not exceed enable "
                             "threshold (hysteresis)")
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.scheme = scheme
        self.monitor = monitor
        self.enable_threshold = enable_threshold
        self.disable_threshold = disable_threshold
        self.slots_per_switch = slots_per_switch
        self.period_ns = period_ns
        self.enabled: set[int] = set()
        self.enable_events = 0
        self.disable_events = 0

    def start(self) -> None:
        """Begin periodic evaluation on the scheme's network engine."""
        assert self.scheme.network is not None
        for cache in self.scheme.caches.values():
            self.enabled.update(cache.partitions)
        self.scheme.network.engine.schedule_after(self.period_ns, self._tick)

    def _tick(self) -> None:
        assert self.scheme.network is not None
        for tenant in self.monitor.registry.tenants:
            load = self.monitor.window_counts(tenant)
            if tenant not in self.enabled and load >= self.enable_threshold:
                self._enable(tenant)
            elif tenant in self.enabled and load <= self.disable_threshold:
                self._disable(tenant)
        self.scheme.network.engine.schedule_after(self.period_ns, self._tick)

    def _enable(self, tenant: int) -> None:
        for cache in self.scheme.caches.values():
            if tenant not in cache.partitions:
                cache.add_partition(tenant, self.slots_per_switch)
        self.enabled.add(tenant)
        self.enable_events += 1

    def _disable(self, tenant: int) -> None:
        for cache in self.scheme.caches.values():
            cache.remove_partition(tenant)
        self.enabled.discard(tenant)
        self.disable_events += 1
