"""Metrics collection and reporting."""

from repro.metrics.collector import Collector, FlowRecord
from repro.metrics.reporting import (
    failure_breakdown_rows,
    improvement,
    render_table,
)
from repro.metrics.sketch import QuantileSketch
from repro.metrics.streaming import WindowedCollector, WindowStats
from repro.metrics.resilience import (
    PhaseStats,
    ResilienceProbe,
    ResilienceSummary,
)
from repro.metrics.timeline import (
    RatioTimeline,
    Sample,
    WindowedRateSampler,
    track_gateway_load,
    track_hit_rate,
)

__all__ = [
    "Collector",
    "FlowRecord",
    "render_table",
    "improvement",
    "failure_breakdown_rows",
    "QuantileSketch",
    "WindowedCollector",
    "WindowStats",
    "Sample",
    "WindowedRateSampler",
    "RatioTimeline",
    "track_gateway_load",
    "track_hit_rate",
    "PhaseStats",
    "ResilienceProbe",
    "ResilienceSummary",
]
