"""Time-series sampling of live metrics during a run.

The paper argues the data-plane cache "promptly adapts to changing
traffic patterns" — a statement about *convergence over time* that the
end-of-run aggregates cannot show.  These samplers record windowed
rates while the simulation runs: gateway load over time (cache warm-up,
migration disruption and recovery) and in-network hit rate over time.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.engine import Engine


@dataclass(frozen=True)
class Sample:
    """One window's measurement."""

    time_ns: int
    value: float


class WindowedRateSampler:
    """Periodically samples the delta of a monotonic counter.

    Args:
        engine: the simulation engine to schedule on.
        counter: callable returning the current cumulative count.
        period_ns: window length.
        label: human-readable name for reports.
    """

    def __init__(self, engine: Engine, counter: Callable[[], float],
                 period_ns: int, label: str = "") -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.engine = engine
        self.counter = counter
        self.period_ns = period_ns
        self.label = label
        self.samples: list[Sample] = []
        self._last_value = 0.0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._last_value = float(self.counter())
        self.engine.schedule_after(self.period_ns, self._tick)

    def _tick(self) -> None:
        current = float(self.counter())
        self.samples.append(Sample(self.engine.now, current - self._last_value))
        self._last_value = current
        self.engine.schedule_after(self.period_ns, self._tick)

    def values(self) -> list[float]:
        return [sample.value for sample in self.samples]

    def peak(self) -> float:
        return max((s.value for s in self.samples), default=0.0)


class RatioTimeline:
    """Windowed ratio of two monotonic counters (e.g. hit rate).

    Each window records ``1 - delta(numerator)/delta(denominator)`` or
    the plain ratio, depending on ``complement``.
    """

    def __init__(self, engine: Engine, numerator: Callable[[], float],
                 denominator: Callable[[], float], period_ns: int,
                 complement: bool = False, label: str = "") -> None:
        if period_ns <= 0:
            raise ValueError("sampling period must be positive")
        self.engine = engine
        self.numerator = numerator
        self.denominator = denominator
        self.period_ns = period_ns
        self.complement = complement
        self.label = label
        self.samples: list[Sample] = []
        self._last_num = 0.0
        self._last_den = 0.0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("sampler already started")
        self._started = True
        self._last_num = float(self.numerator())
        self._last_den = float(self.denominator())
        self.engine.schedule_after(self.period_ns, self._tick)

    def _tick(self) -> None:
        num = float(self.numerator())
        den = float(self.denominator())
        delta_num = num - self._last_num
        delta_den = den - self._last_den
        self._last_num, self._last_den = num, den
        if delta_den > 0:
            ratio = delta_num / delta_den
            self.samples.append(Sample(
                self.engine.now, 1.0 - ratio if self.complement else ratio))
        self.engine.schedule_after(self.period_ns, self._tick)

    def values(self) -> list[float]:
        return [sample.value for sample in self.samples]


def track_gateway_load(network, period_ns: int) -> WindowedRateSampler:
    """Gateway packet arrivals per window (started immediately)."""
    collector = network.collector
    sampler = WindowedRateSampler(
        network.engine, lambda: collector.gateway_arrivals, period_ns,
        label="gateway packets/window")
    sampler.start()
    return sampler


def track_hit_rate(network, period_ns: int) -> RatioTimeline:
    """Windowed in-network hit rate: 1 - gateway/sent per window.

    Sent packets are read live from the hosts (the collector aggregates
    them only at finalize time).
    """
    hosts = network.hosts
    collector = network.collector
    timeline = RatioTimeline(
        network.engine,
        numerator=lambda: collector.gateway_arrivals,
        denominator=lambda: sum(host.packets_sent for host in hosts),
        period_ns=period_ns,
        complement=True,
        label="hit rate/window")
    timeline.start()
    return timeline
