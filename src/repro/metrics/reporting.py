"""Plain-text table rendering for benchmark output.

The benchmark harness prints each reproduced table/figure as an ASCII
table whose rows mirror the paper's series, so paper-vs-measured
comparison (EXPERIMENTS.md) is a visual diff.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return "n/a"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


#: Shade ramp for ASCII heatmaps, light to dark.
_SHADES = " .:-=+*#%@"


def render_heatmap(row_labels: Sequence[str], col_labels: Sequence[str],
                   values: Sequence[Sequence[float]], title: str = "") -> str:
    """Render a matrix as an ASCII heatmap (Figure 7/8 style).

    Cells are shaded relative to the global maximum, so hotspots (the
    gateway pods) stand out exactly as they do in the paper's figures.
    """
    peak = max((cell for row in values for cell in row), default=0.0)
    rows = []
    for label, row in zip(row_labels, values):
        cells = []
        for cell in row:
            if peak <= 0:
                cells.append(_SHADES[0])
            else:
                index = min(len(_SHADES) - 1,
                            int(cell / peak * (len(_SHADES) - 1) + 0.5))
                cells.append(_SHADES[index])
        rows.append([label, " ".join(cells)])
    return render_table(["", " ".join(str(c) for c in col_labels)], rows,
                        title=title)


def failure_breakdown_rows(failed_flows: int,
                           failure_reasons: dict[str, int],
                           label: str = "failed flows") -> list[list]:
    """Summary-table rows for per-flow availability.

    One row with the failed-flow count, then one indented row per
    ``failure_reason`` (sorted by count, then name).  Callers append
    these to a metric/value table; a run with zero failures still gets
    the headline row so "0 failed" is stated, not implied.
    """
    rows: list[list] = [[label, failed_flows]]
    for reason, count in sorted(failure_reasons.items(),
                                key=lambda kv: (-kv[1], kv[0])):
        rows.append([f"  {label}[{reason}]", count])
    return rows


def improvement(value: float, baseline: float) -> float:
    """Improvement factor of ``value`` over ``baseline`` (higher=better).

    Matches the paper's normalization: FCT and latency improvements are
    ``baseline / value`` so a 2.0 means twice as fast as NoCache.
    """
    if value <= 0 or value != value:
        return float("nan")
    if baseline != baseline or baseline in (float("inf"), float("-inf")):
        return float("nan")
    return baseline / value
