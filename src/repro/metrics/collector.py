"""Experiment metrics.

One :class:`Collector` instance accompanies each simulation run and
accumulates every quantity the paper reports: cache hit rates (total,
per-layer, first-packet), flow completion times, first-packet latency,
gateway load, per-switch byte counts (pulled from switch stats), packet
stretch, misdeliveries and protocol packet overheads.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass

from repro.net.node import Layer
from repro.net.packet import Packet, PacketKind


@dataclass
class FlowRecord:
    """Lifecycle record of a single flow."""

    flow_id: int
    src_vip: int
    dst_vip: int
    size_bytes: int
    start_ns: int
    first_packet_latency_ns: int | None = None
    fct_ns: int | None = None
    bytes_received: int = 0
    retransmissions: int = 0
    #: The transport gave up on this flow (max retransmits exceeded —
    #: destination or every gateway unreachable).  Terminal state, so
    #: experiments with dead endpoints still finish and can report
    #: per-flow availability.
    failed: bool = False
    #: Why the flow failed (e.g. ``"max-retransmits"``).  Every failed
    #: flow must carry one — the chaos oracles treat a failure without
    #: a reason as a harness bug.
    failure_reason: str | None = None

    @property
    def completed(self) -> bool:
        return self.fct_ns is not None


class Collector:
    """Accumulates per-run metrics; query helpers summarize them."""

    def __init__(self) -> None:
        self.flows: dict[int, FlowRecord] = {}
        self.packets_sent = 0
        self.gateway_arrivals = 0
        self.hits_by_layer: Counter = Counter()
        self.first_packet_hits_by_layer: Counter = Counter()
        self.learning_packets = 0
        self.invalidation_packets = 0
        self.spillover_inserts = 0
        self.promotions = 0
        self.misdeliveries = 0
        self.deliveries = 0
        self.delivered_hops = 0
        self.reorder_events = 0
        self.drops = 0
        self.last_misdelivered_arrival_ns: int | None = None
        self.packet_latency_sum_ns = 0
        self.packet_latency_count = 0
        #: Application payload bytes delivered to endpoints (goodput).
        self.delivered_payload_bytes = 0
        #: Packets hard-dropped because no live gateway remained.
        self.gateway_unavailable_drops = 0
        #: Packets lost at crashed gateways (summed at finalize).
        self.gateway_crash_drops = 0
        #: Packets shed by browned-out gateways (summed at finalize).
        self.gateway_brownout_drops = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def register_flow(self, record: FlowRecord) -> None:
        self.flows[record.flow_id] = record

    def record_send(self) -> None:
        self.packets_sent += 1

    def record_gateway_arrival(self, packet: Packet) -> None:
        self.gateway_arrivals += 1

    def record_hit(self, layer: Layer, first_packet: bool) -> None:
        self.hits_by_layer[layer] += 1
        if first_packet:
            self.first_packet_hits_by_layer[layer] += 1

    def record_delivery(self, packet: Packet, now: int) -> None:
        self.deliveries += 1
        self.delivered_hops += packet.hops
        if packet.kind is PacketKind.DATA:
            self.packet_latency_sum_ns += now - packet.created_at
            self.packet_latency_count += 1
            self.delivered_payload_bytes += packet.payload_bytes

    def record_misdelivery(self, now: int) -> None:
        self.misdeliveries += 1
        self.last_misdelivered_arrival_ns = now

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of sent packets that never reached a gateway (§5)."""
        if self.packets_sent == 0:
            return 0.0
        missed = min(self.gateway_arrivals, self.packets_sent)
        return 1.0 - missed / self.packets_sent

    @property
    def in_network_hits(self) -> int:
        return sum(self.hits_by_layer.values())

    def hit_share_by_layer(self, first_packet: bool = False) -> dict[Layer, float]:
        """Per-layer share of in-network hits (Table 5 rows)."""
        source = self.first_packet_hits_by_layer if first_packet else self.hits_by_layer
        total = sum(source.values())
        if total == 0:
            return {layer: 0.0 for layer in Layer}
        return {layer: source.get(layer, 0) / total for layer in Layer}

    def completed_flows(self) -> list[FlowRecord]:
        return [flow for flow in self.flows.values() if flow.completed]

    def failed_flows(self) -> list[FlowRecord]:
        """Flows whose transport gave up (terminal, never completing)."""
        return [flow for flow in self.flows.values() if flow.failed]

    def unterminated_flows(self) -> list[FlowRecord]:
        """Flows that ended the run neither completed nor failed.

        Non-empty only while flows are genuinely in flight; at a
        quiescent horizon the chaos liveness oracle requires this to be
        empty.
        """
        return [flow for flow in self.flows.values()
                if not flow.completed and not flow.failed]

    @property
    def completion_rate(self) -> float:
        if not self.flows:
            return 0.0
        return len(self.completed_flows()) / len(self.flows)

    @property
    def availability(self) -> float:
        """Per-flow availability: fraction of flows that completed.

        Under fault injection this is the paper-style "graceful
        degradation" headline number — flows that were abandoned
        (``failed``) or still stuck at the horizon count against it.
        """
        return self.completion_rate

    def average_fct_ns(self) -> float:
        completed = [flow.fct_ns for flow in self.flows.values()
                     if flow.fct_ns is not None]
        if not completed:
            return float("inf")
        return statistics.fmean(completed)

    def average_first_packet_latency_ns(self) -> float:
        values = [flow.first_packet_latency_ns for flow in self.flows.values()
                  if flow.first_packet_latency_ns is not None]
        if not values:
            return float("inf")
        return statistics.fmean(values)

    def percentile_fct_ns(self, percentile: float) -> float:
        completed = sorted(flow.fct_ns for flow in self.flows.values()
                           if flow.fct_ns is not None)
        if not completed:
            return float("inf")
        index = min(len(completed) - 1, int(percentile / 100 * len(completed)))
        return float(completed[index])

    def average_packet_latency_ns(self) -> float:
        if self.packet_latency_count == 0:
            return float("inf")
        return self.packet_latency_sum_ns / self.packet_latency_count

    def average_stretch(self) -> float:
        """Mean number of switches traversed per delivered packet (§5.3)."""
        if self.deliveries == 0:
            return 0.0
        return self.delivered_hops / self.deliveries
