"""Fixed-size streaming quantile sketch (DDSketch-style log buckets).

Long-horizon service runs cannot keep every flow completion time in a
list — percentiles must come from a structure whose memory is bounded
regardless of how many values stream through.  :class:`QuantileSketch`
buckets positive values logarithmically so any reported quantile is
within a configurable *relative* error of the true value (1% by
default), matching how latency SLOs are actually stated.  The bucket
map is capped; when full, the lowest buckets collapse together, which
degrades accuracy only at the cheap end of the distribution (the tail
buckets an SLO cares about are never merged away).

Everything is integer/float arithmetic on the inserted values — no
randomness, no wall clock — so sketches are bit-deterministic and two
sketches fed the same stream merge and report identically.
"""

from __future__ import annotations

import math


class QuantileSketch:
    """Streaming quantiles with bounded memory and relative-error bounds.

    Args:
        relative_accuracy: guaranteed bound on
            ``|reported - true| / true`` for any quantile, while the
            bucket cap is not hit.
        max_buckets: cap on distinct buckets; exceeding it collapses
            the two lowest buckets (tail accuracy is preserved).
    """

    __slots__ = ("relative_accuracy", "max_buckets", "_gamma", "_log_gamma",
                 "count", "_zero_count", "_buckets", "min_value", "max_value",
                 "sum_value")

    def __init__(self, relative_accuracy: float = 0.01,
                 max_buckets: int = 2048) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative accuracy must be in (0, 1), got {relative_accuracy}")
        if max_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {max_buckets}")
        self.relative_accuracy = relative_accuracy
        self.max_buckets = max_buckets
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self._zero_count = 0
        #: bucket index -> count; index i covers (gamma^(i-1), gamma^i].
        self._buckets: dict[int, int] = {}
        self.min_value = math.inf
        self.max_value = -math.inf
        self.sum_value = 0.0

    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        """Insert one observation (non-positive values count as zero)."""
        self.count += 1
        self.sum_value += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        if value <= 0:
            self._zero_count += 1
            return
        key = math.ceil(math.log(value) / self._log_gamma)
        buckets = self._buckets
        buckets[key] = buckets.get(key, 0) + 1
        if len(buckets) > self.max_buckets:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Merge the two lowest buckets (cheap-end accuracy loss only)."""
        lowest, second = sorted(self._buckets)[:2]
        self._buckets[second] += self._buckets.pop(lowest)

    def merge(self, other: QuantileSketch) -> None:
        """Fold ``other`` (same accuracy) into this sketch in place."""
        if other._gamma != self._gamma:
            raise ValueError("cannot merge sketches with different accuracy")
        self.count += other.count
        self._zero_count += other._zero_count
        self.sum_value += other.sum_value
        if other.min_value < self.min_value:
            self.min_value = other.min_value
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        buckets = self._buckets
        for key, num in other._buckets.items():
            buckets[key] = buckets.get(key, 0) + num
        while len(buckets) > self.max_buckets:
            self._collapse_lowest()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def bucket_count(self) -> int:
        """Distinct buckets currently held (memory gauge for tests)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def mean(self) -> float:
        if self.count == 0:
            return math.inf
        return self.sum_value / self.count

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1]; ``inf`` when empty.

        Reported as the bucket midpoint in log space, which is what
        bounds the relative error by ``relative_accuracy``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.inf
        rank = q * (self.count - 1)
        seen = self._zero_count
        if rank < seen:
            return max(0.0, self.min_value)
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if rank < seen:
                estimate = (2.0 * self._gamma ** key) / (self._gamma + 1.0)
                # Clamp into the observed range: the extreme buckets
                # would otherwise report beyond the true min/max.
                return min(self.max_value, max(self.min_value, estimate))
        return self.max_value
