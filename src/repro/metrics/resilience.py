"""Resilience metrics: how a scheme degrades and recovers under faults.

End-of-run aggregates hide the shape of an outage: a run that loses its
gateway for 2 ms and fully recovers can post the same average hit rate
as one that limps for the rest of the run.  A :class:`ResilienceProbe`
attaches windowed samplers (in-network hit rate and delivered goodput)
to a live network and, after the run, splits the timeline around a
:class:`~repro.faults.FaultSchedule` into *before / during / after*
phases, yielding the numbers the chaos experiment reports:

* phase-averaged windowed hit rate and goodput,
* time-to-recover: how long after the last repair the windowed hit
  rate returns to (a fraction of) its pre-fault baseline,
* per-flow availability and the drop counters attributable to faults.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.metrics.timeline import Sample, WindowedRateSampler, track_hit_rate

DEFAULT_RECOVERY_FRACTION = 0.9


@dataclass(frozen=True)
class PhaseStats:
    """Windowed-metric averages for one phase of the run."""

    samples: int
    mean_hit_rate: float
    mean_goodput_bytes: float


@dataclass(frozen=True)
class ResilienceSummary:
    """The chaos experiment's per-run resilience numbers."""

    before: PhaseStats
    during: PhaseStats
    after: PhaseStats
    #: ns from the last repair until windowed hit rate first reaches
    #: ``recovery_fraction`` x the pre-fault baseline; None if it never
    #: does (or there were no faults / no baseline).
    time_to_recover_ns: int | None
    availability: float
    completed_flows: int
    failed_flows: int
    gateway_crash_drops: int
    gateway_unavailable_drops: int
    unroutable_drops: int
    #: Packets shed by browned-out (gray-degraded) gateways; 0 for
    #: fail-stop-only schedules.
    gateway_brownout_drops: int = 0

    @property
    def hit_rate_dip(self) -> float:
        """How far windowed hit rate fell during faults vs. before."""
        return max(0.0, self.before.mean_hit_rate - self.during.mean_hit_rate)


class ResilienceProbe:
    """Windowed samplers + fault-aware summarization for one run.

    Create *before* ``network.run`` (the samplers schedule themselves
    from t=0), then call :meth:`summarize` afterwards::

        probe = ResilienceProbe(network, period_ns=usec(250))
        schedule.apply(network)
        network.run(until=horizon)
        summary = probe.summarize(schedule)
    """

    def __init__(self, network, period_ns: int) -> None:
        self.network = network
        self.period_ns = period_ns
        self.hit_rate = track_hit_rate(network, period_ns)
        collector = network.collector
        self.goodput = WindowedRateSampler(
            network.engine, lambda: collector.delivered_payload_bytes,
            period_ns, label="goodput bytes/window")
        self.goodput.start()

    # ------------------------------------------------------------------
    def summarize(self, schedule=None,
                  recovery_fraction: float = DEFAULT_RECOVERY_FRACTION,
                  ) -> ResilienceSummary:
        """Split the sampled timelines around ``schedule``'s fault window."""
        first = schedule.first_fault_ns() if schedule is not None else None
        last = schedule.last_recovery_ns() if schedule is not None else None
        before_h, during_h, after_h = _split(self.hit_rate.samples, first, last)
        before_g, during_g, after_g = _split(self.goodput.samples, first, last)

        baseline = _mean(before_h)
        recover_ns = self._time_to_recover(last, baseline, recovery_fraction)

        collector = self.network.collector
        hosts = self.network.hosts
        return ResilienceSummary(
            before=_phase(before_h, before_g),
            during=_phase(during_h, during_g),
            after=_phase(after_h, after_g),
            time_to_recover_ns=recover_ns,
            availability=collector.availability,
            completed_flows=len(collector.completed_flows()),
            failed_flows=len(collector.failed_flows()),
            gateway_crash_drops=collector.gateway_crash_drops,
            gateway_unavailable_drops=collector.gateway_unavailable_drops,
            unroutable_drops=sum(host.unroutable_drops for host in hosts),
            gateway_brownout_drops=collector.gateway_brownout_drops,
        )

    def _time_to_recover(self, last_recovery_ns: int | None, baseline: float,
                         fraction: float) -> int | None:
        if last_recovery_ns is None or baseline <= 0.0:
            return None
        target = fraction * baseline
        for sample in self.hit_rate.samples:
            if sample.time_ns >= last_recovery_ns and sample.value >= target:
                return sample.time_ns - last_recovery_ns
        return None


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _split(samples: list[Sample], first: int | None,
           last: int | None) -> tuple[list[Sample], list[Sample], list[Sample]]:
    """Partition samples into before / during / after the fault window.

    With no faults everything is "before".  A window is attributed by
    its *end* timestamp (samples record the window that just closed).
    """
    if first is None:
        return list(samples), [], []
    end = last if last is not None else max(
        (s.time_ns for s in samples), default=first)
    before = [s for s in samples if s.time_ns < first]
    during = [s for s in samples if first <= s.time_ns <= end]
    after = [s for s in samples if s.time_ns > end]
    return before, during, after


def _mean(samples: list[Sample]) -> float:
    if not samples:
        return 0.0
    return statistics.fmean(s.value for s in samples)


def _phase(hit_samples: list[Sample], goodput_samples: list[Sample]) -> PhaseStats:
    return PhaseStats(samples=len(hit_samples),
                      mean_hit_rate=_mean(hit_samples),
                      mean_goodput_bytes=_mean(goodput_samples))
