"""Streaming, windowed metrics for long-horizon service runs.

The plain :class:`~repro.metrics.collector.Collector` accumulates one
:class:`~repro.metrics.collector.FlowRecord` per flow for the lifetime
of a run — exactly right for a two-second episode, fatal for a service
that runs for minutes of simulated time under continuous churn.
:class:`WindowedCollector` keeps the same recording interface but
*retires* flow records the moment they are terminal (completed or
failed) at each window boundary, folding them into cumulative counters
and fixed-size quantile sketches (:mod:`repro.metrics.sketch`).  Memory
is therefore O(in-flight flows + one window), independent of run
length, and each closed window emits an immutable :class:`WindowStats`
for the SLO timeline.

Window semantics:

* a flow is counted as *started* in the window containing its
  ``start_ns``;
* a flow is counted as *completed*/*failed* — and its FCT enters the
  sketches — in the window during which it reached that terminal state
  (a flow spanning several windows is counted once, at the end);
* per-window packet and gateway-arrival counts are deltas of the live
  counters between boundaries, so hit ratios are per-window, not
  cumulative;
* an empty window (no traffic) still emits a WindowStats with zero
  counts — gaps in a timeline are data, not missing rows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.metrics.collector import Collector
from repro.metrics.sketch import QuantileSketch
from repro.sim.engine import SECOND


@dataclass(frozen=True)
class WindowStats:
    """Immutable per-window summary emitted at each window close."""

    index: int
    start_ns: int
    end_ns: int
    flows_started: int
    flows_completed: int
    flows_failed: int
    failure_reasons: dict[str, int] = field(default_factory=dict)
    fct_p50_ns: float = float("inf")
    fct_p99_ns: float = float("inf")
    packets_sent: int = 0
    gateway_arrivals: int = 0
    hit_ratio: float = 0.0
    misdeliveries: int = 0
    #: Non-terminal flow records still held after this window's
    #: retirement pass (the bounded-memory gauge).
    retained_records: int = 0

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "flows_started": self.flows_started,
            "flows_completed": self.flows_completed,
            "flows_failed": self.flows_failed,
            "failure_reasons": dict(self.failure_reasons),
            "fct_p50_ns": _json_float(self.fct_p50_ns),
            "fct_p99_ns": _json_float(self.fct_p99_ns),
            "packets_sent": self.packets_sent,
            "gateway_arrivals": self.gateway_arrivals,
            "hit_ratio": self.hit_ratio,
            "misdeliveries": self.misdeliveries,
            "retained_records": self.retained_records,
        }


def _json_float(value: float) -> float | None:
    """JSON has no inf; empty-window percentiles serialize as null."""
    return value if value == value and abs(value) != float("inf") else None


class WindowedCollector(Collector):
    """A :class:`Collector` that retires terminal flows per window.

    Usage::

        collector = WindowedCollector(window_ns=SECOND)
        network = VirtualNetwork(config, scheme, collector)
        collector.attach(network)      # arms the periodic window close
        ... run ...
        collector.flush()              # close the final partial window

    Args:
        window_ns: window length (simulated time).
        relative_accuracy: FCT sketch accuracy (1% default).
        on_window: optional callback invoked with each closed
            :class:`WindowStats` (the service driver's SLO hook).
    """

    def __init__(self, window_ns: int = SECOND,
                 relative_accuracy: float = 0.01,
                 on_window=None) -> None:
        super().__init__()
        if window_ns <= 0:
            raise ValueError(f"window must be positive, got {window_ns}")
        self.window_ns = window_ns
        self.on_window = on_window
        self.windows: list[WindowStats] = []
        # Cumulative terminal-flow state (records themselves are gone).
        self.flows_started_total = 0
        self.completed_total = 0
        self.failed_total = 0
        self.failure_reason_totals: Counter = Counter()
        self.fct_sketch = QuantileSketch(relative_accuracy)
        self.first_packet_sketch = QuantileSketch(relative_accuracy)
        #: High-water mark of co-resident FlowRecords (bounded-memory
        #: acceptance gauge: must stay O(window), not O(run)).
        self.peak_retained_records = 0
        self._relative_accuracy = relative_accuracy
        self._network = None
        self._task = None
        self._window_start_ns = 0
        # Last-boundary snapshots for per-window deltas.
        self._last_started = 0
        self._last_gateway_arrivals = 0
        self._last_packets_sent = 0
        self._last_misdeliveries = 0
        self._window_fct = QuantileSketch(relative_accuracy)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, network) -> None:
        """Bind to a network and arm the periodic window close.

        Must be called before the run starts (window boundaries are
        multiples of ``window_ns`` from the attach time, normally 0).
        """
        self._network = network
        self._window_start_ns = network.engine.now
        self._task = network.engine.schedule_periodic(
            self.window_ns, self._close_window)

    def detach(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def flush(self) -> None:
        """Close the final (possibly partial) window, if it has begun."""
        if self._network is not None \
                and self._network.engine.now > self._window_start_ns:
            self._close_window()

    # ------------------------------------------------------------------
    # recording overrides
    # ------------------------------------------------------------------
    def register_flow(self, record) -> None:
        self.flows_started_total += 1
        super().register_flow(record)
        if len(self.flows) > self.peak_retained_records:
            self.peak_retained_records = len(self.flows)

    # ------------------------------------------------------------------
    # the window close
    # ------------------------------------------------------------------
    def _live_packets_sent(self) -> int:
        """Packets sent so far, read live from the hosts.

        ``Collector.packets_sent`` is folded only at finalize; a window
        boundary needs the current value.
        """
        if self._network is None:
            return self.packets_sent
        return sum(host.packets_sent for host in self._network.hosts)

    def _live_misdeliveries(self) -> int:
        if self._network is None:
            return self.misdeliveries
        return sum(host.misdeliveries for host in self._network.hosts)

    def _close_window(self) -> None:
        now = self._network.engine.now if self._network is not None else 0
        completed = failed = 0
        reasons: Counter = Counter()
        window_fct = self._window_fct
        for flow_id in [fid for fid, rec in self.flows.items()
                        if rec.completed or rec.failed]:
            record = self.flows.pop(flow_id)
            if record.completed:
                completed += 1
                self.completed_total += 1
                self.fct_sketch.add(record.fct_ns)
                window_fct.add(record.fct_ns)
                if record.first_packet_latency_ns is not None:
                    self.first_packet_sketch.add(record.first_packet_latency_ns)
            else:
                failed += 1
                self.failed_total += 1
                reason = record.failure_reason or "unspecified"
                reasons[reason] += 1
                self.failure_reason_totals[reason] += 1
        sent = self._live_packets_sent()
        sent_delta = sent - self._last_packets_sent
        gateway_delta = self.gateway_arrivals - self._last_gateway_arrivals
        misdeliveries = self._live_misdeliveries()
        misdelivery_delta = misdeliveries - self._last_misdeliveries
        hit_ratio = 0.0
        if sent_delta > 0:
            hit_ratio = 1.0 - min(gateway_delta, sent_delta) / sent_delta
        stats = WindowStats(
            index=len(self.windows),
            start_ns=self._window_start_ns,
            end_ns=now,
            flows_started=self.flows_started_total - self._last_started,
            flows_completed=completed,
            flows_failed=failed,
            failure_reasons=dict(reasons),
            fct_p50_ns=window_fct.quantile(0.50),
            fct_p99_ns=window_fct.quantile(0.99),
            packets_sent=sent_delta,
            gateway_arrivals=gateway_delta,
            hit_ratio=hit_ratio,
            misdeliveries=misdelivery_delta,
            retained_records=len(self.flows),
        )
        self.windows.append(stats)
        self._window_start_ns = now
        self._last_started = self.flows_started_total
        self._last_packets_sent = sent
        self._last_gateway_arrivals = self.gateway_arrivals
        self._last_misdeliveries = misdeliveries
        self._window_fct = QuantileSketch(self._relative_accuracy)
        if self.on_window is not None:
            self.on_window(stats)

    # ------------------------------------------------------------------
    # summary overrides (cumulative state replaces the flows dict)
    # ------------------------------------------------------------------
    def _completed_now(self) -> int:
        return self.completed_total + sum(
            1 for r in self.flows.values() if r.completed)

    def _failed_now(self) -> int:
        return self.failed_total + sum(
            1 for r in self.flows.values() if r.failed)

    @property
    def completion_rate(self) -> float:
        if self.flows_started_total == 0:
            return 0.0
        return self._completed_now() / self.flows_started_total

    def average_fct_ns(self) -> float:
        sketch = self.fct_sketch
        live = [r.fct_ns for r in self.flows.values() if r.fct_ns is not None]
        total = sketch.count + len(live)
        if total == 0:
            return float("inf")
        return (sketch.sum_value + sum(live)) / total

    def average_first_packet_latency_ns(self) -> float:
        sketch = self.first_packet_sketch
        live = [r.first_packet_latency_ns for r in self.flows.values()
                if r.first_packet_latency_ns is not None]
        total = sketch.count + len(live)
        if total == 0:
            return float("inf")
        return (sketch.sum_value + sum(live)) / total

    def percentile_fct_ns(self, percentile: float) -> float:
        """Sketch-backed percentile over every retired completion."""
        if self.fct_sketch.count == 0:
            return super().percentile_fct_ns(percentile)
        return self.fct_sketch.quantile(percentile / 100.0)
