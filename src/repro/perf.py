"""Performance observability for simulation runs.

The hot-path optimizations in the engine, packet and forwarding layers
only stay honest if regressions are visible, so this module provides
the measurement side of the bargain:

* :class:`PhaseTimer` — named wall-clock phase accumulators built on
  ``time.perf_counter_ns`` (cheap enough to leave permanently wired
  into :func:`repro.experiments.runner.run_flows`);
* :class:`PhaseMemoryTimer` — a :class:`PhaseTimer` that additionally
  snapshots the Python heap (``tracemalloc``) and process peak RSS at
  every phase boundary, powering ``python -m repro profile --memory``;
* :class:`RunProfile` — a summary of one run (phase breakdown,
  events/sec, packets/sec) with a renderable table;
* :func:`profile_experiment` — the engine behind
  ``python -m repro profile <trace>``, optionally wrapping the run in
  ``cProfile`` for a function-level breakdown.

Measurements never feed back into the simulation (the simulated clock
is integer nanoseconds driven only by scheduled events), so profiling a
run cannot change its result.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
import tracemalloc
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

try:
    import resource
except ImportError:  # pragma: no cover - non-Unix platforms
    resource = None  # type: ignore[assignment]


def peak_rss_kb() -> float:
    """Process peak resident set size in KiB (0.0 where unavailable).

    ``ru_maxrss`` is kibibytes on Linux; the value is a high-water
    mark, so successive reads are monotonically non-decreasing.
    """
    if resource is None:
        return 0.0
    return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class PhaseTimer:
    """Accumulates wall-clock time per named phase.

    Example:
        >>> timer = PhaseTimer()
        >>> with timer.phase("build"):
        ...     pass
        >>> "build" in timer.phases_ns
        True
    """

    __slots__ = ("phases_ns",)

    def __init__(self) -> None:
        #: Phase name -> accumulated wall-clock nanoseconds.
        self.phases_ns: dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (re-entrant by sum)."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - start
            self.phases_ns[name] = self.phases_ns.get(name, 0) + elapsed

    def add(self, name: str, elapsed_ns: int) -> None:
        """Fold an externally measured duration into phase ``name``.

        The parallel sweep orchestrator measures each job's wall clock
        inside the worker process and feeds it back here, so a timer in
        the parent accumulates true per-job compute time even though
        the jobs ran elsewhere.
        """
        self.phases_ns[name] = self.phases_ns.get(name, 0) + int(elapsed_ns)

    @property
    def total_ns(self) -> int:
        return sum(self.phases_ns.values())


class PhaseMemoryTimer(PhaseTimer):
    """A :class:`PhaseTimer` that also snapshots memory per phase.

    At each phase exit, records the phase's ``tracemalloc`` peak (reset
    at phase entry, so peaks are attributed to the phase that caused
    them), the Python-heap size still live at the boundary, and the
    process peak RSS high-water mark.  The caller owns the tracing
    lifecycle: call ``tracemalloc.start()`` before the first phase (or
    the tracemalloc columns read zero).

    Re-entered phases keep the maximum of their peaks and the latest
    end-of-phase heap size.
    """

    __slots__ = ("memory_by_phase",)

    def __init__(self) -> None:
        super().__init__()
        #: Phase name -> {"py_peak_kb", "py_end_kb", "rss_peak_kb"}.
        self.memory_by_phase: dict[str, dict[str, float]] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - start
            self.phases_ns[name] = self.phases_ns.get(name, 0) + elapsed
            current, peak = (tracemalloc.get_traced_memory()
                             if tracemalloc.is_tracing() else (0, 0))
            entry = self.memory_by_phase.setdefault(
                name, {"py_peak_kb": 0.0, "py_end_kb": 0.0,
                       "rss_peak_kb": 0.0})
            entry["py_peak_kb"] = max(entry["py_peak_kb"], peak / 1024)
            entry["py_end_kb"] = current / 1024
            entry["rss_peak_kb"] = max(entry["rss_peak_kb"], peak_rss_kb())


def timed_call(fn, /, *args, **kwargs):
    """Call ``fn`` and return ``(result, elapsed_wall_ns)``.

    Lives here (not at the call sites) because wall-clock reads are
    confined to :mod:`repro.perf` by the determinism lint (D101): the
    simulation must never observe real time, and keeping every
    ``perf_counter_ns`` behind this module makes that auditable.
    """
    start = time.perf_counter_ns()
    result = fn(*args, **kwargs)
    return result, time.perf_counter_ns() - start


@dataclass
class RunProfile:
    """Wall-clock summary of one simulation run."""

    trace: str
    scheme: str
    wall_ns: int
    events: int
    packets: int
    phases_ns: dict[str, int] = field(default_factory=dict)
    #: Packet-pool effectiveness (recycled / (recycled + allocated)).
    pool_recycle_rate: float = 0.0
    #: Simulation fidelity ("packet" or "hybrid") and, for hybrid runs,
    #: the fluid scheduler's bookkeeping: how many flows were adopted,
    #: how many packets were advanced analytically rather than
    #: simulated, and why adopted flows fell back to packet level.
    fidelity: str = "packet"
    fluid_adoptions: int = 0
    fluid_escalations: int = 0
    fluid_rounds: int = 0
    fluid_packets: int = 0
    fluid_escalations_by_reason: dict[str, int] = field(default_factory=dict)
    #: Per-phase memory snapshots (``--memory``): phase name ->
    #: ``{"py_peak_kb", "py_end_kb", "rss_peak_kb"}``; empty when
    #: memory profiling was off.
    memory_by_phase: dict[str, dict[str, float]] = field(default_factory=dict)
    profile_text: str = ""

    @property
    def events_per_sec(self) -> float:
        return self.events / (self.wall_ns / 1e9) if self.wall_ns else 0.0

    @property
    def packets_per_sec(self) -> float:
        return self.packets / (self.wall_ns / 1e9) if self.wall_ns else 0.0

    @property
    def fluid_fraction(self) -> float:
        """Share of data-plane packets advanced analytically."""
        total = self.packets
        return self.fluid_packets / total if total else 0.0

    def as_dict(self) -> dict:
        data = {
            "trace": self.trace,
            "scheme": self.scheme,
            "wall_ms": self.wall_ns / 1e6,
            "events": self.events,
            "packets": self.packets,
            "events_per_sec": self.events_per_sec,
            "packets_per_sec": self.packets_per_sec,
            "pool_recycle_rate": self.pool_recycle_rate,
            "fidelity": self.fidelity,
            "phases_ms": {name: ns / 1e6
                          for name, ns in sorted(self.phases_ns.items())},
        }
        if self.memory_by_phase:
            data["memory_by_phase"] = {
                name: dict(entry)
                for name, entry in sorted(self.memory_by_phase.items())}
        if self.fidelity == "hybrid":
            data["fluid"] = {
                "adoptions": self.fluid_adoptions,
                "escalations": self.fluid_escalations,
                "rounds": self.fluid_rounds,
                "fluid_packets": self.fluid_packets,
                "fluid_fraction": self.fluid_fraction,
                "escalations_by_reason": dict(
                    sorted(self.fluid_escalations_by_reason.items())),
            }
        return data

    def render(self) -> str:
        lines = [
            f"trace={self.trace} scheme={self.scheme}",
            f"wall time        {self.wall_ns / 1e6:12.2f} ms",
            f"events           {self.events:12d}"
            f"  ({self.events_per_sec:,.0f}/s)",
            f"packets          {self.packets:12d}"
            f"  ({self.packets_per_sec:,.0f}/s)",
            f"pool recycle     {self.pool_recycle_rate:12.1%}",
        ]
        for name, ns in sorted(self.phases_ns.items()):
            lines.append(f"phase {name:<10} {ns / 1e6:12.2f} ms")
        for name, entry in sorted(self.memory_by_phase.items()):
            lines.append(
                f"mem   {name:<10} rss-peak {entry['rss_peak_kb'] / 1024:8.1f}"
                f" MB  py-heap peak {entry['py_peak_kb'] / 1024:8.1f} MB"
                f" (end {entry['py_end_kb'] / 1024:.1f} MB)")
        if self.fidelity == "hybrid":
            lines.append(f"fidelity         {'hybrid':>12}")
            lines.append(f"fluid adoptions  {self.fluid_adoptions:12d}"
                         f"  (escalations {self.fluid_escalations},"
                         f" rounds {self.fluid_rounds})")
            lines.append(f"fluid packets    {self.fluid_packets:12d}"
                         f"  ({self.fluid_fraction:.1%} of all packets)")
            for reason, count in sorted(
                    self.fluid_escalations_by_reason.items()):
                lines.append(f"  escalation {reason:<22} {count:8d}")
        if self.profile_text:
            lines.append("")
            lines.append(self.profile_text)
        return "\n".join(lines)


def profile_experiment(spec, scheme_name: str, flows, num_vms: int,
                       cache_ratio: float, seed: int = 0,
                       trace_name: str = "",
                       with_cprofile: bool = False,
                       with_memory: bool = False,
                       top: int = 25,
                       fidelity: str = "packet") -> tuple[RunProfile, object]:
    """Run one experiment under the phase timers (optionally cProfile).

    Args:
        with_memory: snapshot tracemalloc + peak RSS at every phase
            boundary; the event loop is additionally split into a
            ``run-warmup`` phase (through the last flow start plus
            10 ms, the cache cold-start window) and a ``run-steady``
            remainder, so build, warmup and steady-state memory show
            up separately.  Tracing slows the run; wall-clock numbers
            from a ``--memory`` profile are not comparable to plain
            ones.

    Returns:
        ``(profile, result)`` — the wall-clock profile and the normal
        :class:`~repro.experiments.runner.RunResult` (with the network
        retained, so callers can inspect engine/pool counters).
    """
    from repro.experiments.runner import run_experiment
    from repro.sim.engine import msec

    timer = PhaseMemoryTimer() if with_memory else PhaseTimer()
    warmup_split_ns = None
    if with_memory:
        tracemalloc.start()
        last_start = max((flow.start_ns for flow in flows), default=0)
        warmup_split_ns = last_start + msec(10)
    profiler = cProfile.Profile() if with_cprofile else None
    start = time.perf_counter_ns()
    if profiler is not None:
        profiler.enable()
    try:
        result = run_experiment(spec, scheme_name, flows, num_vms,
                                cache_ratio, seed, keep_network=True,
                                trace_name=trace_name, perf=timer,
                                fidelity=fidelity,
                                warmup_split_ns=warmup_split_ns)
    finally:
        if with_memory:
            tracemalloc.stop()
    if profiler is not None:
        profiler.disable()
    wall_ns = time.perf_counter_ns() - start

    network = result.network
    pool = network.packet_pool
    served = pool.allocated + pool.recycled
    profile_text = ""
    if profiler is not None:
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(top)
        profile_text = buffer.getvalue()
    profile = RunProfile(
        trace=trace_name,
        scheme=result.scheme,
        wall_ns=wall_ns,
        events=network.engine.events_processed,
        packets=result.packets_sent,
        phases_ns=dict(timer.phases_ns),
        pool_recycle_rate=pool.recycled / served if served else 0.0,
        fidelity=result.fidelity,
        fluid_adoptions=result.fluid_adoptions,
        fluid_escalations=result.fluid_escalations,
        fluid_rounds=result.fluid_rounds,
        fluid_packets=result.fluid_packets,
        fluid_escalations_by_reason=dict(result.fluid_escalations_by_reason),
        memory_by_phase=(dict(timer.memory_by_phase)
                         if isinstance(timer, PhaseMemoryTimer) else {}),
        profile_text=profile_text,
    )
    return profile, result
