"""Rolling planned maintenance as a generated :class:`FaultSchedule`.

Real fleets never take the whole fabric down: devices are rotated
through drain → outage → recovery windows one at a time.  This module
generates that rotation for a given topology — every non-gateway ToR,
every spine and every gateway takes a turn, round-robin, one device per
maintenance period — and returns both the executable
:class:`~repro.faults.FaultSchedule` and a list of
:class:`MaintenanceEvent` descriptors the SLO report uses to compute
per-event time-to-recover.

Gateways get the full drain → crash → restart treatment (the drain
pulls them from the load-balancing pool before the outage, and the
failure detector's probes reinstate them afterwards).  Switches have no
pool to drain from; their "drain" phase is the announced lead time
before the outage, recorded in the descriptor so recovery measurement
starts from the right instant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.schedule import FaultSchedule
from repro.net.topology import FatTreeSpec
from repro.service.config import ServiceConfig


@dataclass(frozen=True)
class MaintenanceEvent:
    """One device's maintenance window (report-side descriptor)."""

    #: Human-readable device label, e.g. ``"tor(1,0)"`` or ``"gateway 1"``.
    target: str
    #: Drain announced / load shifted away (gateways only act on this).
    drain_ns: int
    #: Device goes dark.
    fail_ns: int
    #: Device is back (switch recovered / gateway restarted).
    recover_ns: int

    def as_dict(self) -> dict:
        return {"target": self.target, "drain_ns": self.drain_ns,
                "fail_ns": self.fail_ns, "recover_ns": self.recover_ns}


def rotation_targets(spec: FatTreeSpec) -> list[tuple]:
    """The device rotation: non-gateway ToRs, spines and gateways,
    interleaved round-robin across the three classes so each class gets
    a turn every few periods (a class-by-class rotation would postpone
    all gateway maintenance to the end of the pass, past the horizon of
    short runs).

    Gateway-rack ToRs are excluded — taking one down severs its
    gateway while the failure detector still believes it healthy
    (probes model control-plane reachability, not the data path), which
    is a correlated-failure scenario for the chaos experiment, not
    planned maintenance.
    """
    gateway_racks = {(pod, spec.gateway_rack) for pod in spec.gateway_pods}
    tors: list[tuple] = []
    for pod in range(spec.pods):
        for rack in range(spec.racks_per_pod):
            if (pod, rack) not in gateway_racks:
                tors.append(("tor", pod, rack))
    spines: list[tuple] = []
    for pod in range(spec.pods):
        for index in range(spec.spines_per_pod):
            spines.append(("spine", pod, index))
    num_gateways = len(spec.gateway_pods) * spec.gateways_per_pod
    gateways: list[tuple] = [("gateway", i) for i in range(num_gateways)]
    classes = [tors, spines, gateways]
    targets: list[tuple] = []
    round_ = 0
    while any(round_ < len(cls) for cls in classes):
        for cls in classes:
            if round_ < len(cls):
                targets.append(cls[round_])
        round_ += 1
    return targets


@dataclass(frozen=True)
class MaintenanceOutcome:
    """Recovery measurement of one maintenance window (SLO report row)."""

    event: MaintenanceEvent
    #: Mean hit ratio of the traffic windows preceding the drain (the
    #: level recovery is measured against); None without prior traffic.
    baseline_hit_ratio: float | None
    #: Index of the first post-recovery window back at the baseline.
    recovered_window: int | None
    #: recovered window's end minus the device's recovery instant;
    #: None when the run ended before recovery was observed.
    time_to_recover_ns: int | None

    def as_dict(self) -> dict:
        return {**self.event.as_dict(),
                "baseline_hit_ratio": self.baseline_hit_ratio,
                "recovered_window": self.recovered_window,
                "time_to_recover_ns": self.time_to_recover_ns}


#: A post-recovery window counts as recovered at this fraction of the
#: pre-drain hit ratio (full equality would be noise-sensitive).
_RECOVERY_FRACTION = 0.9

#: Baseline = mean over this many pre-drain traffic windows.
_BASELINE_WINDOWS = 3


def measure_recovery(windows, events: list[MaintenanceEvent],
                     ) -> list[MaintenanceOutcome]:
    """Per-event time-to-recover from the windowed hit-ratio timeline.

    For each maintenance event: the baseline is the mean hit ratio of
    the last few traffic-carrying windows that closed before the drain;
    recovery is the first window starting at/after the device's
    recovery instant whose hit ratio is back within
    :data:`_RECOVERY_FRACTION` of that baseline.
    """
    outcomes = []
    for event in events:
        before = [w.hit_ratio for w in windows
                  if w.end_ns <= event.drain_ns and w.packets_sent > 0]
        baseline = None
        if before:
            tail = before[-_BASELINE_WINDOWS:]
            baseline = sum(tail) / len(tail)
        recovered_window = None
        ttr = None
        for window in windows:
            if window.start_ns < event.recover_ns or window.packets_sent == 0:
                continue
            if baseline is None \
                    or window.hit_ratio >= _RECOVERY_FRACTION * baseline:
                recovered_window = window.index
                ttr = window.end_ns - event.recover_ns
                break
        outcomes.append(MaintenanceOutcome(
            event=event, baseline_hit_ratio=baseline,
            recovered_window=recovered_window, time_to_recover_ns=ttr))
    return outcomes


def build_maintenance(spec: FatTreeSpec, config: ServiceConfig,
                      ) -> tuple[FaultSchedule, list[MaintenanceEvent]]:
    """Generate the rotation schedule covering the run's duration.

    One device per ``maintenance_period_ns``, starting at
    ``maintenance_start_ns``; the rotation wraps if the run outlives
    one pass over the fleet.  The last window is placed so its recovery
    lands at least one metrics window before ``duration_ns`` — recovery
    behaviour must be observable inside the measured horizon.
    """
    schedule = FaultSchedule()
    events: list[MaintenanceEvent] = []
    targets = rotation_targets(spec)
    margin_ns = config.maintenance_outage_ns + config.window_ns
    drain_at = config.maintenance_start_ns
    index = 0
    while drain_at + config.maintenance_drain_ns + config.maintenance_outage_ns \
            + margin_ns <= config.duration_ns:
        target = targets[index % len(targets)]
        fail_at = drain_at + config.maintenance_drain_ns
        recover_at = fail_at + config.maintenance_outage_ns
        if target[0] == "gateway":
            schedule.gateway_maintenance(target[1], drain_at, fail_at,
                                         recover_at)
            label = f"gateway {target[1]}"
        else:
            schedule.switch_outage(target[0], tuple(target[1:]), fail_at,
                                   config.maintenance_outage_ns)
            label = f"{target[0]}({', '.join(str(v) for v in target[1:])})"
        events.append(MaintenanceEvent(target=label, drain_ns=drain_at,
                                       fail_ns=fail_at, recover_ns=recover_at))
        drain_at += config.maintenance_period_ns
        index += 1
    return schedule, events
