"""Configuration of a long-horizon service run.

One frozen :class:`ServiceConfig` fully determines a service run: the
scheme, the seed, the churn rates, the maintenance rotation and the
transport give-up tuning all live here, so a run serializes to a small
JSON object and replays exactly (the reproducer artifacts written by
:mod:`repro.service.driver` embed one).

Rates are expressed as *mean periods* in simulated nanoseconds rather
than Hz — every other knob in the repo is a nanosecond quantity, and a
period composes directly with ``rng.exponential(period)`` for Poisson
processes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.sim.engine import SECOND, msec


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one always-on service run depends on."""

    scheme: str = "SwitchV2P"
    seed: int = 0
    #: Simulated time during which arrivals/churn/maintenance happen;
    #: the run then drains in-flight flows before the final verdict.
    duration_ns: int = 10 * SECOND
    #: Metrics window length (streaming SLO granularity).
    window_ns: int = SECOND
    cache_ratio: float = 16.0
    #: Simulation fidelity (see :class:`repro.vnet.network.NetworkConfig`):
    #: "packet" is exact, "hybrid" lets steady-state flows advance
    #: analytically; the oracle suite runs under either.
    fidelity: str = "packet"
    #: Cache-budget sizing: the VIP address space the scheme's budget
    #: is expressed against (≈ the expected peak of concurrent VMs;
    #: VIPs themselves are never reused, so this is *not* a VIP cap).
    address_space: int = 64

    # --- tenant churn (Poisson arrivals, exponential lifetimes) ---
    initial_tenants: int = 5
    #: Arrivals are suppressed while this many tenants are active.
    max_tenants: int = 8
    min_vms_per_tenant: int = 2
    max_vms_per_tenant: int = 4
    tenant_arrival_period_ns: int = 4 * SECOND
    tenant_lifetime_ns: int = 20 * SECOND

    # --- workload (per-tenant Poisson flow arrivals) ---
    flow_period_ns: int = msec(50)
    min_flow_bytes: int = 800
    max_flow_bytes: int = 6_000

    # --- background migration churn (global Poisson process) ---
    migration_period_ns: int = msec(500)

    # --- rolling planned maintenance ---
    maintenance_start_ns: int = 2 * SECOND
    maintenance_period_ns: int = 5 * SECOND
    #: Lead time between the drain announcement and the outage.
    maintenance_drain_ns: int = msec(100)
    maintenance_outage_ns: int = msec(200)

    # --- gateway failure-detector tuning (see NetworkConfig) ---
    probe_interval_ns: int = msec(1)
    reinstate_timeout_ns: int = msec(2)

    # --- self-healing mapping plane (defaults off: fail-stop-only runs
    # are byte-identical to builds that predate gray failures) ---
    #: Period of the anti-entropy audit reconciling switch caches
    #: against the gateway mapping database; 0 disables the audit.
    anti_entropy_period_ns: int = 0
    #: Bounded-staleness promise the run is checked against (the
    #: oracle suite's bounded-staleness oracle); 0 disables the check.
    #: When nonzero, must be >= the audit period (one full sweep must
    #: fit inside the bound, or the promise is unkeepable).
    staleness_bound_ns: int = 0

    # --- transport give-up (bounds the drain horizon) ---
    max_retransmits: int = 8
    max_rto_ns: int = msec(4)

    #: FCT sketch accuracy (relative error of reported percentiles).
    relative_accuracy: float = 0.01

    #: Forwarding-loop oracle bound.  Service-mode churn produces legal
    #: recirculation deeper than short experiments ever see: a VM that
    #: resided somewhere for seconds saturates fabric caches with its
    #: old mapping, and after two quick migrations a chasing packet
    #: ping-pongs between the two stale locations — each bounce
    #: invalidates the entry that caused it (§3.3), so the chase is
    #: bounded by the number of stale entries times the path length,
    #: not by the chaos default of 64 hops.
    hop_bound: int = 256

    def __post_init__(self) -> None:
        if self.duration_ns <= 0:
            raise ValueError(f"duration must be positive, got {self.duration_ns}")
        if self.window_ns <= 0:
            raise ValueError(f"window must be positive, got {self.window_ns}")
        if self.min_vms_per_tenant < 2:
            raise ValueError("tenants need >= 2 VMs (flows are intra-tenant)")
        if self.max_vms_per_tenant < self.min_vms_per_tenant:
            raise ValueError("max_vms_per_tenant < min_vms_per_tenant")
        if self.initial_tenants < 1 or self.max_tenants < self.initial_tenants:
            raise ValueError("invalid tenant-count bounds")
        if self.hop_bound < 1:
            raise ValueError(f"hop_bound must be positive, got {self.hop_bound}")
        if self.fidelity not in ("packet", "hybrid"):
            raise ValueError(
                f"fidelity must be 'packet' or 'hybrid', got {self.fidelity!r}")
        if self.anti_entropy_period_ns < 0 or self.staleness_bound_ns < 0:
            raise ValueError("anti-entropy period and staleness bound "
                             "must be >= 0")
        if (self.staleness_bound_ns > 0 and self.anti_entropy_period_ns > 0
                and self.staleness_bound_ns < self.anti_entropy_period_ns):
            raise ValueError(
                f"staleness bound {self.staleness_bound_ns} ns is tighter "
                f"than the audit period {self.anti_entropy_period_ns} ns — "
                "one full sweep must fit inside the bound")

    def drain_grace_ns(self) -> int:
        """Quiet time after ``duration_ns`` for in-flight flows to end.

        A flow whose destination stays unreachable climbs the full
        RTO ladder before giving up; the grace covers that ladder plus
        slack for detours, so the liveness oracle's horizon is sound.
        """
        return (self.max_retransmits + 2) * self.max_rto_ns + msec(10)

    # ------------------------------------------------------------------
    # serialization (reproducer artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> ServiceConfig:
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError("unknown ServiceConfig field(s): "
                             + ", ".join(sorted(unknown)))
        return cls(**data)
