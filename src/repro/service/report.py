"""SLO reports for service runs: build, render, save, reload.

A report is a plain JSON document (format ``repro-serve-report``) so it
can be archived next to benchmark results and re-rendered later with
``python -m repro serve-report`` without re-simulating.  The rendered
form is the operator view: the per-window timeline, the worst windows,
per-maintenance-event time-to-recover and the invariant verdict.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.metrics.reporting import failure_breakdown_rows, render_table
from repro.service.driver import ServiceResult

REPORT_FORMAT = "repro-serve-report"
REPORT_VERSION = 1


def _json_float(value):
    if value is None:
        return None
    return value if value == value and abs(value) != float("inf") else None


def build_report(result: ServiceResult) -> dict:
    """The JSON-able report document of one service run."""
    windows = [window.as_dict() for window in result.windows]
    traffic = [w for w in result.windows if w.packets_sent > 0]
    worst_p99 = max((w.fct_p99_ns for w in traffic
                     if w.fct_p99_ns == w.fct_p99_ns
                     and w.fct_p99_ns != float("inf")), default=None)
    worst_hit = min((w.hit_ratio for w in traffic), default=None)
    completed = result.flows_completed
    availability = (completed / result.flows_started
                    if result.flows_started else 0.0)
    return {
        "format": REPORT_FORMAT,
        "version": REPORT_VERSION,
        "config": result.config.to_dict(),
        "horizon_ns": result.horizon_ns,
        "windows": windows,
        "maintenance": [outcome.as_dict() for outcome in result.maintenance],
        "tenants": {
            "admitted": result.tenants_admitted,
            "departed": result.tenants_departed,
            "retired": result.tenants_retired,
        },
        "totals": {
            "flows_started": result.flows_started,
            "flows_completed": result.flows_completed,
            "flows_failed": result.flows_failed,
            "failure_reasons": dict(result.failure_reasons),
            "migrations": result.migrations,
            "gateway_failovers": result.gateway_failovers,
            "gateway_reinstatements": result.gateway_reinstatements,
            "audit_sweeps": result.audit_sweeps,
            "audit_repairs": result.audit_repairs,
            "peak_retained_records": result.peak_retained_records,
        },
        "slo": {
            "availability": availability,
            "fct_p50_ns": _json_float(result.fct_p50_ns),
            "fct_p99_ns": _json_float(result.fct_p99_ns),
            "worst_window_p99_ns": _json_float(worst_p99),
            "worst_window_hit_ratio": worst_hit,
            "violation_count": len(result.violations),
        },
        "violations": [
            {"oracle": v.oracle, "time_ns": v.time_ns, "detail": v.detail}
            for v in result.violations
        ],
        "reproducer_path": result.reproducer_path,
    }


def write_report(path, report: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path) -> dict:
    """Read a saved report, validating format and version loudly."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != REPORT_FORMAT:
        raise ValueError(f"{path} is not a serve report "
                         f"(format {data.get('format')!r})")
    if data.get("version") != REPORT_VERSION:
        raise ValueError(f"{path} has report version {data.get('version')}, "
                         f"this build reads version {REPORT_VERSION}")
    return data


def _us(value) -> float:
    if value is None:
        return float("nan")
    return value / 1_000


def _ms(value) -> float:
    if value is None:
        return float("nan")
    return value / 1_000_000


def render_report(report: dict) -> str:
    """The operator view of a report document."""
    parts = []
    window_rows = []
    for window in report["windows"]:
        window_rows.append([
            window["index"],
            _ms(window["start_ns"]),
            window["flows_started"],
            window["flows_completed"],
            window["flows_failed"],
            _us(window["fct_p50_ns"]),
            _us(window["fct_p99_ns"]),
            window["hit_ratio"],
            window["gateway_arrivals"],
            window["misdeliveries"],
            window["retained_records"],
        ])
    parts.append(render_table(
        ["window", "start (ms)", "started", "done", "failed",
         "p50 (us)", "p99 (us)", "hit ratio", "gw load", "misdeliv",
         "retained"],
        window_rows, title="Per-window SLO timeline"))

    maintenance_rows = []
    for outcome in report["maintenance"]:
        ttr = outcome["time_to_recover_ns"]
        maintenance_rows.append([
            outcome["target"],
            _ms(outcome["drain_ns"]),
            _ms(outcome["fail_ns"]),
            _ms(outcome["recover_ns"]),
            outcome["baseline_hit_ratio"]
            if outcome["baseline_hit_ratio"] is not None else "n/a",
            _ms(ttr) if ttr is not None else "not observed",
        ])
    if maintenance_rows:
        parts.append(render_table(
            ["maintenance target", "drain (ms)", "fail (ms)", "recover (ms)",
             "baseline hit", "ttr (ms)"],
            maintenance_rows, title="Rolling maintenance: time-to-recover"))

    slo = report["slo"]
    totals = report["totals"]
    tenants = report["tenants"]
    summary_rows = [
        ["simulated horizon (ms)", _ms(report["horizon_ns"])],
        ["windows", len(report["windows"])],
        ["tenants admitted/departed/retired",
         f"{tenants['admitted']}/{tenants['departed']}/{tenants['retired']}"],
        ["migrations", totals["migrations"]],
        ["flows started", totals["flows_started"]],
        ["flows completed", totals["flows_completed"]],
        ["availability", slo["availability"]],
        ["fct p50 (us)", _us(slo["fct_p50_ns"])],
        ["fct p99 (us)", _us(slo["fct_p99_ns"])],
        ["worst-window p99 (us)", _us(slo["worst_window_p99_ns"])],
        ["worst-window hit ratio",
         slo["worst_window_hit_ratio"]
         if slo["worst_window_hit_ratio"] is not None else "n/a"],
        ["gateway failovers/reinstatements",
         f"{totals['gateway_failovers']}/{totals['gateway_reinstatements']}"],
        # .get(): reports saved before the anti-entropy audit existed
        # lack these totals and must still render.
        ["anti-entropy sweeps/repairs",
         f"{totals.get('audit_sweeps', 0)}/{totals.get('audit_repairs', 0)}"],
        ["peak retained flow records", totals["peak_retained_records"]],
        ["invariant violations", slo["violation_count"]],
    ]
    summary_rows.extend(failure_breakdown_rows(
        totals["flows_failed"], totals["failure_reasons"]))
    parts.append(render_table(["metric", "value"], summary_rows,
                              title="Service summary"))

    for violation in report["violations"]:
        parts.append(f"VIOLATION [{violation['oracle']}] "
                     f"t={violation['time_ns']}ns {violation['detail']}")
    if report.get("reproducer_path"):
        parts.append(f"reproducer: {report['reproducer_path']}")
    return "\n\n".join(parts)
