"""The always-on service driver: churn + maintenance + streaming SLOs.

Every other experiment in this repo is a short seeded episode; the
service driver runs the same simulated datacenter as *infrastructure*:
tenants arrive as a Poisson process, live for an exponential lifetime
and depart (their VMs retired, their VIPs never reused), VMs migrate in
the background, and the fabric rotates through planned maintenance
windows (:mod:`repro.service.maintenance`) — all while a
:class:`~repro.metrics.streaming.WindowedCollector` emits per-window
SLO metrics in O(window) memory and an always-on
:class:`~repro.faults.oracles.OracleSuite` checks the protocol
invariants continuously.

An invariant violation fails fast: the engine stops mid-run and a JSON
reproducer artifact is written in the same spirit as the chaos fuzzer's
(``python -m repro serve --replay`` re-runs it exactly — the whole run
derives from the :class:`~repro.service.config.ServiceConfig`, so the
config *is* the reproducer).

Everything random draws from the network's named
:class:`~repro.sim.randomness.RandomStreams`; a config replays
bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.runner import make_scheme
from repro.faults.oracles import OracleSuite, OracleViolation
from repro.faults.schedule import FaultSchedule
from repro.metrics.streaming import WindowedCollector, WindowStats
from repro.net.addresses import pip_pod, pip_rack
from repro.service.config import ServiceConfig
from repro.service.maintenance import (
    MaintenanceEvent,
    build_maintenance,
    measure_recovery,
)
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig
from repro.vnet.network import NetworkConfig, VirtualNetwork

_ARTIFACT_FORMAT = "repro-serve-reproducer"
_ARTIFACT_VERSION = 1

#: Drain extensions granted before declaring the run undrainable; each
#: extension is one full give-up ladder, so a healthy run never needs
#: more than the first.
_MAX_DRAIN_ROUNDS = 6


class _Tenant:
    """One tenant's lifecycle state (driver-internal)."""

    __slots__ = ("tid", "vips", "records", "arrived_ns", "departed_ns",
                 "departing", "retired")

    def __init__(self, tid: int, vips: list[int], arrived_ns: int) -> None:
        self.tid = tid
        self.vips = vips
        #: Records of still-settling flows; drained entries are dropped
        #: at each window close so the list stays O(in-flight).
        self.records = []
        self.arrived_ns = arrived_ns
        self.departed_ns = None
        self.departing = False
        self.retired = False


@dataclass
class ServiceResult:
    """Everything one service run produced."""

    config: ServiceConfig
    windows: list[WindowStats]
    maintenance: list
    violations: tuple[OracleViolation, ...]
    horizon_ns: int
    tenants_admitted: int
    tenants_departed: int
    tenants_retired: int
    migrations: int
    flows_started: int
    flows_completed: int
    flows_failed: int
    failure_reasons: dict[str, int] = field(default_factory=dict)
    fct_p50_ns: float = float("inf")
    fct_p99_ns: float = float("inf")
    peak_retained_records: int = 0
    gateway_failovers: int = 0
    gateway_reinstatements: int = 0
    audit_sweeps: int = 0
    audit_repairs: int = 0
    reproducer_path: str | None = None

    @property
    def clean(self) -> bool:
        return not self.violations


class ServiceDriver:
    """Runs one :class:`ServiceConfig` to completion (or first violation).

    Args:
        config: the run description.
        artifact_dir: where to write the reproducer artifact on an
            invariant violation (no artifact is written when None).
        on_window: optional callback receiving each closed
            :class:`WindowStats` (the CLI's live timeline hook).
    """

    def __init__(self, config: ServiceConfig, artifact_dir=None,
                 on_window=None) -> None:
        self.config = config
        self.artifact_dir = artifact_dir
        self._user_on_window = on_window
        self.network: VirtualNetwork | None = None
        self.collector: WindowedCollector | None = None
        self.player: TrafficPlayer | None = None
        self.suite: OracleSuite | None = None
        self.schedule: FaultSchedule | None = None
        self.maintenance: list[MaintenanceEvent] = []
        self._tenants: list[_Tenant] = []
        self._tenant_hosts = []
        self._next_vip = 0
        self._next_tenant_id = 0
        self._violation: OracleViolation | None = None
        self._reproducer_path: str | None = None
        self.tenants_admitted = 0
        self.tenants_departed = 0
        self.tenants_retired = 0
        self.migrations = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        from repro.experiments.faults import chaos_spec

        config = self.config
        spec = chaos_spec()
        scheme = make_scheme(config.scheme, config.address_space,
                             config.cache_ratio)
        self.collector = WindowedCollector(
            window_ns=config.window_ns,
            relative_accuracy=config.relative_accuracy,
            on_window=self._on_window)
        self.network = VirtualNetwork(
            NetworkConfig(spec=spec, seed=config.seed,
                          gateway_probe_interval_ns=config.probe_interval_ns,
                          gateway_reinstate_timeout_ns=config.reinstate_timeout_ns,
                          fidelity=config.fidelity),
            scheme, self.collector)
        self.collector.attach(self.network)
        gateway_racks = {(pod, spec.gateway_rack) for pod in spec.gateway_pods}
        self._tenant_hosts = [
            host for host in self.network.hosts
            if (pip_pod(host.pip), pip_rack(host.pip)) not in gateway_racks]
        self._tenant_rng = self.network.streams.stream("service-tenants")
        self._flow_rng = self.network.streams.stream("service-flows")
        self._migrate_rng = self.network.streams.stream("service-migrate")
        for _ in range(config.initial_tenants):
            self._admit_tenant()
        # The suite snapshots the initial placement as published and
        # subscribes to every later update/removal; fail fast from here.
        self.suite = OracleSuite(self.network, hop_bound=config.hop_bound,
                                 on_violation=self._on_violation)
        self.schedule, self.maintenance = build_maintenance(spec, config)
        # apply() enables gateway failover; the detector picks up the
        # probe/reinstatement tuning from the NetworkConfig fields.
        self.schedule.apply(self.network)
        self.suite.watch_schedule(self.schedule)
        if config.anti_entropy_period_ns > 0:
            self.network.enable_anti_entropy(
                config.anti_entropy_period_ns,
                staleness_bound_ns=config.staleness_bound_ns)
        if config.staleness_bound_ns > 0:
            self.suite.configure_staleness(
                config.staleness_bound_ns,
                audit_period_ns=config.anti_entropy_period_ns,
                check_interval_ns=min(config.window_ns,
                                      max(config.staleness_bound_ns // 4, 1)))
        self.player = TrafficPlayer(self.network, TransportConfig(
            max_retransmits=config.max_retransmits,
            max_rto_ns=config.max_rto_ns))
        engine = self.network.engine
        engine.schedule_after(self._exp(self._tenant_rng,
                                        config.tenant_arrival_period_ns),
                              self._arrival_tick)
        engine.schedule_after(self._exp(self._migrate_rng,
                                        config.migration_period_ns),
                              self._migrate_tick)

    @staticmethod
    def _exp(rng, period_ns: int) -> int:
        """An exponential inter-arrival delay (>= 1 ns)."""
        return max(1, int(rng.exponential(period_ns)))

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def _serving(self) -> list[_Tenant]:
        return [t for t in self._tenants if not t.departing and not t.retired]

    def _admit_tenant(self) -> None:
        config = self.config
        rng = self._tenant_rng
        engine = self.network.engine
        vips = []
        for _ in range(int(rng.integers(config.min_vms_per_tenant,
                                        config.max_vms_per_tenant + 1))):
            host = self._tenant_hosts[int(rng.integers(
                0, len(self._tenant_hosts)))]
            self.network.place_vm(self._next_vip, host)
            vips.append(self._next_vip)
            self._next_vip += 1
        tenant = _Tenant(self._next_tenant_id, vips, engine.now)
        self._next_tenant_id += 1
        self._tenants.append(tenant)
        self.tenants_admitted += 1
        engine.schedule_after(self._exp(self._flow_rng, config.flow_period_ns),
                              self._flow_tick, tenant)
        engine.schedule_after(self._exp(rng, config.tenant_lifetime_ns),
                              self._depart_tenant, tenant)

    def _depart_tenant(self, tenant: _Tenant) -> None:
        if tenant.departing or tenant.retired:
            return
        engine = self.network.engine
        if len(self._serving()) <= 1 and engine.now < self.config.duration_ns:
            # Never empty the service mid-run; try again one lifetime on.
            engine.schedule_after(
                self._exp(self._tenant_rng, self.config.tenant_lifetime_ns),
                self._depart_tenant, tenant)
            return
        tenant.departing = True
        tenant.departed_ns = engine.now
        self.tenants_departed += 1

    def _retire_departed(self) -> None:
        """Retire departing tenants whose flows have fully drained."""
        for tenant in self._tenants:
            if not tenant.departing or tenant.retired:
                continue
            tenant.records = [r for r in tenant.records
                              if not self.player.flow_is_quiescent(r)]
            if tenant.records:
                continue
            for vip in tenant.vips:
                self.player.release_vip(vip)
                self.network.retire_vm(vip)
            tenant.retired = True
            self.tenants_retired += 1
        self._tenants = [t for t in self._tenants if not t.retired]

    def _arrival_tick(self) -> None:
        engine = self.network.engine
        if engine.now >= self.config.duration_ns:
            return
        if len(self._serving()) < self.config.max_tenants:
            self._admit_tenant()
        engine.schedule_after(
            self._exp(self._tenant_rng, self.config.tenant_arrival_period_ns),
            self._arrival_tick)

    # ------------------------------------------------------------------
    # workload + churn processes
    # ------------------------------------------------------------------
    def _flow_tick(self, tenant: _Tenant) -> None:
        if tenant.departing or tenant.retired:
            return
        engine = self.network.engine
        if engine.now >= self.config.duration_ns:
            return
        config = self.config
        rng = self._flow_rng
        vips = tenant.vips
        src = int(rng.integers(0, len(vips)))
        dst = int(rng.integers(0, len(vips) - 1))
        if dst >= src:
            dst += 1
        record = self.player.add_flows([FlowSpec(
            src_vip=vips[src], dst_vip=vips[dst],
            size_bytes=int(rng.integers(config.min_flow_bytes,
                                        config.max_flow_bytes + 1)),
            start_ns=engine.now)])[0]
        tenant.records.append(record)
        engine.schedule_after(self._exp(rng, config.flow_period_ns),
                              self._flow_tick, tenant)

    def _migrate_tick(self) -> None:
        engine = self.network.engine
        if engine.now >= self.config.duration_ns:
            return
        rng = self._migrate_rng
        serving = self._serving()
        if serving:
            tenant = serving[int(rng.integers(0, len(serving)))]
            vip = tenant.vips[int(rng.integers(0, len(tenant.vips)))]
            host = self._tenant_hosts[int(rng.integers(
                0, len(self._tenant_hosts)))]
            if self.network.database.get(vip) is not None:
                self.network.migrate(vip, host)
                self.migrations += 1
        engine.schedule_after(
            self._exp(rng, self.config.migration_period_ns),
            self._migrate_tick)

    # ------------------------------------------------------------------
    # always-on monitoring hooks
    # ------------------------------------------------------------------
    def _on_window(self, stats: WindowStats) -> None:
        # The collector already retired its terminal records; drop the
        # matching transport state and settle tenant departures, then
        # run the mid-run-safe oracles so a violation surfaces within
        # one window of its cause.
        self.player.prune_terminal()
        self._retire_departed()
        self.suite.periodic_check()
        if self._user_on_window is not None:
            self._user_on_window(stats)

    def _on_violation(self, violation: OracleViolation) -> None:
        if self._violation is not None:
            return
        self._violation = violation
        if self.artifact_dir is not None:
            self._reproducer_path = str(write_reproducer(
                Path(self.artifact_dir)
                / f"serve-repro-{self.config.scheme}-{violation.oracle}.json",
                self.config, violation, self.schedule))
        self.network.engine.stop()

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> ServiceResult:
        self._build()
        engine = self.network.engine
        engine.run(until=self.config.duration_ns)
        horizon = engine.now
        if self._violation is None:
            horizon = self._drain()
        self.collector.detach()
        self.collector.flush()
        self.network.finalize()
        if self._violation is None:
            # Fail-fast runs skip the horizon oracles: the engine was
            # stopped mid-flight, so liveness/conservation would report
            # the interruption itself rather than a protocol bug.
            self.suite.finish(horizon)
        return self._result(horizon)

    def _drain(self) -> int:
        """Let in-flight flows reach terminal states after arrivals stop."""
        engine = self.network.engine
        horizon = self.config.duration_ns
        grace = self.config.drain_grace_ns()
        for _ in range(_MAX_DRAIN_ROUNDS):
            if self._violation is not None or self._quiescent():
                break
            horizon += grace
            engine.run(until=horizon)
        return horizon

    def _quiescent(self) -> bool:
        if self.collector.unterminated_flows():
            return False
        return all(self.player.flow_is_quiescent(record)
                   for record in self.player.flows)

    def _result(self, horizon_ns: int) -> ServiceResult:
        collector = self.collector
        live_completed = sum(1 for r in collector.flows.values() if r.completed)
        live_failed = sum(1 for r in collector.flows.values() if r.failed)
        reasons = dict(collector.failure_reason_totals)
        detector = self.network.failure_detector
        return ServiceResult(
            config=self.config,
            windows=list(collector.windows),
            maintenance=measure_recovery(collector.windows, self.maintenance),
            violations=tuple(self.suite.violations),
            horizon_ns=horizon_ns,
            tenants_admitted=self.tenants_admitted,
            tenants_departed=self.tenants_departed,
            tenants_retired=self.tenants_retired,
            migrations=self.migrations,
            flows_started=collector.flows_started_total,
            flows_completed=collector.completed_total + live_completed,
            flows_failed=collector.failed_total + live_failed,
            failure_reasons=reasons,
            fct_p50_ns=collector.fct_sketch.quantile(0.50),
            fct_p99_ns=collector.fct_sketch.quantile(0.99),
            peak_retained_records=collector.peak_retained_records,
            gateway_failovers=self.network.gateway_failovers,
            gateway_reinstatements=(detector.reinstatements
                                    if detector is not None else 0),
            audit_sweeps=(self.network.anti_entropy.sweeps
                          if self.network.anti_entropy is not None else 0),
            audit_repairs=(self.network.anti_entropy.repairs
                           if self.network.anti_entropy is not None else 0),
            reproducer_path=self._reproducer_path,
        )


def run_service(config: ServiceConfig | None = None, artifact_dir=None,
                on_window=None) -> ServiceResult:
    """One-call service run (see :class:`ServiceDriver`)."""
    if config is None:
        config = ServiceConfig()
    return ServiceDriver(config, artifact_dir, on_window).run()


# ----------------------------------------------------------------------
# reproducer artifacts (chaos replay format, service flavour)
# ----------------------------------------------------------------------
def write_reproducer(path, config: ServiceConfig, violation: OracleViolation,
                     schedule: FaultSchedule | None) -> Path:
    """Write the artifact ``python -m repro serve --replay`` reads.

    The config alone replays the run (everything derives from it); the
    maintenance schedule is embedded in the chaos serialization format
    so the artifact is hand-inspectable and schema-checked on load.
    """
    path = Path(path)
    payload = {
        "format": _ARTIFACT_FORMAT,
        "version": _ARTIFACT_VERSION,
        "oracle": violation.oracle,
        "detail": violation.detail,
        "time_ns": violation.time_ns,
        "config": config.to_dict(),
        "schedule": schedule.to_dict() if schedule is not None else None,
        "command": f"python -m repro serve --replay {path}",
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def replay_reproducer(path) -> ServiceResult:
    """Re-run a saved service reproducer exactly as recorded."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != _ARTIFACT_FORMAT:
        raise ValueError(f"{path} is not a service reproducer artifact")
    if data.get("version") != _ARTIFACT_VERSION:
        raise ValueError(f"{path} has artifact version {data.get('version')}, "
                         f"this build reads version {_ARTIFACT_VERSION}")
    if data.get("schedule") is not None:
        # Loud schema validation of the embedded schedule; the replay
        # itself regenerates it deterministically from the config.
        FaultSchedule.from_dict(data["schedule"])
    config = ServiceConfig.from_dict(data["config"])
    return run_service(config)
