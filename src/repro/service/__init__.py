"""Always-on service mode: long-horizon steady-state operation.

See :mod:`repro.service.driver` for the architecture overview; run via
``python -m repro serve``.
"""

from repro.service.config import ServiceConfig
from repro.service.driver import (
    ServiceDriver,
    ServiceResult,
    replay_reproducer,
    run_service,
    write_reproducer,
)
from repro.service.maintenance import (
    MaintenanceEvent,
    MaintenanceOutcome,
    build_maintenance,
    measure_recovery,
    rotation_targets,
)
from repro.service.report import (
    build_report,
    load_report,
    render_report,
    write_report,
)

__all__ = [
    "ServiceConfig",
    "ServiceDriver",
    "ServiceResult",
    "run_service",
    "replay_reproducer",
    "write_reproducer",
    "MaintenanceEvent",
    "MaintenanceOutcome",
    "build_maintenance",
    "measure_recovery",
    "rotation_targets",
    "build_report",
    "load_report",
    "render_report",
    "write_report",
]
