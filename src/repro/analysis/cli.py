"""The ``python -m repro lint`` subcommand.

Kept in the analysis package so :mod:`repro.cli` only pays the import
when the subcommand actually runs.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.engine import lint_paths
from repro.analysis.registry import selected_rules
from repro.analysis.reporters import render_json, render_rule_list, render_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint (default: the "
                             "[tool.repro-lint] paths: src, benchmarks)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--select", nargs="+", default=None, metavar="RULE",
                        help="run only these rule ids")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RULE", dest="rule",
                        help="run only this rule id (repeatable; combines "
                             "with --select)")
    parser.add_argument("--ignore", nargs="+", default=None, metavar="RULE",
                        help="skip these rule ids")
    parser.add_argument("--changed", nargs="?", const="HEAD", default=None,
                        metavar="REF",
                        help="report only findings in files changed vs REF "
                             "(default HEAD) plus untracked files; the "
                             "whole-program pass still sees the full tree")
    parser.add_argument("--no-flow-cache", action="store_true",
                        help="recompute the whole-program pass even when a "
                             "cached result matches every source hash")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also show suppressed findings")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml (default: nearest "
                             "one upward from the working directory)")


def run(args: argparse.Namespace) -> int:
    try:
        return _run(args)
    except BrokenPipeError:
        # The reader (``head``, a pager) closed the pipe mid-report.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again, and exit quietly like any Unix filter.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _changed_paths(ref: str) -> set[str] | None:
    """Display paths (cwd-relative) changed vs ``ref`` or untracked.

    Returns None when git is unavailable or the tree is not a work tree
    — the caller falls back to a full report rather than guessing.
    """
    commands = (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    changed: set[str] = set()
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], capture_output=True,
            text=True, check=True).stdout.strip()
        for command in commands:
            proc = subprocess.run(command, capture_output=True, text=True,
                                  check=True)
            for line in proc.stdout.splitlines():
                if not line.endswith(".py"):
                    continue
                # git paths are repo-root relative; findings use
                # cwd-relative display paths.
                absolute = Path(top) / line
                try:
                    changed.add(str(absolute.relative_to(Path.cwd())))
                except ValueError:
                    changed.add(str(absolute))
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        print(f"repro-lint: --changed needs git ({detail.strip()}); "
              "reporting all findings", file=sys.stderr)
        return None
    return changed


def _run(args: argparse.Namespace) -> int:
    try:
        config = load_config(Path(args.config) if args.config else None)
        select = tuple(args.select or ()) + tuple(args.rule or ())
        if select:
            config = replace(config, select=select)
        if args.ignore:
            config = replace(config, ignore=tuple(args.ignore))
        if args.list_rules:
            print(render_rule_list(selected_rules(config.select,
                                                  config.ignore)))
            return 0
        restrict_to = _changed_paths(args.changed) if args.changed else None
        result = lint_paths(tuple(args.paths) if args.paths else None, config,
                            use_flow_cache=not args.no_flow_cache,
                            restrict_to=restrict_to)
    except ValueError as exc:  # unknown rule id / bad config key
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1
