"""Lint configuration, loaded from ``[tool.repro-lint]`` in pyproject.toml.

Every knob has a default encoding this repository's invariants, so the
engine works with no configuration at all; the pyproject section exists
to adjust scope (paths, rule selection) and to declare the structural
memo-invalidation pairings the R303 rule enforces.

TOML parsing uses :mod:`tomllib` (Python 3.11+) and degrades gracefully
when no parser is available (Python 3.10 without ``tomli``): defaults
apply and a warning is printed, rather than making the lint CLI
unusable.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, replace
from pathlib import Path


@dataclass(frozen=True)
class MemoPairing:
    """One structural mutator-must-invalidate invariant (rule R303).

    Attributes:
        module: fnmatch pattern on the dotted module name.
        cls: class whose methods are inspected ("*" = any class).
        mutators: regexes; a method whose name fully matches any of
            them is a mutator and must reference the invalidation.
        require: identifiers (called names or touched attributes) that
            must *all* appear somewhere in the mutator's body.
    """

    module: str
    cls: str
    mutators: tuple[str, ...]
    require: tuple[str, ...]


@dataclass(frozen=True)
class RuncacheCoverage:
    """One runcache key-coverage contract (rule W403).

    Attributes:
        dataclass_name: qualified name of a dataclass whose fields feed
            experiment runs (``module.Class``).
        key_function: qualified name of the function deriving the
            run-cache key from that dataclass; every field name must be
            read somewhere in its body.
        exempt: field names audited as deliberately unkeyed (each must
            be justified in docs/linting.md); an exemption naming a
            field that *is* consumed is itself reported as stale.
    """

    dataclass_name: str
    key_function: str
    exempt: tuple[str, ...] = ()


@dataclass(frozen=True)
class CallPair:
    """One must-pair call discipline checked along call paths (W404).

    A function that (directly) calls ``open`` must also reach ``close``
    — in its own body or transitively through its callees; failing
    that, the obligation propagates to its callers.  Names are fnmatch
    patterns matched against the resolved dotted call target.
    """

    open: str
    close: str


#: The repository's own key-coverage contracts (see docs/linting.md#w403).
DEFAULT_RUNCACHE_COVERAGE: tuple[RuncacheCoverage, ...] = (
    # Every ExperimentJob field must reach job_key: a job knob missing
    # from the key would serve stale cache hits for changed runs.
    RuncacheCoverage("repro.experiments.parallel.ExperimentJob",
                     "repro.experiments.runcache.job_key"),
    # NetworkConfig fields must be covered by run_key or be audited as
    # unreachable from run_experiment (the only cached entry point).
    RuncacheCoverage(
        "repro.vnet.network.NetworkConfig",
        "repro.experiments.runcache.run_key",
        exempt=("gateway_processing_ns", "gateway_service_ns",
                "host_forward_delay_ns", "gateway_probe_interval_ns",
                "gateway_reinstate_timeout_ns")),
)

#: Dataclasses hashed wholesale by runcache._encode (field iteration):
#: coverage is automatic *provided* every knob is a real dataclass
#: field — W403 checks they stay frozen and fully annotated.
DEFAULT_ENCODED_DATACLASSES: tuple[str, ...] = (
    "repro.net.topology.FatTreeSpec",
    "repro.core.config.SwitchV2PConfig",
    "repro.transport.reliable.TransportConfig",
    "repro.traces.spec.TraceSpec",
)

#: Call disciplines checked along call paths by W404.
DEFAULT_CALL_PAIRS: tuple[CallPair, ...] = (
    # The engine pauses automatic GC for the event loop; every pause
    # must be matched by a resume on all paths out of the caller.
    CallPair("gc.disable", "gc.enable"),
)

#: The repository's own memo invariants (see docs/linting.md#r303).
DEFAULT_MEMO_PAIRINGS: tuple[MemoPairing, ...] = (
    # Switch fail/recover must flush scheme SRAM state and keep the
    # fabric's fault count (which gates ECMP memo trust) in sync.
    MemoPairing("repro.net.node", "Switch", ("fail", "recover"),
                ("note_fault", "_flush_scheme_state")),
    # Every fault transition must flush the per-switch ECMP memos:
    # memoized next hops are only valid on a fault-free fabric.
    MemoPairing("repro.net.topology", "Fabric", ("note_fault",),
                ("_ecmp_memo",)),
    MemoPairing("repro.net.topology", "Fabric", ("set_link_state",),
                ("note_fault",)),
    # Gateway-pool mutations must clear the per-flow gateway memo.
    MemoPairing("repro.vnet.network", "VirtualNetwork",
                ("mark_gateway_down", "mark_gateway_up",
                 "commission_gateway", "decommission_gateway"),
                ("_gateway_memo",)),
)


@dataclass(frozen=True)
class LintConfig:
    """Engine configuration (defaults encode this repo's conventions)."""

    #: Directories/files linted when the CLI gets no path arguments.
    paths: tuple[str, ...] = ("src", "benchmarks")
    #: Rule ids to run (empty = every registered rule).
    select: tuple[str, ...] = ()
    #: Rule ids to skip.
    ignore: tuple[str, ...] = ()
    #: Packages whose modules carry simulation semantics; rules scoped
    #: to simulation code (D101, T202, R303) only fire inside these.
    sim_packages: tuple[str, ...] = ("repro",)
    #: Modules allowed to read the wall clock (fnmatch patterns).
    wall_clock_allow: tuple[str, ...] = ("repro.perf",)
    #: Modules allowed to keep float time values (reporting/means).
    float_time_allow: tuple[str, ...] = (
        "repro.perf", "repro.metrics.*", "repro.experiments.*")
    #: Method names whose first argument is a simulation time/delay.
    time_apis: tuple[str, ...] = ("schedule", "schedule_after",
                                  "schedule_timer")
    #: Calls treated as producing integer time (not descended into).
    time_converters: tuple[str, ...] = ("int", "round", "usec", "msec",
                                        "len")
    #: numpy.random attributes that are deterministic factories (all
    #: other numpy.random calls hit hidden global state).
    rng_factories: tuple[str, ...] = (
        "default_rng", "Generator", "SeedSequence", "PCG64", "PCG64DXSM",
        "Philox", "MT19937", "RandomState")
    #: Method names that hand out freelist packets.
    acquire_methods: tuple[str, ...] = ("acquire", "new_packet")
    #: Method names that return a packet to the freelist.
    release_methods: tuple[str, ...] = ("release",)
    memo_pairings: tuple[MemoPairing, ...] = DEFAULT_MEMO_PAIRINGS

    # ------------------------------------------------------------------
    # whole-program flow analysis (W401-W404; repro.analysis.flow)
    # ------------------------------------------------------------------
    #: Data-plane entry points (fnmatch on qualified function names);
    #: W402 checks every function reachable from them.
    flow_entry_points: tuple[str, ...] = (
        "repro.net.node.Switch.receive",
        "repro.vnet.hypervisor.Host.receive",
        "repro.vnet.gateway.Gateway.receive",
    )
    #: Attribute names holding cache/mapping/gateway state; mutating
    #: them on a data-plane path requires an escalation notification.
    state_attrs: tuple[str, ...] = ("_keys", "_values", "_abits", "_sets",
                                    "_table", "live_gateways")
    #: Call-name patterns that count as escalation/observer notification.
    notify_calls: tuple[str, ...] = ("escalate_*", "on_mutate",
                                     "note_mutation")
    #: Attributes whose stored callables are notification hooks; calling
    #: a local aliased from one (``cb = self.on_mutate; cb()``) counts.
    notify_attrs: tuple[str, ...] = ("on_mutate", "_listeners",
                                     "_removal_listeners",
                                     "learning_draw_observer")
    #: Qualified-name patterns exempt from W402 (audited in
    #: docs/linting.md#w402; keep this list as short as you can).
    #: The unobserved cache base classes are exempt by design:
    #: ``attach_observer`` swaps live instances to the ``_Observed*``
    #: subclasses (which notify and are NOT exempt) before any fluid
    #: flow is adopted, so the base mutators only ever run in
    #: pure-packet mode where no scheduler consumes notifications.
    escalation_exempt: tuple[str, ...] = (
        "repro.cache.direct_mapped.DirectMappedCache.lookup",
        "repro.cache.direct_mapped.DirectMappedCache.insert",
        "repro.cache.direct_mapped.DirectMappedCache.invalidate",
        "repro.cache.set_associative.SetAssociativeCache.lookup",
        "repro.cache.set_associative.SetAssociativeCache.insert",
        "repro.cache.set_associative.SetAssociativeCache.invalidate",
    )
    #: Container-method names treated as mutating their receiver.
    mutating_methods: tuple[str, ...] = (
        "pop", "popitem", "clear", "update", "setdefault", "append",
        "extend", "remove", "insert", "add", "discard", "move_to_end")
    #: Call patterns granting seed provenance: an RNG constructed from
    #: one of these is properly derived from the experiment seed.
    rng_seed_sources: tuple[str, ...] = ("*derive_seed", "*.stream",
                                         "repro.sim.randomness.*")
    #: Modules allowed to construct RNGs from raw material (the stream
    #: factory itself).
    rng_provenance_allow: tuple[str, ...] = ("repro.sim.randomness",)
    #: W403 key-coverage contracts and wholesale-encoded dataclasses.
    runcache_coverage: tuple[RuncacheCoverage, ...] = \
        DEFAULT_RUNCACHE_COVERAGE
    encoded_dataclasses: tuple[str, ...] = DEFAULT_ENCODED_DATACLASSES
    #: W404 open/close call pairs checked along call paths.
    flow_call_pairs: tuple[CallPair, ...] = DEFAULT_CALL_PAIRS


def _load_toml(path: Path) -> dict | None:
    try:
        import tomllib
    except ImportError:  # Python 3.10: tomllib landed in 3.11.
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            print(f"repro-lint: no TOML parser available; ignoring {path} "
                  "and using built-in defaults", file=sys.stderr)
            return None
    with path.open("rb") as fh:
        return tomllib.load(fh)


def find_pyproject(start: Path | None = None) -> Path | None:
    """Locate pyproject.toml in ``start`` or any parent directory."""
    current = (start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _tuple(raw: object) -> tuple[str, ...]:
    if isinstance(raw, str):
        return (raw,)
    return tuple(str(item) for item in raw)  # type: ignore[union-attr]


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.repro-lint]``.

    Missing file, missing section, or missing TOML parser all yield the
    defaults; unknown keys are rejected loudly so typos in the config
    cannot silently disable a rule.
    """
    config = LintConfig()
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or not pyproject.is_file():
        return config
    data = _load_toml(pyproject)
    if data is None:
        return config
    section = data.get("tool", {}).get("repro-lint")
    if section is None:
        return config

    simple_keys = {
        "paths": "paths",
        "select": "select",
        "ignore": "ignore",
        "sim-packages": "sim_packages",
        "wall-clock-allow": "wall_clock_allow",
        "float-time-allow": "float_time_allow",
        "time-apis": "time_apis",
        "time-converters": "time_converters",
        "rng-factories": "rng_factories",
        "acquire-methods": "acquire_methods",
        "release-methods": "release_methods",
        "flow-entry-points": "flow_entry_points",
        "state-attrs": "state_attrs",
        "notify-calls": "notify_calls",
        "notify-attrs": "notify_attrs",
        "escalation-exempt": "escalation_exempt",
        "mutating-methods": "mutating_methods",
        "rng-seed-sources": "rng_seed_sources",
        "rng-provenance-allow": "rng_provenance_allow",
        "encoded-dataclasses": "encoded_dataclasses",
    }
    overrides: dict[str, object] = {}
    for key, value in section.items():
        if key in simple_keys:
            overrides[simple_keys[key]] = _tuple(value)
        elif key == "memo-pairings":
            overrides["memo_pairings"] = tuple(
                MemoPairing(
                    module=str(entry["module"]),
                    cls=str(entry.get("class", "*")),
                    mutators=_tuple(entry["mutators"]),
                    require=_tuple(entry["require"]),
                )
                for entry in value)
        elif key == "runcache-coverage":
            overrides["runcache_coverage"] = tuple(
                RuncacheCoverage(
                    dataclass_name=str(entry["dataclass"]),
                    key_function=str(entry["key-function"]),
                    exempt=_tuple(entry.get("exempt", ())),
                )
                for entry in value)
        elif key == "flow-call-pairs":
            overrides["flow_call_pairs"] = tuple(
                CallPair(open=str(entry["open"]), close=str(entry["close"]))
                for entry in value)
        else:
            raise ValueError(
                f"unknown [tool.repro-lint] key {key!r} in {pyproject}")
    return replace(config, **overrides)  # type: ignore[arg-type]
