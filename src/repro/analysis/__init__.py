"""Static analysis for the reproduction: determinism & invariant lint.

The simulator's headline property — bit-identical results for a fixed
seed — is guarded dynamically by ``tests/test_determinism.py``, but a
dynamic guard only catches nondeterminism that the guarded workload
happens to exercise.  This package turns the conventions that keep the
simulator deterministic into *static* checks that run over the whole
tree on every push (``python -m repro lint``):

* **D-series** (determinism): no wall-clock reads outside
  :mod:`repro.perf`, no global-RNG calls (all randomness flows through
  :class:`repro.sim.randomness.RandomStreams`), no iteration over
  unordered sets in decision code, no ``id()``-based ordering.
* **T-series** (integer time): the simulation clock is integer
  nanoseconds; float literals or true division must not flow into
  ``schedule``/``schedule_after``/``schedule_timer``.
* **R-series** (resources): freelist packets must not outlive
  ``release()`` or escape into attributes/closures, and memo tables
  (ECMP next hops, gateway choices) must be invalidated by every
  mutator that can stale them.

See ``docs/linting.md`` for the rule catalogue and the suppression
syntax (``# repro-lint: disable=RULE``).
"""

from repro.analysis.config import LintConfig, load_config
from repro.analysis.engine import LintResult, lint_paths, lint_source
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "load_config",
]
