"""The lint finding record shared by rules, engine, and reporters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        rule_id: the violated rule (e.g. ``D101``).
        path: file the finding is in (as given to the engine).
        line: 1-based source line.
        col: 0-based column offset.
        message: human-readable description with the offending construct.
        suppressed: True when a ``# repro-lint: disable`` comment covers
            the finding; suppressed findings are reported in verbose
            output but do not affect the exit code.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)
