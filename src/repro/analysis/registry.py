"""Rule base class and the global rule registry.

Rules register themselves at import time via the :func:`rule`
decorator; importing :mod:`repro.analysis.rules` populates the
registry.  Each rule is a class with a stable id (``D101`` ...), a
one-line summary used by ``lint --list-rules``, and a ``check`` method
yielding :class:`~repro.analysis.findings.Finding` objects for one
module.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.context import ModuleContext
    from repro.analysis.flow.callgraph import CallGraph
    from repro.analysis.flow.dataflow import FunctionSummary
    from repro.analysis.flow.project import ProjectContext


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id`` and ``summary`` and implement ``check``.
    A rule instance is stateless: the same instance checks every module.
    """

    rule_id: str = ""
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, line: int, col: int,
                message: str) -> Finding:
        return Finding(rule_id=self.rule_id, path=str(module.path),
                       line=line, col=col, message=message)


class ProjectRule(Rule):
    """Base class for whole-program rules (the W4xx series).

    Project rules run once per lint invocation over a
    :class:`~repro.analysis.flow.project.ProjectContext` spanning every
    collected module, with the call graph and per-function dataflow
    summaries already built.  ``check`` (the per-module hook) is a
    no-op; the engine routes project rules through ``check_project``
    and applies suppressions by mapping each finding's path back to its
    module.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: ProjectContext, graph: CallGraph,
                      summaries: dict[str, FunctionSummary],
                      ) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(self, project: ProjectContext, module_name: str,
                        line: int, col: int, message: str) -> Finding:
        module = project.modules[module_name]
        return Finding(rule_id=self.rule_id, path=str(module.path),
                       line=line, col=col, message=message)


_REGISTRY: dict[str, Rule] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package registers every built-in rule.
    from repro.analysis import rules  # noqa: F401  (import-for-effect)


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_loaded()
    return _REGISTRY[rule_id]


def selected_rules(select: tuple[str, ...],
                   ignore: tuple[str, ...]) -> list[Rule]:
    """Apply select/ignore lists (empty select = all rules)."""
    _ensure_loaded()
    rules = all_rules()
    if select:
        unknown = set(select) - set(_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule ids selected: {sorted(unknown)}")
        rules = [r for r in rules if r.rule_id in select]
    if ignore:
        unknown = set(ignore) - set(_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule ids ignored: {sorted(unknown)}")
        rules = [r for r in rules if r.rule_id not in ignore]
    return rules
