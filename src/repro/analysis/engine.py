"""The lint engine: collect files, run rules, apply suppressions.

Two rule kinds share one run: per-module rules (each sees a single
:class:`~repro.analysis.context.ModuleContext`) and project rules (the
W4xx series — they see a :class:`~repro.analysis.flow.project.ProjectContext`
spanning every collected module, plus the call graph and dataflow
summaries).  The project pass is the expensive part, so its findings
are cached under a key over every source hash and the configuration
(:mod:`repro.analysis.flow.cache`); per-module linting is cheap enough
to always run.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.flow import cache as flow_cache
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.dataflow import summarize_project
from repro.analysis.flow.project import ProjectContext
from repro.analysis.registry import ProjectRule, Rule, selected_rules

#: Directories never descended into when collecting files.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)


def collect_files(paths: tuple[str, ...] | list[str],
                  root: Path | None = None) -> list[Path]:
    """Python files under ``paths``, stable-sorted, junk dirs skipped."""
    base = root or Path.cwd()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = base / path
        if path.is_file():
            files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS or any(p.endswith(".egg-info")
                                         for p in candidate.parts):
                continue
            files.append(candidate)
    return files


def _split_rules(rules: list[Rule]) -> tuple[list[Rule], list[ProjectRule]]:
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return module_rules, project_rules


def _mark_suppressed(finding: Finding,
                     module: ModuleContext | None) -> Finding:
    if module is not None and module.suppressions.is_suppressed(
            finding.rule_id, finding.line):
        return replace(finding, suppressed=True)
    return finding


def _module_findings(module: ModuleContext,
                     rules: Iterable[Rule]) -> list[Finding]:
    return [_mark_suppressed(finding, module)
            for rule in rules for finding in rule.check(module)]


def run_project_rules(modules: list[ModuleContext],
                      rules: Iterable[ProjectRule],
                      config: LintConfig) -> list[Finding]:
    """One whole-program pass: symbol table, call graph, summaries."""
    project = ProjectContext.build(modules, config)
    graph = CallGraph(project)
    summaries = summarize_project(project, graph)
    return [_mark_suppressed(finding,
                             project.by_path.get(finding.path))
            for rule in rules
            for finding in rule.check_project(project, graph, summaries)]


def lint_source(source: str, path: Path, config: LintConfig,
                module_name: str | None = None,
                rules: list[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory module; findings carry their suppression flag.

    ``module_name`` overrides the path-derived dotted name — tests use
    this to exercise package-scoped rules (D101, T202, R303) against
    fixture files living outside the simulated package.  Project rules
    run over a single-module project, which is how the W-rule fixtures
    stay self-contained.
    """
    if rules is None:
        rules = selected_rules(config.select, config.ignore)
    try:
        module = ModuleContext.from_source(source, path, config,
                                           module_name=module_name)
    except SyntaxError as exc:
        return [Finding(rule_id="E999", path=str(path),
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}")]
    module_rules, project_rules = _split_rules(rules)
    findings = _module_findings(module, module_rules)
    if project_rules:
        findings.extend(run_project_rules([module], project_rules, config))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(paths: tuple[str, ...] | list[str] | None,
               config: LintConfig,
               root: Path | None = None, *,
               use_flow_cache: bool = True,
               restrict_to: Iterable[str] | None = None) -> LintResult:
    """Lint files/directories (default: the configured paths).

    ``restrict_to`` keeps only findings in the given display paths (the
    CLI's ``--changed`` mode); the whole-program pass still sees every
    collected module — cross-module contracts cannot be checked on a
    partial project — but per-module attribution is filtered.
    """
    if not paths:
        paths = config.paths
    rules = selected_rules(config.select, config.ignore)
    module_rules, project_rules = _split_rules(rules)
    result = LintResult()
    base = root or Path.cwd()
    modules: list[ModuleContext] = []
    for path in collect_files(paths, root=root):
        source = path.read_text(encoding="utf-8")
        display = path.relative_to(base) if path.is_relative_to(base) else path
        try:
            module = ModuleContext.from_source(source, Path(display), config)
        except SyntaxError as exc:
            result.extend([Finding(
                rule_id="E999", path=str(display), line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}")])
            result.files_checked += 1
            continue
        modules.append(module)
        result.extend(_module_findings(module, module_rules))
        result.files_checked += 1
    if project_rules:
        result.extend(_project_findings(modules, project_rules, config,
                                        base, use_flow_cache))
    if restrict_to is not None:
        allowed = {str(p) for p in restrict_to}
        result.findings = [f for f in result.findings if f.path in allowed]
    result.findings.sort(key=Finding.sort_key)
    return result


def _project_findings(modules: list[ModuleContext],
                      project_rules: list[ProjectRule],
                      config: LintConfig, base: Path,
                      use_flow_cache: bool) -> list[Finding]:
    if not (use_flow_cache and flow_cache.cache_enabled()):
        return run_project_rules(modules, project_rules, config)
    key = flow_cache.cache_key(
        config, [(str(m.path), m.source) for m in modules],
        [rule.rule_id for rule in project_rules])
    cached = flow_cache.load(key, root=base)
    if cached is not None:
        return cached
    findings = run_project_rules(modules, project_rules, config)
    flow_cache.store(key, findings, root=base)
    return findings
