"""The lint engine: collect files, run rules, apply suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, selected_rules

#: Directories never descended into when collecting files.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "build", "dist"})


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def unsuppressed(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed_count(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    @property
    def ok(self) -> bool:
        return not self.unsuppressed

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)


def collect_files(paths: tuple[str, ...] | list[str],
                  root: Path | None = None) -> list[Path]:
    """Python files under ``paths``, stable-sorted, junk dirs skipped."""
    base = root or Path.cwd()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = base / path
        if path.is_file():
            files.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = set(candidate.parts)
            if parts & _SKIP_DIRS or any(p.endswith(".egg-info")
                                         for p in candidate.parts):
                continue
            files.append(candidate)
    return files


def lint_source(source: str, path: Path, config: LintConfig,
                module_name: str | None = None,
                rules: list[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory module; findings carry their suppression flag.

    ``module_name`` overrides the path-derived dotted name — tests use
    this to exercise package-scoped rules (D101, T202, R303) against
    fixture files living outside the simulated package.
    """
    if rules is None:
        rules = selected_rules(config.select, config.ignore)
    try:
        module = ModuleContext.from_source(source, path, config,
                                           module_name=module_name)
    except SyntaxError as exc:
        return [Finding(rule_id="E999", path=str(path),
                        line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                        message=f"syntax error: {exc.msg}")]
    findings = []
    for rule in rules:
        for finding in rule.check(module):
            if module.suppressions.is_suppressed(finding.rule_id,
                                                 finding.line):
                finding = Finding(rule_id=finding.rule_id,
                                  path=finding.path, line=finding.line,
                                  col=finding.col, message=finding.message,
                                  suppressed=True)
            findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def lint_paths(paths: tuple[str, ...] | list[str] | None,
               config: LintConfig,
               root: Path | None = None) -> LintResult:
    """Lint files/directories (default: the configured paths)."""
    if not paths:
        paths = config.paths
    rules = selected_rules(config.select, config.ignore)
    result = LintResult()
    base = root or Path.cwd()
    for path in collect_files(paths, root=root):
        source = path.read_text(encoding="utf-8")
        display = path.relative_to(base) if path.is_relative_to(base) else path
        result.extend(lint_source(source, Path(display), config,
                                  rules=rules))
        result.files_checked += 1
    result.findings.sort(key=Finding.sort_key)
    return result
