"""Per-module analysis context shared by all rules.

One :class:`ModuleContext` is built per linted file: parsed AST, the
dotted module name (derived from the path, ``src`` layout aware), the
suppression index, and an import resolver that maps local names back to
their dotted origins (so ``from time import perf_counter as pc`` and
``import numpy as np`` are both seen through).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.suppressions import SuppressionIndex


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path`` (``src`` layout aware).

    ``src/repro/net/node.py`` -> ``repro.net.node``;
    ``benchmarks/common.py`` -> ``benchmarks.common``;
    a package ``__init__.py`` maps to the package name itself.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    # Everything up to and including the last "src" component is layout.
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "src":
            parts = parts[index + 1:]
            break
    return ".".join(part for part in parts if part not in (".", ""))


class ImportResolver(ast.NodeVisitor):
    """Map local names to the dotted path they were imported from."""

    def __init__(self) -> None:
        #: local alias -> dotted origin ("np" -> "numpy",
        #: "pc" -> "time.perf_counter").
        self.origins: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            # "import a.b" binds "a"; "import a.b as c" binds "c" = a.b.
            self.origins[local] = alias.name if alias.asname else \
                alias.name.split(".", 1)[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never reach stdlib time/random
        for alias in node.names:
            local = alias.asname or alias.name
            self.origins[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain, or None.

        ``np.random.shuffle`` resolves to ``numpy.random.shuffle`` when
        ``np`` was imported as numpy; an unimported base name resolves
        to the chain itself (callers match on prefixes they care about).
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self.origins.get(current.id, current.id)
        parts.append(base)
        return ".".join(reversed(parts))


@dataclass
class ModuleContext:
    """Everything a rule needs to know about one module."""

    path: Path
    module_name: str
    source: str
    tree: ast.Module
    config: LintConfig
    suppressions: SuppressionIndex
    imports: ImportResolver = field(init=False)

    def __post_init__(self) -> None:
        self.imports = ImportResolver()
        self.imports.visit(self.tree)

    @classmethod
    def from_source(cls, source: str, path: Path, config: LintConfig,
                    module_name: str | None = None) -> ModuleContext:
        tree = ast.parse(source, filename=str(path))
        return cls(path=path,
                   module_name=module_name or module_name_for(path),
                   source=source, tree=tree, config=config,
                   suppressions=SuppressionIndex.from_source(source))

    # ------------------------------------------------------------------
    # scope helpers
    # ------------------------------------------------------------------
    def matches(self, patterns: tuple[str, ...]) -> bool:
        """fnmatch the module name against any of ``patterns``."""
        return any(fnmatchcase(self.module_name, pattern)
                   for pattern in patterns)

    def in_sim_package(self) -> bool:
        """Is this module inside a configured simulation package?"""
        return any(self.module_name == package
                   or self.module_name.startswith(package + ".")
                   for package in self.config.sim_packages)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method definition, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node
