"""Per-file and per-line suppression comments.

Three forms are recognised, mirroring the usual linter conventions:

* ``# repro-lint: disable=D101`` — trailing on the offending line;
* ``# repro-lint: disable-next-line=D101`` — on the line above (for
  lines too long to carry a trailing comment);
* ``# repro-lint: disable-file=D103`` — anywhere in the file, silences
  the rule for the whole module.

Several rule ids may be given separated by commas, and ``all`` matches
every rule.  Suppressions are parsed from real COMMENT tokens (via
:mod:`tokenize`), so the marker appearing inside a string literal does
not suppress anything.
"""

from __future__ import annotations

import contextlib
import io
import re
import tokenize

_MARKER = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line|disable-file)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)")


class SuppressionIndex:
    """Parsed suppression comments of one module."""

    __slots__ = ("_by_line", "_file_wide")

    def __init__(self) -> None:
        #: line -> set of rule ids (or {"all"}) disabled on that line.
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()

    @classmethod
    def from_source(cls, source: str) -> SuppressionIndex:
        index = cls()
        # On unterminated constructs tokenize raises mid-stream; fall
        # back to no suppressions (the module would not parse either).
        with contextlib.suppress(tokenize.TokenError):
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _MARKER.search(token.string)
                if match is None:
                    continue
                kind = match.group(1)
                rules = {rule.strip() for rule in match.group(2).split(",")}
                line = token.start[0]
                if kind == "disable-file":
                    index._file_wide |= rules
                elif kind == "disable-next-line":
                    index._by_line.setdefault(line + 1, set()).update(rules)
                else:
                    index._by_line.setdefault(line, set()).update(rules)
        return index

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self._file_wide or "all" in self._file_wide:
            return True
        rules = self._by_line.get(line)
        return rules is not None and (rule_id in rules or "all" in rules)
