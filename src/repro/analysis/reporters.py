"""Text and JSON renderings of a lint run."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.registry import Rule


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Classic ``path:line:col: RULE message`` lines plus a summary."""
    lines = []
    for finding in result.findings:
        if finding.suppressed and not verbose:
            continue
        marker = " (suppressed)" if finding.suppressed else ""
        lines.append(f"{finding.location()}: {finding.rule_id} "
                     f"{finding.message}{marker}")
    active = len(result.unsuppressed)
    summary = (f"checked {result.files_checked} files: "
               f"{active} finding{'s' if active != 1 else ''}")
    if result.suppressed_count:
        summary += f" ({result.suppressed_count} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order for diffing in CI)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.as_dict() for f in result.findings],
        "suppressed": result.suppressed_count,
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list(rules: list[Rule]) -> str:
    """The ``--list-rules`` catalogue."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  {rule.summary}")
    return "\n".join(lines)
