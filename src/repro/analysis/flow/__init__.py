"""Whole-program flow analysis for the lint engine.

The per-module rules in :mod:`repro.analysis.rules` see one file at a
time; the contracts the run cache and the hybrid-fidelity engine rest
on are *cross-module*: a mutation in :mod:`repro.cache` must escalate a
fluid flow installed by :mod:`repro.sim.fluid`, a knob added to
:class:`~repro.experiments.parallel.ExperimentJob` must reach the key
derivation in :mod:`repro.experiments.runcache`.  This package builds
the project-wide picture those rules need:

* :mod:`~repro.analysis.flow.project` — one parsed
  :class:`ProjectContext`: every module, a symbol table of classes and
  functions by qualified name, and dataclass field extraction;
* :mod:`~repro.analysis.flow.callgraph` — a call graph with
  inter-procedural reachability (imports resolved, ``self`` dispatch
  through project base classes, a class-hierarchy-style fallback for
  duck-typed receivers);
* :mod:`~repro.analysis.flow.dataflow` — a light intra-procedural
  dataflow pass producing per-function summaries: attribute-aliased
  calls (``cb = self.on_mutate; cb()``), state-attribute mutations
  (including through helpers that return state, via a summary
  fixpoint), RNG provenance taint, and notification/pairing calls;
* :mod:`~repro.analysis.flow.cache` — a file-hash-keyed result cache
  so the whole-program pass is free in CI when no source changed.

The W401-W404 rules in :mod:`repro.analysis.rules.flow_rules` are
built on these pieces.
"""

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.dataflow import FunctionSummary, summarize_project
from repro.analysis.flow.project import FunctionInfo, ProjectContext

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "FunctionSummary",
    "ProjectContext",
    "summarize_project",
]
