"""Project-wide symbol table for whole-program lint rules.

A :class:`ProjectContext` is built once per lint run from every
collected module.  It indexes top-level functions, classes, and their
direct methods by *qualified name* (``repro.net.node.Switch.receive``),
records class bases (resolved through each module's imports so
cross-module inheritance links up), and extracts dataclass field lists
for the W403 key-coverage rule.

Nested functions are deliberately *not* indexed: for reachability
purposes their calls are attributed to the enclosing function (defining
a closure on a reachable path makes everything it does reachable —
a sound over-approximation for completeness rules).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.analysis.config import LintConfig
from repro.analysis.context import ModuleContext

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class FunctionInfo:
    """One top-level function or direct class method."""

    qualname: str
    module: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # bare class name for methods

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One top-level class: resolved bases and its direct methods."""

    qualname: str
    module: ModuleContext
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    #: bare method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)

    def dataclass_fields(self) -> list[tuple[str, ast.stmt]]:
        """Annotated class-level assignments, in declaration order.

        ``ClassVar`` annotations are excluded — they are not dataclass
        fields and never reach ``dataclasses.fields``.
        """
        fields = []
        for stmt in self.node.body:
            if isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                if _is_classvar(stmt.annotation):
                    continue
                fields.append((stmt.target.id, stmt))
        return fields

    def unannotated_assignments(self) -> list[tuple[str, ast.stmt]]:
        """Plain ``name = value`` class-level assignments.

        In a dataclass these are **not** fields: ``dataclasses.fields``
        never sees them, so wholesale field-iteration encodings (the
        run-cache ``_encode``) silently skip them.
        """
        out = []
        for stmt in self.node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and not target.id.startswith("__"):
                        out.append((target.id, stmt))
        return out

    def dataclass_decorator(self) -> ast.expr | None:
        """The ``@dataclass``/``@dataclass(...)`` decorator, if any."""
        for decorator in self.node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name == "dataclass":
                return decorator
        return None

    def is_frozen_dataclass(self) -> bool:
        decorator = self.dataclass_decorator()
        if not isinstance(decorator, ast.Call):
            return False
        for keyword in decorator.keywords:
            if keyword.arg == "frozen" \
                    and isinstance(keyword.value, ast.Constant):
                return keyword.value.value is True
        return False


def _is_classvar(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    return (isinstance(node, ast.Name) and node.id == "ClassVar") or \
        (isinstance(node, ast.Attribute) and node.attr == "ClassVar")


class ProjectContext:
    """Every module of one lint run, cross-indexed for flow rules."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config
        #: dotted module name -> context
        self.modules: dict[str, ModuleContext] = {}
        #: display-path string -> context (suppression lookup)
        self.by_path: dict[str, ModuleContext] = {}
        #: function qualname -> info
        self.functions: dict[str, FunctionInfo] = {}
        #: class qualname -> info
        self.classes: dict[str, ClassInfo] = {}
        #: bare method name -> list of method qualnames (CHA fallback)
        self.methods_by_name: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: list[ModuleContext],
              config: LintConfig) -> ProjectContext:
        project = cls(config)
        for module in modules:
            project.add_module(module)
        return project

    def add_module(self, module: ModuleContext) -> None:
        self.modules[module.module_name] = module
        self.by_path[str(module.path)] = module
        for stmt in module.tree.body:
            if isinstance(stmt, _FUNCTION_NODES):
                qualname = f"{module.module_name}.{stmt.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname=qualname, module=module, node=stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(module, stmt)

    def _add_class(self, module: ModuleContext, node: ast.ClassDef) -> None:
        qualname = f"{module.module_name}.{node.name}"
        bases = []
        for base in node.bases:
            resolved = module.imports.resolve(base)
            if resolved is not None:
                # A module-local base resolves to its bare name; qualify
                # it so cross-references work uniformly.
                if "." not in resolved:
                    resolved = f"{module.module_name}.{resolved}"
                bases.append(resolved)
        info = ClassInfo(qualname=qualname, module=module, node=node,
                         bases=tuple(bases))
        for stmt in node.body:
            if isinstance(stmt, _FUNCTION_NODES):
                method_qualname = f"{qualname}.{stmt.name}"
                self.functions[method_qualname] = FunctionInfo(
                    qualname=method_qualname, module=module, node=stmt,
                    cls=node.name)
                info.methods[stmt.name] = method_qualname
                self.methods_by_name.setdefault(stmt.name, []) \
                    .append(method_qualname)
        self.classes[qualname] = info

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def resolve_method(self, class_qualname: str,
                       method: str) -> str | None:
        """Find ``method`` on the class or its project-visible bases."""
        seen: set[str] = set()
        stack = [class_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def class_of(self, func: FunctionInfo) -> ClassInfo | None:
        if func.cls is None:
            return None
        return self.classes.get(f"{func.module.module_name}.{func.cls}")

    def functions_matching(self, patterns: tuple[str, ...]) -> list[str]:
        """Qualnames matching any fnmatch pattern, in sorted order."""
        return sorted(qualname for qualname in self.functions
                      if any(fnmatchcase(qualname, pattern)
                             for pattern in patterns))
