"""File-hash-keyed result cache for the whole-program pass.

The project pass re-parses every module and runs a summary fixpoint; on
an unchanged tree that work is pure waste, so its findings are cached
under a key derived from (engine version, configuration, the sorted
``(display path, source sha256)`` pairs of every collected module, and
the selected project-rule ids).  Any source edit, config change, or
rule-set change produces a different key — stale hits are impossible by
construction, so entries never need invalidating, only garbage
collection (``prune`` keeps the newest few).

Location: ``$REPRO_LINT_CACHE_DIR`` when set, else
``.lint-cache/flow`` next to the pyproject root the engine was pointed
at.  ``REPRO_LINT_CACHE=0`` (or the CLI's ``--no-flow-cache``) disables
reads and writes entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.analysis.config import LintConfig
from repro.analysis.findings import Finding

#: Bump to invalidate every cached result (rule/summary logic changed).
CACHE_VERSION = 1

#: Newest entries kept by :func:`prune`.
_KEEP = 8


def cache_enabled() -> bool:
    return os.environ.get("REPRO_LINT_CACHE", "1") != "0"


def cache_dir(root: Path | None = None) -> Path:
    override = os.environ.get("REPRO_LINT_CACHE_DIR")
    if override:
        return Path(override)
    return (root or Path.cwd()) / ".lint-cache" / "flow"


def cache_key(config: LintConfig,
              sources: list[tuple[str, str]],
              rule_ids: list[str]) -> str:
    """Digest over everything that can change the project findings.

    ``sources`` is a list of ``(display path, source text)`` pairs; the
    config is keyed by its repr (a frozen dataclass of tuples, so the
    repr is deterministic and covers every knob).
    """
    hasher = hashlib.sha256()
    hasher.update(f"v{CACHE_VERSION}\n".encode())
    hasher.update(repr(config).encode())
    hasher.update("\n".join(sorted(rule_ids)).encode())
    for path, source in sorted(sources):
        digest = hashlib.sha256(source.encode()).hexdigest()
        hasher.update(f"\n{path}\x00{digest}".encode())
    return hasher.hexdigest()


def load(key: str, root: Path | None = None) -> list[Finding] | None:
    """Cached findings for ``key``, or None on miss/corruption."""
    path = cache_dir(root) / f"{key}.json"
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return [Finding(rule_id=str(entry["rule"]),
                        path=str(entry["path"]),
                        line=int(entry["line"]),
                        col=int(entry["col"]),
                        message=str(entry["message"]),
                        suppressed=bool(entry["suppressed"]))
                for entry in payload["findings"]]
    except (OSError, ValueError, KeyError, TypeError):
        return None


def store(key: str, findings: list[Finding],
          root: Path | None = None) -> None:
    """Persist findings; failures are silent (cache is best-effort)."""
    directory = cache_dir(root)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        payload = {"version": CACHE_VERSION,
                   "findings": [f.as_dict() for f in findings]}
        tmp = directory / f"{key}.json.tmp"
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(directory / f"{key}.json")
        prune(directory)
    except OSError:
        pass


def prune(directory: Path, keep: int = _KEEP) -> None:
    """Drop all but the ``keep`` most recently written entries."""
    try:
        entries = sorted(directory.glob("*.json"),
                         key=lambda p: p.stat().st_mtime, reverse=True)
        for stale in entries[keep:]:
            stale.unlink(missing_ok=True)
    except OSError:
        pass
