"""Call-graph construction and inter-procedural reachability.

Resolution strategy, in decreasing order of precision:

1. **Imports** — a ``Name`` or dotted-attribute call is resolved through
   the module's :class:`~repro.analysis.context.ImportResolver` to a
   project function (``run_key(...)``, ``runcache.job_key(...)``); a
   bare local name also matches a function or class defined in the same
   module.  Calling a project *class* edges to its ``__init__``.
2. **Self dispatch** — ``self.meth(...)``/``cls.meth(...)`` inside a
   class resolves through the class and its project-visible bases.
3. **Duck-typed fallback** — ``obj.meth(...)`` with an unresolvable
   receiver edges to *every* project method named ``meth`` (the
   class-hierarchy-analysis over-approximation).  This is what carries
   reachability through the scheme/handler protocols: a switch's
   ``handler.on_switch(...)`` reaches every scheme's ``on_switch``,
   and ``cache.insert(...)`` reaches every cache geometry's ``insert``.

Over-approximation is the right bias for the W-rules: they check
*completeness* properties (every reachable mutation escalates), so
extra edges widen the checked set rather than hiding violations.
"""

from __future__ import annotations

import ast
from collections import deque

from repro.analysis.flow.project import FunctionInfo, ProjectContext

#: Receiver roots treated as the enclosing instance for self dispatch.
_SELF_ROOTS = frozenset({"self", "cls"})


def _attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return list(reversed(parts))


class CallGraph:
    """Edges between project functions, plus a reverse index."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        #: caller qualname -> set of callee qualnames
        self.callees: dict[str, set[str]] = {}
        #: callee qualname -> set of caller qualnames
        self.callers: dict[str, set[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for qualname, func in self.project.functions.items():
            targets: set[str] = set()
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    targets |= self.resolve_call(func, node)
            self.callees[qualname] = targets
            for target in targets:
                self.callers.setdefault(target, set()).add(qualname)

    def resolve_call(self, func: FunctionInfo,
                     call: ast.Call) -> set[str]:
        """Project functions a call site may dispatch to."""
        project = self.project
        module = func.module
        target = call.func
        if isinstance(target, ast.Name):
            return self._resolve_name(func, target.id)
        if not isinstance(target, ast.Attribute):
            return set()
        chain = _attribute_chain(target)
        if chain is None:
            # Computed receiver (subscript, call result ...): fall back
            # on the method name alone.
            return self._cha(target.attr)
        # self.meth(...) / cls.meth(...)
        if len(chain) == 2 and chain[0] in _SELF_ROOTS \
                and func.cls is not None:
            class_qualname = f"{module.module_name}.{func.cls}"
            resolved = project.resolve_method(class_qualname, chain[1])
            if resolved is not None:
                return {resolved}
            return self._cha(chain[1])
        # Fully qualified through imports: module.func, module.Cls.meth,
        # or an imported class's method.
        dotted = module.imports.resolve(target)
        if dotted is not None:
            if dotted in project.functions:
                return {dotted}
            if dotted in project.classes:
                init = project.resolve_method(dotted, "__init__")
                return {init} if init is not None else set()
        return self._cha(chain[-1])

    def _resolve_name(self, func: FunctionInfo, name: str) -> set[str]:
        project = self.project
        module = func.module
        dotted = module.imports.resolve(ast.Name(id=name))
        candidates = []
        if dotted is not None:
            candidates.append(dotted)
        candidates.append(f"{module.module_name}.{name}")
        for candidate in candidates:
            if candidate in project.functions:
                return {candidate}
            if candidate in project.classes:
                init = project.resolve_method(candidate, "__init__")
                return {init} if init is not None else set()
        return set()

    def _cha(self, method: str) -> set[str]:
        """All project methods with this bare name (duck-typed fallback).

        Dunder methods are excluded: ``__init__``/``__eq__`` fan-out
        would connect every class to every other through operators.
        """
        if method.startswith("__") and method.endswith("__"):
            return set()
        return set(self.project.methods_by_name.get(method, ()))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable_from(self, roots: list[str] | set[str]) -> set[str]:
        """Functions reachable from ``roots`` (roots included)."""
        seen: set[str] = set()
        queue = deque(root for root in roots
                      if root in self.project.functions)
        seen.update(queue)
        while queue:
            current = queue.popleft()
            for callee in self.callees.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return seen

    def reaches(self, start: str, predicate) -> bool:
        """Does any function reachable from ``start`` satisfy
        ``predicate(qualname)`` (the start itself included)?"""
        seen = {start}
        queue = deque([start])
        while queue:
            current = queue.popleft()
            if predicate(current):
                return True
            for callee in self.callees.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
        return False
