"""Per-function dataflow summaries for the W-rule families.

One :class:`FunctionSummary` is computed per project function by a
single source-ordered pass over its body (compound statements are
descended in order; loops are scanned once — enough for the alias
patterns that matter here).  The pass tracks a small abstract
environment mapping local names to *origins*:

* ``attr`` — the local aliases an attribute chain
  (``cb = self.on_mutate``; a later ``cb()`` is a notification call);
* ``state`` — the local aliases cache/mapping/gateway state, either
  directly (``keys = self._keys``) or through a helper whose summary
  says it returns state (``entries = self._set_of(vip)``) — mutations
  through it count as state mutations;
* ``rng`` — the local holds a random generator of unapproved
  provenance (constructed outside :mod:`repro.sim.randomness` without
  a derived seed); passing it onward is an RNG-provenance flow;
* ``seed`` — the local holds a properly derived seed value.

Summaries that feed other summaries (``returns_state_attr``,
``returns_rng``) are resolved by re-running the pass until a fixpoint
(bounded; helper chains in practice are one or two levels deep).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.project import FunctionInfo, ProjectContext

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: RNG constructor call targets (resolved dotted names).
_RNG_CONSTRUCTORS = frozenset({
    "random.Random", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.RandomState",
})


@dataclass(frozen=True)
class Site:
    """One source location with a short detail string."""

    line: int
    col: int
    detail: str


@dataclass
class _Origin:
    kind: str  # "attr" | "state" | "rng" | "seed"
    detail: str


@dataclass
class FunctionSummary:
    """Everything the W-rules need to know about one function."""

    qualname: str
    #: state-attribute mutation sites (detail = the attribute).
    mutation_sites: list[Site] = field(default_factory=list)
    #: escalation/observer notification call sites.
    notify_sites: list[Site] = field(default_factory=list)
    #: RNG constructions with unapproved seed provenance.
    rng_sites: list[Site] = field(default_factory=list)
    #: sites where an unapproved RNG value flows onward (call argument,
    #: attribute store).
    rng_flow_sites: list[Site] = field(default_factory=list)
    #: state attribute this function returns an alias of, if any.
    returns_state_attr: str | None = None
    #: set when the function returns an unapproved RNG (description).
    returns_rng: str | None = None
    #: W404 pair-open call sites, by index into config.flow_call_pairs.
    opens: dict[int, list[Site]] = field(default_factory=dict)
    #: W404 pair-close indexes this function calls directly.
    closes: set[int] = field(default_factory=set)
    #: every identifier (names + attribute names) in the body.
    body_names: frozenset[str] = frozenset()

    @property
    def notifies(self) -> bool:
        return bool(self.notify_sites)


def _chain_names(node: ast.expr) -> tuple[str, ...]:
    """All attribute/root names along an Attribute/Subscript chain."""
    names: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            names.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        names.append(node.id)
    return tuple(reversed(names))


def _matches_any(candidates: tuple[str, ...],
                 patterns: tuple[str, ...]) -> bool:
    return any(fnmatchcase(candidate, pattern)
               for candidate in candidates if candidate
               for pattern in patterns)


class _FunctionScanner:
    """One source-ordered scan of one function body."""

    def __init__(self, func: FunctionInfo, project: ProjectContext,
                 graph: CallGraph,
                 summaries: dict[str, FunctionSummary],
                 rng_in_scope: bool) -> None:
        self.func = func
        self.project = project
        self.graph = graph
        self.summaries = summaries
        self.config = project.config
        self.rng_in_scope = rng_in_scope
        self.summary = FunctionSummary(qualname=func.qualname)
        self.env: dict[str, _Origin] = {}

    # ------------------------------------------------------------------
    def run(self) -> FunctionSummary:
        names: set[str] = set()
        for node in ast.walk(self.func.node):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
        self.summary.body_names = frozenset(names)
        self._scan_body(self.func.node.body)
        return self.summary

    def _scan_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._scan_statement(stmt)

    def _scan_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, _FUNCTION_NODES):
            # Closures share the enclosing dataflow facts; their effects
            # are attributed to the enclosing function.
            self._scan_body(stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, ast.Assign):
            self._visit_exprs(stmt.value)
            origin = self._classify(stmt.value)
            for target in stmt.targets:
                self._assign(target, origin, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_exprs(stmt.value)
                self._assign(stmt.target, self._classify(stmt.value),
                             stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_exprs(stmt.value)
            self._check_store_target(stmt.target)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._check_store_target(target)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_exprs(stmt.value)
                self._note_return(stmt.value)
            return
        if isinstance(stmt, ast.For):
            self._visit_exprs(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                # ``for listener in self._listeners`` aliases the loop
                # variable to an element of the attribute chain.
                self.env[stmt.target.id] = self._classify(stmt.iter)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._visit_exprs(stmt.test)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self._visit_exprs(stmt.test)
            self._scan_body(stmt.body)
            self._scan_body(stmt.orelse)
            return
        if isinstance(stmt, ast.With | ast.AsyncWith):
            for item in stmt.items:
                self._visit_exprs(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = \
                        self._classify(item.context_expr)
            self._scan_body(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self._scan_body(stmt.body)
            for handler in stmt.handlers:
                self._scan_body(handler.body)
            self._scan_body(stmt.orelse)
            self._scan_body(stmt.finalbody)
            return
        # Expression statements and everything else: visit every call.
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                self._visit_call(node)

    # ------------------------------------------------------------------
    # expression effects (calls, stores, taint uses)
    # ------------------------------------------------------------------
    def _visit_exprs(self, node: ast.expr) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._visit_call(sub)

    def _visit_call(self, call: ast.Call) -> None:
        resolved = self._resolved_target(call)
        terminal = self._terminal_name(call)
        # Notification calls (escalation hooks, observer invocations).
        if self._is_notify(call, resolved, terminal):
            self.summary.notify_sites.append(
                Site(call.lineno, call.col_offset, terminal or "?"))
        # Pair open/close calls (W404).
        for index, pair in enumerate(self.config.flow_call_pairs):
            candidates = tuple(c for c in (resolved, terminal) if c)
            if _matches_any(candidates, (pair.open,)):
                self.summary.opens.setdefault(index, []).append(
                    Site(call.lineno, call.col_offset, pair.open))
            if _matches_any(candidates, (pair.close,)):
                self.summary.closes.add(index)
        # Container mutations through state-aliased receivers.
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in self.config.mutating_methods:
            attr = self._state_attr_of(call.func.value)
            if attr is not None:
                self.summary.mutation_sites.append(
                    Site(call.lineno, call.col_offset, attr))
        # RNG provenance: construction and onward flow.
        if self.rng_in_scope:
            if resolved in _RNG_CONSTRUCTORS \
                    and not self._seed_approved(call):
                self.summary.rng_sites.append(
                    Site(call.lineno, call.col_offset, resolved))
            for arg in (*call.args, *(kw.value for kw in call.keywords)):
                if isinstance(arg, ast.Name):
                    origin = self.env.get(arg.id)
                    if origin is not None and origin.kind == "rng":
                        self.summary.rng_flow_sites.append(
                            Site(arg.lineno, arg.col_offset,
                                 origin.detail))

    def _resolved_target(self, call: ast.Call) -> str | None:
        return self.func.module.imports.resolve(call.func)

    @staticmethod
    def _terminal_name(call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return None

    def _is_notify(self, call: ast.Call, resolved: str | None,
                   terminal: str | None) -> bool:
        config = self.config
        candidates = tuple(c for c in (resolved, terminal) if c)
        if _matches_any(candidates, config.notify_calls):
            return True
        # Direct invocation of a hook attribute: self.on_mutate().
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr in config.notify_attrs:
            return True
        # Invocation through a local alias: cb = self.on_mutate; cb().
        if isinstance(call.func, ast.Name):
            origin = self.env.get(call.func.id)
            if origin is not None and origin.kind == "attr":
                chain = origin.detail.split(".")
                if any(name in config.notify_attrs for name in chain):
                    return True
        return False

    def _seed_approved(self, call: ast.Call) -> bool:
        """Is the constructor seeded from derived-seed provenance?"""
        for arg in (*call.args, *(kw.value for kw in call.keywords)):
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    resolved = self.func.module.imports.resolve(sub.func)
                    terminal = self._terminal_name(sub)
                    candidates = tuple(c for c in (resolved, terminal)
                                       if c)
                    if _matches_any(candidates,
                                    self.config.rng_seed_sources):
                        return True
                elif isinstance(sub, ast.Name):
                    origin = self.env.get(sub.id)
                    if origin is not None and origin.kind == "seed":
                        return True
        return False

    # ------------------------------------------------------------------
    # assignment classification
    # ------------------------------------------------------------------
    def _classify(self, value: ast.expr) -> _Origin | None:
        """Abstract origin of an assigned expression, or None."""
        if isinstance(value, ast.Name):
            return self.env.get(value.id)
        if isinstance(value, ast.Attribute | ast.Subscript):
            chain = _chain_names(value)
            for name in chain:
                if name in self.config.state_attrs:
                    return _Origin("state", name)
            return _Origin("attr", ".".join(chain))
        if isinstance(value, ast.Call):
            return self._classify_call(value)
        return None

    def _classify_call(self, call: ast.Call) -> _Origin | None:
        resolved = self._resolved_target(call)
        terminal = self._terminal_name(call)
        candidates = tuple(c for c in (resolved, terminal) if c)
        if _matches_any(candidates, self.config.rng_seed_sources):
            # A derived seed, or a stream handed out by RandomStreams.
            if terminal == "stream" or (resolved or "").endswith(".stream"):
                return None  # the stream itself is fine to pass around
            return _Origin("seed", resolved or terminal or "seed")
        if self.rng_in_scope and resolved in _RNG_CONSTRUCTORS \
                and not self._seed_approved(call):
            return _Origin("rng", resolved or "rng")
        # Through project helpers, using the current summaries.
        for callee in self.graph.resolve_call(self.func, call):
            summary = self.summaries.get(callee)
            if summary is None:
                continue
            if summary.returns_state_attr is not None:
                return _Origin("state", summary.returns_state_attr)
            if self.rng_in_scope and summary.returns_rng is not None:
                return _Origin("rng", f"{callee} (helper)")
        return None

    def _assign(self, target: ast.expr, origin: _Origin | None,
                value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if origin is not None:
                self.env[target.id] = origin
            else:
                self.env.pop(target.id, None)
            return
        if isinstance(target, ast.Tuple | ast.List):
            for element in target.elts:
                self._assign(element, None, value)
            return
        self._check_store_target(target)
        # Storing an unapproved RNG into an attribute publishes it.
        if self.rng_in_scope and isinstance(value, ast.Name):
            value_origin = self.env.get(value.id)
            if value_origin is not None and value_origin.kind == "rng":
                self.summary.rng_flow_sites.append(
                    Site(target.lineno, target.col_offset,
                         value_origin.detail))

    def _check_store_target(self, target: ast.expr) -> None:
        """Record a mutation when a store goes through state."""
        if not isinstance(target, ast.Attribute | ast.Subscript):
            return
        attr = self._state_attr_of(target)
        if attr is not None:
            self.summary.mutation_sites.append(
                Site(target.lineno, target.col_offset, attr))

    def _state_attr_of(self, node: ast.expr) -> str | None:
        """The state attribute a chain touches, if any (alias-aware)."""
        chain = _chain_names(node)
        for name in chain:
            if name in self.config.state_attrs:
                return name
        if chain:
            origin = self.env.get(chain[0])
            if origin is not None and origin.kind == "state":
                return origin.detail
        return None

    # ------------------------------------------------------------------
    def _note_return(self, value: ast.expr) -> None:
        summary = self.summary
        if isinstance(value, ast.Attribute | ast.Subscript):
            chain = _chain_names(value)
            for name in chain:
                if name in self.config.state_attrs:
                    summary.returns_state_attr = name
                    return
        if isinstance(value, ast.Name):
            origin = self.env.get(value.id)
            if origin is None:
                return
            if origin.kind == "state":
                summary.returns_state_attr = origin.detail
            elif origin.kind == "rng":
                summary.returns_rng = origin.detail
            return
        if isinstance(value, ast.Call):
            origin = self._classify_call(value)
            if origin is None:
                return
            if origin.kind == "state":
                summary.returns_state_attr = origin.detail
            elif origin.kind == "rng":
                summary.returns_rng = origin.detail


def _rng_in_scope(func: FunctionInfo, project: ProjectContext) -> bool:
    module = func.module
    return module.in_sim_package() \
        and not module.matches(project.config.rng_provenance_allow)


def summarize_project(project: ProjectContext,
                      graph: CallGraph) -> dict[str, FunctionSummary]:
    """Summaries for every project function, to a bounded fixpoint.

    The pass re-runs while helper facts (``returns_state_attr``,
    ``returns_rng``) still change, so ``entries = self._set_of(vip)``
    is recognized as a state alias once ``_set_of``'s summary says it
    returns state.  Real helper chains are shallow; four rounds is
    plenty and bounds pathological inputs.
    """
    summaries: dict[str, FunctionSummary] = {}
    for _ in range(4):
        fresh = {
            qualname: _FunctionScanner(
                func, project, graph, summaries,
                _rng_in_scope(func, project)).run()
            for qualname, func in project.functions.items()
        }
        stable = all(
            (summaries.get(q) is not None
             and summaries[q].returns_state_attr == s.returns_state_attr
             and summaries[q].returns_rng == s.returns_rng)
            for q, s in fresh.items())
        summaries = fresh
        if stable:
            break
    return summaries
