"""T-series rules: the simulation clock is integer nanoseconds.

The engine sums many small per-hop delays; float time drifts, and a
single float sneaking into ``schedule()`` silently converts the whole
downstream event chain (heap keys compare float-vs-int fine, so nothing
crashes — results just stop being bit-stable across platforms).  These
rules keep every expression that flows into the clock integral at the
source: conversions must go through ``usec``/``msec``/``round``/``int``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, rule
from repro.analysis.rules.common import call_name, contains_float_or_division

#: Keyword names under which the time argument may be passed.
_TIME_KEYWORDS = ("at", "delay")


@rule
class FloatTimeArgRule(Rule):
    """T201: no float literal / true division flowing into a time API."""

    rule_id = "T201"
    summary = ("float or `/` division flows into schedule()/"
               "schedule_after()/schedule_timer(); the clock is integer ns")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        apis = module.config.time_apis
        converters = module.config.time_converters
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or call_name(node) not in apis:
                continue
            time_arg: ast.expr | None = node.args[0] if node.args else None
            if time_arg is None:
                for keyword in node.keywords:
                    if keyword.arg in _TIME_KEYWORDS:
                        time_arg = keyword.value
                        break
            if time_arg is None:
                continue
            hit = contains_float_or_division(time_arg, converters)
            if hit is None:
                continue
            what = ("float literal" if isinstance(hit, ast.Constant)
                    else "true division (`/`)")
            yield self.finding(
                module, hit.lineno, hit.col_offset,
                f"{what} flows into {call_name(node)}(); simulation time is "
                "integer nanoseconds — convert with usec()/msec()/round() "
                "or use `//`")


@rule
class FloatTimeVarRule(Rule):
    """T202: `*_ns` variables must be assigned integer expressions."""

    rule_id = "T202"
    summary = ("float or `/` division assigned to a *_ns variable; "
               "nanosecond quantities are integers")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_sim_package():
            return
        if module.matches(module.config.float_time_allow):
            return
        converters = module.config.time_converters
        for node in ast.walk(module.tree):
            targets: list[ast.expr]
            value: ast.expr | None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets, value = [node.target], node.value
            else:
                continue
            if value is None:
                continue
            if not any(self._is_ns_target(target) for target in targets):
                continue
            hit = contains_float_or_division(value, converters)
            if hit is None:
                continue
            what = ("float literal" if isinstance(hit, ast.Constant)
                    else "true division (`/`)")
            yield self.finding(
                module, hit.lineno, hit.col_offset,
                f"{what} assigned to a *_ns variable; keep nanosecond "
                "quantities integral (usec()/msec()/round()/`//`), or move "
                "float reporting math out of simulation modules")

    @staticmethod
    def _is_ns_target(node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return False
        # ``*_per_ns`` names are rates (1/time), which are legitimately
        # fractional; only absolute nanosecond quantities must be ints.
        # Case-folded so SOME_GAP_NS module constants are covered too.
        name = name.lower()
        return name.endswith("_ns") and not name.endswith("_per_ns")
