"""Whole-program rules W401-W404 (built on :mod:`repro.analysis.flow`).

These rules check *cross-module* contracts that no per-module rule can
see:

* **W401** — RNG provenance: every generator used in simulation code
  must be seeded from :func:`repro.sim.randomness.derive_seed` /
  :meth:`RandomStreams.stream`, even when the construction hides in a
  helper and the generator flows to the use site through locals,
  returns, or attributes.  This is the dataflow upgrade of D102, which
  only sees syntactically-global RNG calls.
* **W402** — escalation completeness: any function reachable from a
  data-plane entry point that mutates cache/mapping/gateway state must
  reach an escalation/observer notification (``on_mutate``,
  ``escalate_*``); otherwise the hybrid-fidelity engine would keep
  replaying fluid flows against stale state.  Cross-module
  generalization of D110, which audits only the fluid module itself.
* **W403** — runcache key coverage: every field of the configured
  experiment dataclasses must be consumed by the run-cache key
  derivation, or appear on the audited exemption list; wholesale-
  encoded dataclasses must stay frozen and fully annotated (an
  unannotated class attribute silently escapes ``dataclasses.fields``
  and therefore the key).  A knob that misses the key serves stale
  cache hits for changed runs — the worst failure mode a result cache
  has.
* **W404** — pairing discipline along call paths: a function that
  opens a paired resource (``gc.disable``, register-style hooks) must
  reach the matching close in itself or its callees, or every caller
  must; and configured mutator-memo pairings are satisfied anywhere on
  the mutator's call path (the call-path-aware companion to the
  body-local R303).
"""

from __future__ import annotations

from collections.abc import Iterator
from fnmatch import fnmatchcase
from re import fullmatch

from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.dataflow import FunctionSummary
from repro.analysis.flow.project import ProjectContext
from repro.analysis.registry import ProjectRule, rule


def _finding(rule_id: str, module, line: int, col: int,
             message: str) -> Finding:
    return Finding(rule_id=rule_id, path=str(module.path),
                   line=line, col=col, message=message)


@rule
class RngProvenance(ProjectRule):
    rule_id = "W401"
    summary = ("simulation RNGs must carry derived-seed provenance "
               "(repro.sim.randomness), tracked through helpers")

    def check_project(self, project: ProjectContext, graph: CallGraph,
                      summaries: dict[str, FunctionSummary],
                      ) -> Iterator[Finding]:
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            summary = summaries[qualname]
            for site in summary.rng_sites:
                yield _finding(
                    self.rule_id, func.module, site.line, site.col,
                    f"'{qualname}' constructs {site.detail} without "
                    "derived-seed provenance; seed it via "
                    "repro.sim.randomness.derive_seed or take a stream "
                    "from RandomStreams")
            for site in summary.rng_flow_sites:
                yield _finding(
                    self.rule_id, func.module, site.line, site.col,
                    f"'{qualname}' passes on an RNG of unapproved "
                    f"provenance ({site.detail}); thread a seeded "
                    "stream instead")


@rule
class EscalationCompleteness(ProjectRule):
    rule_id = "W402"
    summary = ("state mutations reachable from data-plane entry points "
               "must reach a fluid escalation/observer notification")

    def check_project(self, project: ProjectContext, graph: CallGraph,
                      summaries: dict[str, FunctionSummary],
                      ) -> Iterator[Finding]:
        config = project.config
        roots = project.functions_matching(config.flow_entry_points)
        reachable = graph.reachable_from(roots)

        def notifies(qualname: str) -> bool:
            summary = summaries.get(qualname)
            return summary is not None and summary.notifies

        for qualname in sorted(reachable):
            if any(fnmatchcase(qualname, pattern)
                   for pattern in config.escalation_exempt):
                continue
            summary = summaries[qualname]
            if not summary.mutation_sites:
                continue
            if graph.reaches(qualname, notifies):
                continue
            func = project.functions[qualname]
            attrs = sorted({site.detail for site in summary.mutation_sites})
            site = summary.mutation_sites[0]
            yield _finding(
                self.rule_id, func.module, site.line, site.col,
                f"'{qualname}' mutates state ({', '.join(attrs)}) on a "
                "data-plane path without reaching an escalation hook or "
                "mutation observer; fire on_mutate/escalate_* or add an "
                "audited escalation-exempt entry")


@rule
class RuncacheKeyCoverage(ProjectRule):
    rule_id = "W403"
    summary = ("every experiment-dataclass field must reach run-cache "
               "key derivation or carry an audited exemption")

    def check_project(self, project: ProjectContext, graph: CallGraph,
                      summaries: dict[str, FunctionSummary],
                      ) -> Iterator[Finding]:
        config = project.config
        for contract in config.runcache_coverage:
            info = project.classes.get(contract.dataclass_name)
            key_func = project.functions.get(contract.key_function)
            if info is None or key_func is None:
                # The contract points outside the linted set (single-file
                # runs, fixtures); nothing to check here.
                continue
            # Consumption must be visible in the key function's own
            # body: crediting transitive callees would let run_key's
            # mention of a name mask job_key silently dropping the
            # same-named job field.
            consumed = summaries[contract.key_function].body_names
            fields = info.dataclass_fields()
            field_names = {name for name, _ in fields}
            for name, stmt in fields:
                if name in contract.exempt:
                    continue
                if name not in consumed:
                    yield _finding(
                        self.rule_id, info.module, stmt.lineno,
                        stmt.col_offset,
                        f"field '{contract.dataclass_name}.{name}' never "
                        f"reaches '{contract.key_function}': runs "
                        "differing only in this knob would share a cache "
                        "key; key it or add an audited exemption")
            for name in contract.exempt:
                if name not in field_names:
                    yield _finding(
                        self.rule_id, info.module, info.node.lineno,
                        info.node.col_offset,
                        f"W403 exemption names unknown field '{name}' "
                        f"of {contract.dataclass_name}; drop it")
                elif name in consumed:
                    yield _finding(
                        self.rule_id, info.module, info.node.lineno,
                        info.node.col_offset,
                        f"stale W403 exemption: field '{name}' of "
                        f"{contract.dataclass_name} is consumed by "
                        f"'{contract.key_function}'; remove the "
                        "exemption")
        for qualname in config.encoded_dataclasses:
            info = project.classes.get(qualname)
            if info is None:
                continue
            if not info.is_frozen_dataclass():
                yield _finding(
                    self.rule_id, info.module, info.node.lineno,
                    info.node.col_offset,
                    f"'{qualname}' is hashed wholesale into run-cache "
                    "keys and must stay a frozen dataclass "
                    "(@dataclass(frozen=True))")
            for name, stmt in info.unannotated_assignments():
                yield _finding(
                    self.rule_id, info.module, stmt.lineno,
                    stmt.col_offset,
                    f"'{qualname}.{name}' has no annotation, so "
                    "dataclasses.fields skips it and it never reaches "
                    "the run-cache key; annotate it (or make it a "
                    "ClassVar if it is genuinely not a knob)")



@rule
class PairingDiscipline(ProjectRule):
    rule_id = "W404"
    summary = ("paired calls (gc pause/resume, register/unregister) and "
               "mutator-memo invariants must close along call paths")

    def check_project(self, project: ProjectContext, graph: CallGraph,
                      summaries: dict[str, FunctionSummary],
                      ) -> Iterator[Finding]:
        config = project.config
        yield from self._check_pairs(project, graph, summaries, config)
        yield from self._check_memo_paths(project, graph, summaries, config)

    def _check_pairs(self, project, graph, summaries, config,
                     ) -> Iterator[Finding]:
        for index, pair in enumerate(config.flow_call_pairs):

            def closes(qualname: str, index: int = index) -> bool:
                summary = summaries.get(qualname)
                return summary is not None and index in summary.closes

            for qualname in sorted(project.functions):
                summary = summaries[qualname]
                sites = summary.opens.get(index)
                if not sites:
                    continue
                if graph.reaches(qualname, closes):
                    continue
                func = project.functions[qualname]
                callers = sorted(graph.callers.get(qualname, ()))
                bad = [caller for caller in callers
                       if not graph.reaches(caller, closes)]
                if callers and not bad:
                    continue  # every caller restores the pair
                shown = ", ".join(bad[:4]) + (
                    f", ... ({len(bad) - 4} more)" if len(bad) > 4 else "")
                where = (f"; callers {shown} never close it"
                         if bad else "; it has no project callers")
                for site in sites:
                    yield _finding(
                        self.rule_id, func.module, site.line, site.col,
                        f"'{qualname}' calls {pair.open} without "
                        f"reaching {pair.close} on any call path{where}")

    def _check_memo_paths(self, project, graph, summaries, config,
                          ) -> Iterator[Finding]:
        for pairing in config.memo_pairings:
            for qualname in sorted(project.functions):
                func = project.functions[qualname]
                if func.cls is None:
                    continue
                if not func.module.matches((pairing.module,)):
                    continue
                if pairing.cls != "*" and func.cls != pairing.cls:
                    continue
                if not any(fullmatch(pattern, func.name)
                           for pattern in pairing.mutators):
                    continue
                missing = self._missing_requires(
                    qualname, pairing.require, graph, summaries)
                if not missing:
                    continue
                yield _finding(
                    self.rule_id, func.module, func.node.lineno,
                    func.node.col_offset,
                    f"mutator '{qualname}' never references "
                    f"{', '.join(sorted(missing))} anywhere on its call "
                    "path (memo-invalidation pairing)")

    @staticmethod
    def _missing_requires(qualname: str, require: tuple[str, ...],
                          graph: CallGraph,
                          summaries: dict[str, FunctionSummary],
                          ) -> set[str]:
        missing = set(require)
        for reached in graph.reachable_from([qualname]):
            summary = summaries.get(reached)
            if summary is None:
                continue
            missing -= summary.body_names
            if not missing:
                break
        return missing
