"""Built-in rule battery; importing this package registers every rule.

Rule series:

* ``D1xx`` — determinism (:mod:`repro.analysis.rules.determinism`);
  D110 (fluid-path mutation discipline) lives in its own module,
  :mod:`repro.analysis.rules.fluid`;
* ``T2xx`` — integer simulation time (:mod:`repro.analysis.rules.timing`);
* ``R3xx`` — resource/freelist/memo invariants
  (:mod:`repro.analysis.rules.resources`).
"""

from repro.analysis.rules import determinism, fluid, resources, timing

__all__ = ["determinism", "fluid", "resources", "timing"]
