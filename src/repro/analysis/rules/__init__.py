"""Built-in rule battery; importing this package registers every rule.

Rule series:

* ``D1xx`` — determinism (:mod:`repro.analysis.rules.determinism`);
  D110 (fluid-path mutation discipline) lives in its own module,
  :mod:`repro.analysis.rules.fluid`;
* ``T2xx`` — integer simulation time (:mod:`repro.analysis.rules.timing`);
* ``R3xx`` — resource/freelist/memo invariants
  (:mod:`repro.analysis.rules.resources`);
* ``W4xx`` — whole-program flow rules
  (:mod:`repro.analysis.rules.flow_rules`): RNG provenance, escalation
  completeness, run-cache key coverage, call-path pairing discipline.
"""

from repro.analysis.rules import (determinism, fluid, flow_rules, resources,
                                  timing)

__all__ = ["determinism", "fluid", "flow_rules", "resources", "timing"]
