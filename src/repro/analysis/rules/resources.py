"""R-series rules: freelist and memo-table invariants.

PR 2's hot-path overhaul introduced two classes of state that runtime
tests are bad at catching when misused:

* the :class:`~repro.net.packet.PacketPool` freelist — a released
  packet may be recycled and rewritten at any later event, so a
  retained reference (read after ``release()``, stored on ``self``, or
  captured in a closure) reads *someone else's* packet;
* memoized forwarding tables (per-switch ECMP memos, the per-flow
  gateway memo) — valid only until topology/faults/pool mutations, so
  every mutator must be structurally paired with the invalidation.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, rule
from repro.analysis.rules.common import (
    call_name,
    nested_scopes,
    position,
    scope_walk,
)


def _release_events(scope: ast.AST, release_methods: tuple[str, ...],
                    ) -> list[tuple[str, tuple[int, int]]]:
    """(name, position-after-arg) for every ``X.release(name)`` call."""
    events = []
    for node in scope_walk(scope):
        if (isinstance(node, ast.Call)
                and call_name(node) in release_methods
                and node.args
                and isinstance(node.args[0], ast.Name)):
            arg = node.args[0]
            events.append((arg.id, position(arg)))
    return events


#: Statements after which control never reaches the rest of the block.
_TERMINATORS = (ast.Return, ast.Raise, ast.Break, ast.Continue)


def _end_position(node: ast.AST) -> tuple[int, int]:
    return (getattr(node, "end_lineno", None) or getattr(node, "lineno", 0),
            getattr(node, "end_col_offset", None)
            or getattr(node, "col_offset", 0))


def _child_stmt_lists(stmt: ast.stmt):
    """Statement blocks nested directly under ``stmt`` (same scope)."""
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body


def _taint_region(stmts: list[ast.stmt],
                  pos: tuple[int, int]) -> tuple[tuple[int, int], bool] | None:
    """(last reachable position, block-terminates?) for a release at ``pos``.

    Control reaches the remainder of the statement list containing the
    release; if that list does not end in return/raise/break/continue it
    falls through into the enclosing list, and so on upward.  Loads past
    the returned position sit on a branch the released packet cannot
    reach (e.g. ``release()`` inside an ``if ...: return`` arm), so they
    are not use-after-release.  Back-edges (a release late in a loop
    body tainting the next iteration) are deliberately out of scope.
    """
    for stmt in stmts:
        if not position(stmt) <= pos <= _end_position(stmt):
            continue
        inner = None
        for block in _child_stmt_lists(stmt):
            inner = _taint_region(block, pos)
            if inner is not None:
                break
        if inner is not None and inner[1]:
            return inner  # an inner block terminates: taint stops there
        end = _end_position(stmts[-1])
        if inner is not None:
            end = max(end, inner[0])
        return end, isinstance(stmts[-1], _TERMINATORS)
    return None


@rule
class UseAfterReleaseRule(Rule):
    """R301: a packet must not be touched after being released."""

    rule_id = "R301"
    summary = ("freelist packet used after release(); the pool may recycle "
               "and rewrite it at any later event")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function in module.functions():
            yield from self._check_function(function, module)

    def _check_function(self, function: ast.AST,
                        module: ModuleContext) -> Iterator[Finding]:
        releases = _release_events(function,
                                   module.config.release_methods)
        if not releases:
            return
        # Every Name event in this scope, in source order.
        names: list[tuple[tuple[int, int], ast.Name]] = sorted(
            (position(node), node) for node in scope_walk(function)
            if isinstance(node, ast.Name))
        body = getattr(function, "body", [])
        for released_name, released_at in releases:
            region = _taint_region(body, released_at)
            for pos, node in names:
                if region is not None and pos > region[0]:
                    break  # control cannot flow here from the release
                if pos <= released_at or node.id != released_name:
                    continue
                if isinstance(node.ctx, ast.Store):
                    break  # rebound to a fresh object: no longer tainted
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"'{released_name}' read after release(); the freelist "
                    "may hand this object to another sender and reset it — "
                    "finish all reads before releasing")
                break  # one finding per release point is enough


@rule
class FreelistEscapeRule(Rule):
    """R302: an acquired packet must not escape into attributes/closures."""

    rule_id = "R302"
    summary = ("freelist packet stored on an attribute or captured in a "
               "closure; it outlives its release point")

    _STORE_METHODS = ("append", "add", "insert", "appendleft", "push")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for function in module.functions():
            yield from self._check_function(function, module)

    def _check_function(self, function: ast.AST,
                        module: ModuleContext) -> Iterator[Finding]:
        acquired = self._acquired_names(function, module)
        if not acquired:
            return
        for node in scope_walk(function):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in acquired):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            f"freelist packet '{node.value.id}' stored "
                            "on an attribute/container; once released "
                            "it will be recycled while this reference "
                            "still sees it — copy the fields you need")
                        break
            elif isinstance(node, ast.Call):
                if call_name(node) in self._STORE_METHODS \
                        and isinstance(node.func, ast.Attribute) \
                        and isinstance(node.func.value, ast.Attribute):
                    for arg in node.args:
                        if isinstance(arg, ast.Name) and arg.id in acquired:
                            yield self.finding(
                                module, arg.lineno, arg.col_offset,
                                f"freelist packet '{arg.id}' appended to an "
                                "attribute container; it outlives its "
                                "release point — copy the fields you need")
        for nested in nested_scopes(function):
            captured = {
                node.id for node in ast.walk(nested)
                if isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id in acquired
            }
            params = {arg.arg for arg in ast.walk(nested)
                      if isinstance(arg, ast.arg)}
            for name in sorted(captured - params):
                yield self.finding(
                    module, nested.lineno, nested.col_offset,
                    f"freelist packet '{name}' captured by a nested "
                    "function; the closure may run after the packet is "
                    "released and recycled")

    @staticmethod
    def _acquired_names(function: ast.AST,
                        module: ModuleContext) -> frozenset[str]:
        acquire = module.config.acquire_methods
        names = set()
        for node in scope_walk(function):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and call_name(node.value) in acquire):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return frozenset(names)


@rule
class MemoPairingRule(Rule):
    """R303: memo-table mutators must reference their invalidation."""

    rule_id = "R303"
    summary = ("state mutator missing its paired memo invalidation "
               "(configured via [tool.repro-lint] memo-pairings)")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for pairing in module.config.memo_pairings:
            if not module.matches((pairing.module,)):
                continue
            patterns = [re.compile(p) for p in pairing.mutators]
            matched_any = False
            for class_def in module.classes():
                if pairing.cls not in ("*", class_def.name):
                    continue
                for item in class_def.body:
                    if not isinstance(item, (ast.FunctionDef,
                                             ast.AsyncFunctionDef)):
                        continue
                    if not any(p.fullmatch(item.name) for p in patterns):
                        continue
                    matched_any = True
                    idents = self._identifiers(item)
                    missing = [name for name in pairing.require
                               if name not in idents]
                    if missing:
                        yield self.finding(
                            module, item.lineno, item.col_offset,
                            f"mutator {class_def.name}.{item.name}() does "
                            f"not reference {', '.join(missing)}; state it "
                            "mutates is memoized and must be invalidated "
                            "here (see docs/linting.md#r303)")
            if not matched_any:
                yield self.finding(
                    module, 1, 0,
                    f"memo pairing for {pairing.module} matched no "
                    f"mutator method ({'|'.join(pairing.mutators)}); the "
                    "pairing is stale — update [tool.repro-lint] "
                    "memo-pairings to follow the rename")

    @staticmethod
    def _identifiers(function: ast.AST) -> frozenset[str]:
        idents = set()
        for node in ast.walk(function):
            if isinstance(node, ast.Name):
                idents.add(node.id)
            elif isinstance(node, ast.Attribute):
                idents.add(node.attr)
        return frozenset(idents)
