"""D11x rules: fluid-path code must not bypass escalation hooks.

The hybrid-fidelity engine (:mod:`repro.sim.fluid`) is only exact
because every mutation of simulator state it performs is funneled
through a small set of audited code paths — probe walks, round
commits, escalations, adoptions, re-injections, and the one-time hook
installation — where the corresponding bookkeeping (delta recording,
cache ``on_mutate`` observation, transport restoration) happens.  A
per-packet counter poked from anywhere else in fluid-path code would
be replayed or skipped silently, corrupting the packet-mode
equivalence the engine guarantees.

Modules opt in by declaring ``FLUID_PATH_MODULE = True`` at module
level; the rule is inert everywhere else.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, rule
from repro.analysis.rules.common import call_name

#: Function-name prefixes (after stripping leading underscores) whose
#: bodies are the audited mutation paths; everything reachable from
#: them — nested closures included — may touch simulator state.
_AUDITED_PREFIXES = ("walk", "commit", "escalate", "adopt", "reinject",
                     "install")

#: Attribute roots a non-audited function may still assign through:
#: its own object and the fluid bookkeeping records, which are not
#: simulator state.
_LOCAL_ROOTS = frozenset({"self", "cls", "flow", "ctx"})

#: Method names that mutate cache contents; calling one outside an
#: audited path bypasses the ``on_mutate`` escalation contract.
_CACHE_MUTATORS = frozenset({"insert", "invalidate", "clear"})

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _is_marked(tree: ast.Module) -> bool:
    """Does the module declare ``FLUID_PATH_MODULE = True`` at top level?"""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(isinstance(target, ast.Name)
                   and target.id == "FLUID_PATH_MODULE"
                   for target in node.targets):
                value = node.value
                return isinstance(value, ast.Constant) and value.value is True
    return False


def _is_audited(name: str) -> bool:
    return name.lstrip("_").startswith(_AUDITED_PREFIXES)


def _store_root(node: ast.expr) -> str | None:
    """The root ``Name`` of an attribute/subscript assignment target."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


@rule
class FluidPathMutationRule(Rule):
    """D110: fluid-path state mutation outside the audited helpers."""

    rule_id = "D110"
    summary = ("simulator-state mutation in FLUID_PATH_MODULE code "
               "outside walk/commit/escalate/adopt/reinject/install "
               "paths; bypasses the escalation/invalidation hooks")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not _is_marked(module.tree):
            return
        yield from self._scan_body(module, module.tree.body)

    def _scan_body(self, module: ModuleContext,
                   body: list[ast.stmt]) -> Iterator[Finding]:
        """Scan statements of one non-audited scope, recursing into
        class bodies and non-audited nested functions; audited
        functions (and everything they enclose) are skipped wholesale.
        """
        for stmt in body:
            if isinstance(stmt, _FUNCTION_NODES):
                if not _is_audited(stmt.name):
                    yield from self._scan_body(module, stmt.body)
                continue
            if isinstance(stmt, ast.ClassDef):
                yield from self._scan_body(module, stmt.body)
                continue
            yield from self._scan_statement(module, stmt)

    def _scan_statement(self, module: ModuleContext,
                        stmt: ast.stmt) -> Iterator[Finding]:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if not isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
                    root = _store_root(target)
                    if root is None or root not in _LOCAL_ROOTS:
                        yield self.finding(
                            module, target.lineno, target.col_offset,
                            f"assignment through {root or 'an expression'!s} "
                            "mutates simulator state outside an audited "
                            "fluid path; move it into a walk/commit/"
                            "escalate/adopt/reinject helper so the "
                            "escalation hooks observe it")
            elif isinstance(node, ast.Call):
                name = call_name(node)
                if (isinstance(node.func, ast.Attribute)
                        and name in _CACHE_MUTATORS):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f".{name}() call outside an audited fluid path; "
                        "cache mutations must flow through walk/commit/"
                        "escalate paths where on_mutate escalation is "
                        "accounted for")
                elif isinstance(node.func, ast.Name) \
                        and node.func.id == "setattr":
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "setattr() outside an audited fluid path writes "
                        "simulator state the escalation hooks cannot see")
