"""D-series rules: no hidden nondeterminism in simulation code.

The simulator's contract is bit-identical results for a fixed seed.
Each rule here bans one way real nondeterminism has crept into
NS3-family reproductions: wall-clock reads, hidden global RNG state,
unordered-collection iteration, and memory-address ordering.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, rule
from repro.analysis.rules.common import call_name, nested_scopes, scope_walk

#: Dotted call targets that read the host's clock.  ``perf_counter``
#: and friends are included: profiling belongs in ``repro.perf``, never
#: interleaved with simulation logic where a timing-dependent branch
#: could change behaviour between runs.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "time.localtime", "time.gmtime", "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Consumers whose result depends on the order their input is iterated.
#: (``min``/``max``/``sum``/``len``/``any``/``all`` are deliberately
#: absent: they are order-insensitive over a set.)
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter",
                                    "reversed"})
_ORDER_SENSITIVE_METHODS = frozenset({"join", "extend"})

_SET_METHODS = frozenset({"union", "intersection", "difference",
                          "symmetric_difference", "copy"})
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


@rule
class WallClockRule(Rule):
    """D101: simulation code must not read the wall clock."""

    rule_id = "D101"
    summary = ("wall-clock read (time.time/perf_counter/datetime.now) in "
               "simulation code; only repro.perf may time the host")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_sim_package():
            return
        if module.matches(module.config.wall_clock_allow):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(node.func)
            if resolved in WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"call to {resolved}() reads the wall clock; simulation "
                    "code must use the engine's integer-ns clock "
                    "(Engine.now) — host timing belongs in repro.perf")


@rule
class GlobalRngRule(Rule):
    """D102: all randomness flows through seeded generator objects."""

    rule_id = "D102"
    summary = ("global-RNG call (random.* / np.random.*); randomness must "
               "flow through repro.sim.randomness.RandomStreams")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        factories = frozenset(module.config.rng_factories)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = module.imports.resolve(node.func)
            if resolved is None:
                continue
            if resolved == "random" or resolved.startswith("random."):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"call to {resolved}() uses the stdlib's hidden global "
                    "RNG; draw from a named RandomStreams stream instead")
            elif resolved.startswith("numpy.random."):
                attr = resolved.rsplit(".", 1)[1]
                if attr not in factories:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"call to {resolved}() hits numpy's hidden global "
                        "RNG state; use a Generator from "
                        "RandomStreams.stream(name) instead")
                elif attr in ("default_rng", "RandomState") \
                        and not node.args and not node.keywords:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"{resolved}() without a seed is entropy-seeded "
                        "and breaks reproducibility; pass an explicit "
                        "seed (ideally via RandomStreams)")


@rule
class SetIterationRule(Rule):
    """D103: no order-sensitive iteration over unordered sets."""

    rule_id = "D103"
    summary = ("order-sensitive iteration over a set; wrap in sorted() — "
               "set order varies with hash seeding and build")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not (module.in_sim_package()
                or module.module_name.startswith("benchmarks")):
            return
        yield from self._check_scope(module.tree, module, frozenset())

    def _check_scope(self, scope: ast.AST, module: ModuleContext,
                     outer_sets: frozenset[str]) -> Iterator[Finding]:
        set_names = self._set_typed_names(scope, outer_sets)
        for node in scope_walk(scope):
            yield from self._check_node(node, module, set_names)
        for nested in nested_scopes(scope):
            yield from self._check_scope(nested, module, set_names)

    def _set_typed_names(self, scope: ast.AST,
                         outer: frozenset[str]) -> frozenset[str]:
        """Names assigned only set expressions within ``scope``."""
        assigned_set: set[str] = set()
        assigned_other: set[str] = set()
        for node in scope_walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if self._is_set_expr(node.value, outer):
                    assigned_set.add(target.id)
                else:
                    assigned_other.add(target.id)
        return frozenset((set(outer) | assigned_set) - assigned_other)

    def _is_set_expr(self, node: ast.expr,
                     set_names: frozenset[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return (self._is_set_expr(node.left, set_names)
                    or self._is_set_expr(node.right, set_names))
        return False

    def _check_node(self, node: ast.AST, module: ModuleContext,
                    set_names: frozenset[str]) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            if self._is_set_expr(node.iter, set_names):
                yield self._flag(module, node.iter)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                if self._is_set_expr(comp.iter, set_names):
                    yield self._flag(module, comp.iter)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            is_plain = isinstance(node.func, ast.Name)
            if ((is_plain and name in _ORDER_SENSITIVE_CALLS)
                    or (not is_plain and name in _ORDER_SENSITIVE_METHODS)):
                for arg in node.args:
                    if self._is_set_expr(arg, set_names):
                        yield self._flag(module, arg)

    def _flag(self, module: ModuleContext, node: ast.AST) -> Finding:
        return self.finding(
            module, node.lineno, node.col_offset,
            "iterating a set in an order-sensitive position; set order is "
            "not part of the language contract (and varies with "
            "PYTHONHASHSEED for str/tuple elements) — wrap in sorted()")


@rule
class IdOrderingRule(Rule):
    """D104: no ordering or tie-breaking by object identity."""

    rule_id = "D104"
    summary = ("id()-based ordering/tie-breaking; object addresses vary "
               "run to run — order by a stable field instead")

    _ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == "key" \
                            and self._key_uses_id(keyword.value):
                        yield self.finding(
                            module, keyword.value.lineno,
                            keyword.value.col_offset,
                            "sort/ordering key built on id(); object "
                            "addresses differ between runs — key on a "
                            "stable identifier (flow_id, switch_id, name)")
            elif (isinstance(node, ast.Compare)
                    and any(isinstance(op, self._ORDER_OPS)
                            for op in node.ops)
                    and any(self._is_id_call(side) for side in
                            (node.left, *node.comparators))):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "ordering comparison of id() values; object "
                    "addresses differ between runs — compare stable "
                    "identifiers instead")

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id")

    def _key_uses_id(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        if isinstance(node, ast.Lambda):
            return any(self._is_id_call(sub) for sub in ast.walk(node.body))
        return False
