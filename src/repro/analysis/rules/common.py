"""AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: Nodes that open a new binding scope; their bodies are excluded when
#: analysing the enclosing scope.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def scope_walk(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root``'s subtree without descending into nested scopes.

    The root itself is yielded even if it is a function; nested
    function/lambda subtrees are skipped entirely (a rule that cares
    about them recurses explicitly via :func:`functions_in`).
    """
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def nested_scopes(root: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda]:
    """Immediate nested function/lambda scopes within ``root``'s scope."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                yield child
            else:
                stack.append(child)


def position(node: ast.AST) -> tuple[int, int]:
    """(line, col) ordering key; nodes without one sort first."""
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def call_name(node: ast.Call) -> str | None:
    """The terminal name of a call target (``a.b.c()`` -> ``"c"``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def contains_float_or_division(node: ast.AST,
                               converters: tuple[str, ...]) -> ast.AST | None:
    """First float literal or true-division inside ``node``.

    Subtrees rooted at calls to ``converters`` (``int``, ``round``,
    ``usec`` ...) are treated as producing integers and not descended
    into.
    """
    if isinstance(node, ast.Call) and call_name(node) in converters:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return node
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return node
    for child in ast.iter_child_nodes(node):
        hit = contains_float_or_division(child, converters)
        if hit is not None:
            return hit
    return None
