"""Discrete-event simulation substrate (engine, clock units, RNG streams)."""

from repro.sim.engine import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    Engine,
    SimulationError,
    msec,
    usec,
)
from repro.sim.randomness import RandomStreams, derive_seed

__all__ = [
    "Engine",
    "SimulationError",
    "RandomStreams",
    "derive_seed",
    "NANOSECOND",
    "MICROSECOND",
    "MILLISECOND",
    "SECOND",
    "usec",
    "msec",
]
