"""Discrete-event simulation engine.

The engine is a classic event-calendar simulator: a binary heap of
``(time, sequence, callback, argument)`` tuples, an integer-nanosecond
clock, and a run loop.  Integer time avoids floating-point drift when
summing many small per-hop delays, which matters because the paper's
latency budget is built from 1 microsecond propagation delays and
sub-microsecond serialization times.

The engine is deliberately minimal; all protocol behaviour lives in the
network objects (:mod:`repro.net`, :mod:`repro.vnet`, :mod:`repro.core`)
that schedule events on it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

# Unit helpers: all simulation timestamps are integers in nanoseconds.
NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Engine:
    """An event-driven simulation engine with an integer nanosecond clock.

    Events are callbacks scheduled at absolute or relative times.  Ties
    are broken by insertion order, making runs fully deterministic for a
    fixed seed and fixed scheduling order.

    Example:
        >>> engine = Engine()
        >>> fired = []
        >>> engine.schedule(10, fired.append, "a")
        >>> engine.schedule(5, fired.append, "b")
        >>> engine.run()
        >>> fired
        ['b', 'a']
    """

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._now = 0
        self._events_processed = 0
        self._stopped = False

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the calendar."""
        return len(self._queue)

    def schedule(self, at: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``at``.

        Raises:
            SimulationError: if ``at`` is before the current time.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event at t={at} before current time t={self._now}"
            )
        heapq.heappush(self._queue, (at, self._sequence, callback, args))
        self._sequence += 1

    def schedule_after(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.schedule(self._now + delay, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Args:
            until: stop once the next event is strictly later than this
                time (the clock is left at ``until``).
            max_events: safety valve; stop after this many events.

        Returns:
            The simulation time when the run loop exited.
        """
        self._stopped = False
        queue = self._queue
        processed_limit = None
        if max_events is not None:
            processed_limit = self._events_processed + max_events
        while queue and not self._stopped:
            at, _seq, callback, args = queue[0]
            if until is not None and at > until:
                self._now = until
                return self._now
            heapq.heappop(queue)
            self._now = at
            callback(*args)
            self._events_processed += 1
            if processed_limit is not None and self._events_processed >= processed_limit:
                break
        if until is not None and not queue and self._now < until:
            self._now = until
        return self._now
