"""Discrete-event simulation engine.

The engine is a classic event-calendar simulator: a binary heap of
``(time, sequence, callback, argument)`` tuples, an integer-nanosecond
clock, and a run loop.  Integer time avoids floating-point drift when
summing many small per-hop delays, which matters because the paper's
latency budget is built from 1 microsecond propagation delays and
sub-microsecond serialization times.

Cancellable timers (retransmission timeouts, health probes) live in a
hashed timer wheel beside the heap.  Transports re-arm their RTO on
every ACK; pushing each of those arms through the heap leaves a trail
of dead entries that the run loop must pop and discard one by one.  The
wheel gives O(1) arm and cancel, and cancelled timers are dropped in
bulk when their bucket is swept, so they never churn the main heap.
Live timers still fire in exact ``(time, sequence)`` order relative to
heap events, keeping runs bit-deterministic.

The engine is deliberately minimal; all protocol behaviour lives in the
network objects (:mod:`repro.net`, :mod:`repro.vnet`, :mod:`repro.core`)
that schedule events on it.
"""

from __future__ import annotations

import gc
import heapq
from collections.abc import Callable
from typing import Any

# Unit helpers: all simulation timestamps are integers in nanoseconds.
NANOSECOND = 1
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000

#: Timer-wheel geometry: 512 slots of ~65 us cover a 33 ms horizon in
#: one revolution, matching the RTO range (100 us .. 64 ms) so a timer
#: is examined at most a couple of times before it fires or dies.
_WHEEL_SLOT_NS = 1 << 16
_WHEEL_SLOTS = 512


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Timer:
    """A cancellable timer handle returned by :meth:`Engine.schedule_timer`.

    ``deadline``/``seq`` form the same ordering key heap events use, so
    a fired timer interleaves with same-time events exactly as if it had
    been pushed onto the heap.  Timers order by that key directly, which
    lets the engine's due list be a heap of Timer objects.
    """

    __slots__ = ("deadline", "seq", "callback", "args", "alive")

    def __init__(self, deadline: int, seq: int,
                 callback: Callable[..., None], args: tuple) -> None:
        self.deadline = deadline
        self.seq = seq
        self.callback = callback
        self.args = args
        self.alive = True

    def __lt__(self, other: Timer) -> bool:
        if self.deadline != other.deadline:
            return self.deadline < other.deadline
        return self.seq < other.seq


class PeriodicTask:
    """Handle for a repeating callback armed by :meth:`Engine.schedule_periodic`.

    The task re-schedules itself after every firing; :meth:`cancel`
    stops the cycle (the pending event becomes a no-op rather than
    being removed from the calendar, mirroring timer lazy deletion).
    """

    __slots__ = ("period_ns", "callback", "args", "cancelled", "fired")

    def __init__(self, period_ns: int, callback: Callable[..., None],
                 args: tuple) -> None:
        self.period_ns = period_ns
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = 0

    def cancel(self) -> None:
        """Stop the cycle; the already-scheduled firing is skipped."""
        self.cancelled = True


class Engine:
    """An event-driven simulation engine with an integer nanosecond clock.

    Events are callbacks scheduled at absolute or relative times.  Ties
    are broken by insertion order, making runs fully deterministic for a
    fixed seed and fixed scheduling order.

    Example:
        >>> engine = Engine()
        >>> fired = []
        >>> engine.schedule(10, fired.append, "a")
        >>> engine.schedule(5, fired.append, "b")
        >>> engine.run()
        >>> fired
        ['b', 'a']
    """

    def __init__(self, wheel_slots: int = _WHEEL_SLOTS) -> None:
        if wheel_slots < 1:
            raise SimulationError(f"wheel_slots must be positive, got {wheel_slots}")
        self._queue: list[tuple[int, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._now = 0
        self._events_processed = 0
        self._stopped = False
        # Hashed timer wheel (lazy deletion, swept in bucket order).
        # The slot count scales with expected concurrent timers — large
        # topologies pass a wider wheel so buckets stay short — without
        # affecting event order, which is always (deadline, seq).
        self._wheel_slots = wheel_slots
        self._wheel: list[list[Timer]] = [[] for _ in range(wheel_slots)]
        self._live_timers = 0
        #: Absolute slot index up to which buckets have been swept.
        self._wheel_cursor = 0
        #: Lower bound on the earliest live timer deadline; lets the run
        #: loop skip the wheel entirely while no timer can be due.
        self._timer_bound = 0
        self._due: list[Timer] = []

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (timer firings included)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting (calendar + live timers)."""
        return len(self._queue) + self._live_timers

    @property
    def pending_timers(self) -> int:
        """Number of armed (not cancelled, not fired) timers."""
        return self._live_timers

    def schedule(self, at: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``at``.

        Raises:
            SimulationError: if ``at`` is before the current time.
        """
        if at < self._now:
            raise SimulationError(
                f"cannot schedule event at t={at} before current time t={self._now}"
            )
        heapq.heappush(self._queue, (at, self._sequence, callback, args))
        self._sequence += 1

    def schedule_after(self, delay: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        A non-negative delay from ``now`` can never land in the past,
        so this pushes straight onto the heap without the past-time
        check :meth:`schedule` performs — it is the per-packet hot path
        (every link delivery goes through here).
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        heapq.heappush(self._queue,
                       (self._now + delay, self._sequence, callback, args))
        self._sequence += 1

    # ------------------------------------------------------------------
    # periodic callbacks
    # ------------------------------------------------------------------
    def schedule_periodic(self, period_ns: int, callback: Callable[..., None],
                          *args: Any) -> PeriodicTask:
        """Run ``callback(*args)`` every ``period_ns``, starting one
        period from now.

        Long-horizon observers (streaming metric windows, always-on
        invariant sweeps) use this instead of hand-rolled re-scheduling.
        Returns a :class:`PeriodicTask`; ``cancel()`` stops the cycle —
        including from inside the callback itself.
        """
        if period_ns <= 0:
            raise SimulationError(f"period must be positive, got {period_ns}")
        task = PeriodicTask(period_ns, callback, args)
        self.schedule_after(period_ns, self._fire_periodic, task)
        return task

    def _fire_periodic(self, task: PeriodicTask) -> None:
        if task.cancelled:
            return
        task.fired += 1
        task.callback(*task.args)
        if not task.cancelled:
            self.schedule_after(task.period_ns, self._fire_periodic, task)

    # ------------------------------------------------------------------
    # cancellable timers (hashed timer wheel)
    # ------------------------------------------------------------------
    def schedule_timer(self, delay: int, callback: Callable[..., None],
                       *args: Any) -> Timer:
        """Arm a cancellable timer ``delay`` ns from now.

        Returns a :class:`Timer` handle for :meth:`cancel_timer`.  Use
        this for timers that are usually cancelled or re-armed before
        firing (retransmission timeouts, probe timers): arm and cancel
        are O(1) and dead timers never pass through the event heap.
        """
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        deadline = self._now + delay
        timer = Timer(deadline, self._sequence, callback, args)
        self._sequence += 1
        slot = deadline // _WHEEL_SLOT_NS
        if slot < self._wheel_cursor:
            # Deadline falls in the already-swept part of the current
            # bucket sweep window: deliver via the due heap directly.
            heapq.heappush(self._due, timer)
        else:
            self._wheel[slot % self._wheel_slots].append(timer)
        if self._live_timers == 0 or deadline < self._timer_bound:
            self._timer_bound = deadline
        self._live_timers += 1
        return timer

    def cancel_timer(self, timer: Timer | None) -> None:
        """Disarm ``timer``; a no-op for None, fired or cancelled timers."""
        if timer is not None and timer.alive:
            timer.alive = False
            self._live_timers -= 1

    def _sweep_wheel(self, limit: int) -> None:
        """Collect timers with ``deadline < limit`` into the due list.

        Sweeps buckets from the cursor up to ``limit``'s slot, dropping
        cancelled timers and keeping not-yet-due ones (future wheel
        revolutions) in place.  Also tightens the timer bound so the
        run loop can skip the wheel until the next candidate deadline.
        """
        wheel = self._wheel
        due = self._due
        limit_slot = limit // _WHEEL_SLOT_NS
        first = self._wheel_cursor
        # One full revolution visits every bucket; going further would
        # revisit them.
        last = min(limit_slot, first + self._wheel_slots - 1)
        next_bound = None
        for abs_slot in range(first, last + 1):
            bucket = wheel[abs_slot % self._wheel_slots]
            if not bucket:
                continue
            keep = None
            for timer in bucket:
                if not timer.alive:
                    continue
                if timer.deadline < limit:
                    due.append(timer)
                else:
                    if keep is None:
                        keep = []
                    keep.append(timer)
                    if next_bound is None or timer.deadline < next_bound:
                        next_bound = timer.deadline
            bucket.clear()
            if keep:
                bucket.extend(keep)
        self._wheel_cursor = last if last > first else first
        if due:
            heapq.heapify(due)
            self._timer_bound = due[0].deadline
        elif next_bound is not None:
            self._timer_bound = next_bound
        else:
            # No live timer found within the swept window; the earliest
            # possible deadline is the start of the unswept region.
            self._timer_bound = max(limit, self._wheel_cursor * _WHEEL_SLOT_NS)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Args:
            until: stop once the next event is strictly later than this
                time (the clock is left at ``until``).
            max_events: safety valve; stop after this many events.

        Returns:
            The simulation time when the run loop exited.

        Automatic garbage collection is paused while the loop runs (and
        restored on exit): per-event garbage — calendar tuples, expired
        packets — is reference-counted away immediately, so the cyclic
        collector's periodic scans only add latency.  Anything cyclic
        produced during a run is reclaimed by the first collection after
        the loop returns.
        """
        self._stopped = False
        # Bind the loop's hot names to locals: each lookup saved here is
        # saved once per simulated event.
        queue = self._queue
        due = self._due
        heappop = heapq.heappop
        processed = self._events_processed
        processed_limit = None
        if max_events is not None:
            processed_limit = processed + max_events
        exhausted = False
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            heappush = heapq.heappush
            while not self._stopped:
                if queue:
                    # Fast path: pop optimistically; nothing on the due
                    # list and every live timer provably fires after the
                    # heap head (``_timer_bound`` is a lower bound), so
                    # the head event runs without consulting the wheel.
                    # The rare slow path pushes the event back — its
                    # (time, seq) key is unique, so the heap order is
                    # restored exactly.
                    head = heappop(queue)
                    at = head[0]
                    if not due and (not self._live_timers
                                    or self._timer_bound > at):
                        if until is not None and at > until:
                            heappush(queue, head)
                            self._now = until
                            self._events_processed = processed
                            return until
                        self._now = at
                        head[2](*head[3])
                        processed += 1
                        if processed_limit is not None \
                                and processed >= processed_limit:
                            break
                        continue
                    heappush(queue, head)
                    head = queue[0]
                else:
                    head = None
                if self._live_timers or due:
                    # Make every timer that must fire before (or tied
                    # after) the heap head visible on the due list, then
                    # pick the earlier of the two by the shared
                    # (time, seq) key.
                    sweep_limit = head[0] + 1 if head is not None else (
                        until + 1 if until is not None
                        else self._timer_bound + _WHEEL_SLOT_NS)
                    if not due and self._timer_bound < sweep_limit:
                        self._sweep_wheel(sweep_limit)
                        while due and not due[0].alive:
                            heappop(due)
                    if due:
                        timer = due[0]
                        if not timer.alive:
                            heappop(due)
                            continue
                        if head is None or (timer.deadline, timer.seq) < head[:2]:
                            at = timer.deadline
                            if until is not None and at > until:
                                self._now = until
                                self._events_processed = processed
                                return until
                            heappop(due)
                            timer.alive = False
                            self._live_timers -= 1
                            self._now = at
                            timer.callback(*timer.args)
                            processed += 1
                            if processed_limit is not None \
                                    and processed >= processed_limit:
                                break
                            continue
                if head is None:
                    if self._live_timers and until is None:
                        # Heap empty and nothing due within the swept
                        # window, but live timers remain in later wheel
                        # revolutions.  Keep sweeping forward — the
                        # timer bound advances monotonically each pass,
                        # so the earliest timer comes due in finitely
                        # many sweeps.  (With `until` set this cannot
                        # happen: the sweep to `until + 1` visits every
                        # bucket, so an empty due list proves all
                        # remaining timers are later than `until`.)
                        continue
                    exhausted = True
                    break
                at = head[0]
                if until is not None and at > until:
                    self._now = until
                    self._events_processed = processed
                    return until
                _at, _seq, callback, args = heappop(queue)
                self._now = at
                callback(*args)
                processed += 1
                if processed_limit is not None and processed >= processed_limit:
                    break
        finally:
            if gc_was_enabled:
                gc.enable()
        self._events_processed = processed
        if until is not None and self._now < until \
                and (exhausted or (not queue and not due and not self._live_timers)):
            self._now = until
        return self._now
