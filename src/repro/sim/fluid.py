"""Hybrid-fidelity fluid fast path: analytic advance of warm flows.

Once a flow's mapping is resolved end-to-end — every on-path cache
entry warm, no pending misdelivery tags — its packets are perfectly
predictable: each one takes the same route, refreshes the same cache
entries idempotently, and contributes the same per-packet byte/latency
deltas.  The :class:`FluidScheduler` exploits this by *walking* one
real probe packet per round through the actual data plane (real links,
real switch handler, real cache code), recording every counter effect
the walk applied, and then — if and only if the walk was provably
side-effect-free beyond idempotent refreshes — replaying those deltas
``round_size - 1`` times with a single timer event instead of
simulating each packet.

Exactness contract (see docs/simulator.md "Hybrid fidelity"):

* every per-round probe is a *real* packet: cache lookups, access-bit
  refreshes, learning-RNG draws, spillover pickups all execute in the
  production code paths;
* a round is replayed analytically only when the probe's walk was
  CLEAN: no cache insertion/eviction/invalidation, no scheme control
  traffic (learning/invalidation/promotion/spillover), no misdelivery
  tag, and delivery at the expected destination host;
* learning-RNG draws are the one stateful effect that *is* replayed
  rather than escalated: the probe records every draw site through
  ``SwitchV2P.learning_draw_observer``, each analytic packet's draws
  are queued at the packet's virtual send time on a global heap, and
  every fluid boundary (round begin/commit/escalation) replays the
  due entries in virtual-time order across *all* flows
  (``replay_learning_draw``), so the shared RNG stream advances in
  the same global order as in packet mode — a replayed draw that
  triggers emits real learning traffic and can itself escalate flows
  through the cache observer;
* a flow whose (src, dst) pair has walked clean twice in a row gets
  its path signature (the set of on-path switches) memoized; while
  the signature stays valid the flow may arm rounds *without*
  re-walking a probe (at least every ``probe_every``-th round still
  probes).  This is exact because every event that could dirty a
  clean path — cache mutation, fabric fault, link-loss configuration,
  VM migration/retirement, gateway change — flows through the
  escalation entry points (the W402 lint premise), and each of those
  wipes the memo wholesale;
* any cache mutation anywhere on an adopted flow's path — from its own
  probe or from *other* traffic — escalates the flow back to packet
  level before the mutation's effects could be misattributed
  (:meth:`FluidScheduler.escalate_flow` and the ``on_mutate`` cache
  observer installed via ``CachingScheme.set_cache_observer``);
* VM migration/retirement, gateway failover/commission, and fabric
  fault transitions escalate via hooks in ``vnet.network`` and
  ``Fabric.note_fault``.

Cross-flow link contention is modeled fluidly: when two or more
adopted flows share a link, a max-min fair-share allocation
(iterative water-filling over the shared links) stretches each
reliable flow's round interval to its fair rate.  The allocation is
recomputed lazily — only when the active fluid set changes (flow
arrival, departure, escalation) — and never tightens an interval
below the probe-measured isolated pacing, so a flow alone on its
path behaves exactly as before.  Cache metrics are timing-
independent; contention only refines FCT fidelity.

Approximations (documented, bounded): fluid packets do not advance
link ``_busy_until`` (no queueing contribution, no tail drops),
queueing growth from packet-mode cross-traffic is only observed at
the next real probe (at most ``probe_every`` rounds of blindness),
and mid-round escalation rounds the analytically-delivered count to
the nearest whole packet.

Everything in this module that mutates simulator state (packets,
links, switches, caches, transports, collector counters) lives in
functions named ``_walk*`` / ``_commit*`` / ``_escalate*`` /
``_adopt*`` / ``_reinject*`` — the repro-lint D110 rule enforces this
for any module that declares ``FLUID_PATH_MODULE = True``.
"""

from __future__ import annotations

from contextlib import contextmanager
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any

from repro.net.addresses import UNRESOLVED
from repro.net.node import Switch
from repro.net.packet import PacketKind
from repro.perf import PhaseTimer
from repro.vnet.hypervisor import Host

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.packet import Packet
    from repro.vnet.network import VirtualNetwork

#: Marks this module as fluid-path code for the D110 lint rule.
FLUID_PATH_MODULE = True

_DATA = PacketKind.DATA
_ACK = PacketKind.ACK

# Walk results for a single packet.
_DELIVERED = 0
_CONSUMED = 1
_DIVERTED = 2

# Round-probe outcomes.
_ST_CLEAN = 0
_ST_MUTATED = 1
_ST_DATA_DIVERTED = 2
_ST_DATA_CONSUMED = 3
_ST_ACK_DIVERTED = 4
_ST_ACK_CONSUMED = 5

_RELIABLE = 0
_UDP = 1

#: Forwarding-loop guard, mirroring the oracle hop bound.
_HOP_CAP = 32

#: Collector counters a clean walk may touch; diffed and replayed.
_COLLECTOR_INTS = (
    "gateway_arrivals",
    "learning_packets",
    "invalidation_packets",
    "spillover_inserts",
    "promotions",
    "deliveries",
    "delivered_hops",
    "reorder_events",
    "packet_latency_sum_ns",
    "packet_latency_count",
    "delivered_payload_bytes",
    "gateway_unavailable_drops",
)

#: Scheme counters whose movement marks a walk as stateful (control
#: traffic was emitted or an RNG draw happened): never replayed.
_SCHEME_DIRTY = (
    "learning_packets_sent",
    "invalidation_packets_sent",
    "spillovers_reinserted",
    "promotions_sent",
    "promotions_admitted",
    "rng_draws",
)

#: Cache-stat movements that are idempotent refreshes (replayable)...
_CACHE_REPLICABLE = ("lookups", "hits", "rejections")
#: ...versus real state changes (escalate, never replay).
_CACHE_MUTATING = ("insertions", "evictions", "invalidations")


class _WalkContext:
    """Bookkeeping for one probe walk (data packet + optional ACK)."""

    __slots__ = (
        "deltas",
        "counter_deltas",
        "switches",
        "links",
        "data_links",
        "wire_bytes",
        "bottleneck_ns",
        "collector_before",
        "hits_before",
        "first_hits_before",
        "scheme_before",
        "cache_before",
        "mutated",
        "draw_sites",
    )

    def __init__(self) -> None:
        #: ``(obj, attr, amount)`` integer-counter effects this walk
        #: applied; replaying a round applies each ``times`` more.
        self.deltas: list[tuple[Any, str, int]] = []
        #: Same for ``collections.Counter`` entries: ``(counter, key, amount)``.
        self.counter_deltas: list[tuple[Any, Any, int]] = []
        self.switches: set[int] = set()
        #: Links traversed so far (data walk first, then ACK walk).
        self.links: list[Link] = []
        #: The data packet's path links, frozen before the ACK walk —
        #: the contention model allocates fair shares over these.
        self.data_links: tuple[Link, ...] = ()
        #: Wire size of the data probe (fair-share demand numerator).
        self.wire_bytes = 0
        self.bottleneck_ns = 0
        self.collector_before: tuple[int, ...] = ()
        self.hits_before: dict[Any, int] = {}
        self.first_hits_before: dict[Any, int] = {}
        self.scheme_before: tuple[int, ...] = ()
        #: cache stats object -> 6-tuple snapshot taken before the
        #: first handler call at that switch.
        self.cache_before: dict[Any, tuple[int, ...]] = {}
        self.mutated = False
        #: ``(switch, template)`` learning-RNG draw sites the probe hit,
        #: in draw order; commits replay each site per analytic packet.
        self.draw_sites: list[tuple[Any, Any]] = []


class _DrawTemplate:
    """The packet fields a learning-RNG draw site reads, frozen.

    Every packet of a warm flow presents identical values at a given
    draw site, so one capture stands in for the whole round's replays
    (see ``SwitchV2P.replay_learning_draw``).
    """

    __slots__ = ("outer_src", "dst_vip", "outer_dst")

    def __init__(self, outer_src: int, dst_vip: int, outer_dst: int) -> None:
        self.outer_src = outer_src
        self.dst_vip = dst_vip
        self.outer_dst = outer_dst


class _FluidFlow:
    """Per-flow fluid state while the scheduler owns the flow."""

    __slots__ = (
        "flow_id",
        "kind",
        "sender",
        "receiver",
        "record",
        "src_vip",
        "dst_vip",
        "payload",
        "base",
        "span",
        "window",
        "sent",
        "round_size",
        "interval",
        "iso_interval",
        "share_interval",
        "t0",
        "timer",
        "probed",
        "skips_left",
        "sig",
        "links",
        "wire_bytes",
        "round_token",
        "deltas",
        "counter_deltas",
        "switch_ids",
        "draw_sites",
    )

    def __init__(self, flow_id: int, kind: int, sender: Any, receiver: Any,
                 record: Any, src_vip: int, dst_vip: int, payload: int,
                 base: int, span: int, window: int) -> None:
        self.flow_id = flow_id
        self.kind = kind
        self.sender = sender
        self.receiver = receiver
        self.record = record
        self.src_vip = src_vip
        self.dst_vip = dst_vip
        self.payload = payload
        #: First sequence number owned by the fluid scheduler.
        self.base = base
        #: Number of packets to advance analytically; the tail
        #: (``total - base - span``) always runs at packet level so
        #: completion, FCT, and the final partial payload stay exact.
        self.span = span
        self.window = window
        #: Packets accounted so far (probes + analytic replays).
        self.sent = 0
        self.round_size = 0
        self.interval = 1
        #: Probe-measured isolated pacing (no cross-flow contention).
        self.iso_interval = 1
        #: Fair-share pacing under contention; 0 = unconstrained
        #: (fall back to ``iso_interval``).
        self.share_interval = 0
        self.t0 = 0
        self.timer = None
        #: Whether the current round's first packet was a real probe
        #: (False for rounds armed from a memoized-clean signature).
        self.probed = True
        #: Probe-free rounds remaining before the next forced probe.
        self.skips_left = 0
        #: Path signature of the last clean walk (frozen switch set).
        self.sig: frozenset[int] | None = None
        #: Data-path links of the last clean walk (contention model).
        self.links: tuple[Link, ...] = ()
        #: Wire bytes per data packet (fair-share demand numerator).
        self.wire_bytes = 0
        #: Liveness token of the queued draws of the current round:
        #: ``[alive, credited_cutoff_ns]`` (see ``_queue_draws``).
        self.round_token: list | None = None
        self.deltas: list[tuple[Any, str, int]] = []
        self.counter_deltas: list[tuple[Any, Any, int]] = []
        self.switch_ids: set[int] = set()
        self.draw_sites: list[tuple[Any, Any]] = []


class FluidScheduler:
    """Advances warm flows analytically between cache-relevant events.

    Constructed by :class:`~repro.vnet.network.VirtualNetwork` when
    ``NetworkConfig.fidelity == "hybrid"``; ``network.fluid`` is None
    in pure-packet mode and nothing in this module runs.
    """

    #: Minimum analytically-advanceable packets beyond the window for a
    #: flow to be worth adopting.
    min_span = 32
    #: Adoption attempts per flow before giving up (flows whose path
    #: crosses a gateway ToR draw learning RNG per packet and can
    #: never walk clean; this caps the retry cost).
    max_attempts = 8
    #: Consecutive clean probes a (src, dst) VIP pair must produce
    #: before its path signature is memoized for probe skipping.
    warmup_clean_target = 2
    #: Real-packet windows batched between adoption retries while a
    #: pair is still warming up: cold caches mutate on most packets,
    #: so re-probing every other window just burns walks.  Warmup
    #: escalations do not charge the flow's adoption-attempt budget.
    warmup_batch_windows = 4
    #: Dirty warmup probes tolerated per pair before escalations start
    #: charging the adoption-attempt budget again (bounds pairs that
    #: never warm, e.g. under constant conflict eviction).
    warmup_probe_cap = 4
    #: A flow with a memoized-clean path signature re-walks a real
    #: probe at least every ``probe_every``-th round.
    probe_every = 8

    def __init__(self, network: VirtualNetwork) -> None:
        self.network = network
        self.engine = network.engine
        self.collector = network.collector
        self.scheme = network.scheme
        #: Swapped for the caller's shared timer by the runner so the
        #: fluid phase shows up in ``python -m repro profile``.
        self.perf = PhaseTimer()
        # Escalation bookkeeping (surfaced via RunResult and profile).
        self.adoptions = 0
        self.escalations = 0
        self.escalations_by_reason: dict[str, int] = {}
        self.rounds = 0
        #: Packets advanced analytically (never individually simulated).
        self.fluid_packets = 0
        self.adoption_rejects = 0
        #: Rounds armed without a probe walk (memoized-clean paths).
        self.probe_skips = 0
        self._flows: dict[int, _FluidFlow] = {}
        self._by_switch: dict[int, set[int]] = {}
        self._by_vip: dict[int, set[int]] = {}
        #: Warmup ledger: ``(src_vip, dst_vip) -> (clean_streak,
        #: dirty_probes)``; drives escalation batching and decides when
        #: a pair's path signature becomes memoizable.
        self._warmup: dict[tuple[int, int], tuple[int, int]] = {}
        #: Path signatures proven clean ``warmup_clean_target`` times
        #: in a row; wiped wholesale by every escalation entry point.
        self._clean_sigs: set[frozenset[int]] = set()
        #: Fair-share allocation is stale (active set changed) and must
        #: be recomputed before the next round is armed.
        self._alloc_dirty = False
        #: Global virtual-time heap of pending analytic learning
        #: draws: ``(due_ns, seq, switch, template, round_token)``.
        self._draw_heap: list = []
        self._draw_seq = 0
        self._draining = False
        self._walking = False
        self._walking_ctx: _WalkContext | None = None
        self._deferred: list[int] = []
        self._ready: bool | None = None
        self._phase_depth = 0
        self._install_hooks()

    @contextmanager
    def _fluid_phase(self):
        """Reentrant "fluid" phase timing (escalations nest in commits)."""
        if self._phase_depth:
            self._phase_depth += 1
            try:
                yield
            finally:
                self._phase_depth -= 1
            return
        self._phase_depth = 1
        try:
            with self.perf.phase("fluid"):
                yield
        finally:
            self._phase_depth = 0

    # ------------------------------------------------------------------
    # readiness + hook installation
    # ------------------------------------------------------------------
    def _install_hooks(self) -> None:
        fabric = self.network.fabric
        fabric.on_fault = self._on_fabric_fault
        attach = getattr(self.scheme, "set_cache_observer", None)
        if attach is not None:
            attach(self._observer_for)

    def ready(self) -> bool:
        """Can this scheme's flows be adopted at all?

        Requires the scheme to declare ``fluid_compatible`` and — for
        caching schemes — every cache to support ``attach_observer``
        (alternative geometries without it disable adoption wholesale
        rather than risking unobserved mutations).
        """
        if self._ready is None:
            scheme = self.scheme
            ok = bool(getattr(scheme, "fluid_compatible", False))
            caches = getattr(scheme, "caches", None)
            if ok and caches is not None:
                ok = all(hasattr(cache, "attach_observer")
                         for cache in caches.values())
            self._ready = ok
        return self._ready

    def _observer_for(self, switch_id: int):
        def on_mutate() -> None:
            self._on_cache_mutation(switch_id)
        return on_mutate

    def _on_cache_mutation(self, switch_id: int) -> None:
        if self._walking:
            # A probe's own walk mutated a cache: mark the walk dirty
            # and defer escalating co-located flows until the walk
            # finishes (escalation re-enters the transports, which
            # must not interleave with walk bookkeeping).
            ctx = self._walking_ctx
            if ctx is not None:
                ctx.mutated = True
            self._deferred.append(switch_id)
            return
        self.escalate_switch(switch_id, "cache-mutation")

    def _on_fabric_fault(self) -> None:
        self.escalate_all("fault")

    # ------------------------------------------------------------------
    # escalation entry points (network/fault hooks)
    # ------------------------------------------------------------------
    # Every entry point wipes the clean-signature memo before anything
    # else: the triggering event may have dirtied any memoized path —
    # including paths of flows not currently registered — and probe
    # skipping is only exact while no such event occurred since the
    # last real probe.
    def escalate_switch(self, switch_id: int, reason: str) -> None:
        self._clean_sigs = set()
        flow_ids = self._by_switch.get(switch_id)
        if not flow_ids:
            return
        for flow_id in list(flow_ids):
            flow = self._flows.get(flow_id)
            if flow is not None:
                self._escalate(flow, reason)

    def escalate_vip(self, vip: int, reason: str = "vm-migration") -> None:
        self._clean_sigs = set()
        flow_ids = self._by_vip.get(vip)
        if not flow_ids:
            return
        for flow_id in list(flow_ids):
            flow = self._flows.get(flow_id)
            if flow is not None:
                self._escalate(flow, reason)

    def escalate_all(self, reason: str) -> None:
        self._clean_sigs = set()
        for flow in list(self._flows.values()):
            self._escalate(flow, reason)

    def escalate_flow(self, flow_id: int, reason: str) -> None:
        self._clean_sigs = set()
        flow = self._flows.get(flow_id)
        if flow is not None:
            self._escalate(flow, reason)

    def _process_deferred(self) -> None:
        while self._deferred:
            self.escalate_switch(self._deferred.pop(), "cache-mutation")

    # ------------------------------------------------------------------
    # adoption
    # ------------------------------------------------------------------
    def adopt_reliable(self, sender: Any) -> None:
        """Take over a drained, max-cwnd reliable flow.

        Called by ``ReliableSender.on_ack`` once the fluid-wait drain
        completes (``snd_una == snd_next`` and every sent packet has
        been acknowledged exactly once).  Either the flow is adopted
        (round timer armed, sender dormant) or the sender is restored
        and resumed before this returns — the caller does nothing
        either way.
        """
        with self._fluid_phase():
            self._adopt_reliable(sender)

    def _adopt_reliable(self, sender: Any) -> None:
        record = sender.record
        receiver = sender.fluid_receiver
        window = int(sender.config.max_cwnd)
        base = sender.snd_next
        span = sender.total_packets - base - window
        if (not self.ready() or receiver is None
                or span < self.min_span
                or receiver.rcv_next != base):
            self._escalate_resume_reliable(sender, base, 0)
            return
        flow = _FluidFlow(
            record.flow_id, _RELIABLE, sender, receiver, record,
            record.src_vip, record.dst_vip, sender.config.mss_bytes,
            base, span, window,
        )
        sender._fluid_active = True
        if self._begin_round(flow, adopting=True):
            self.adoptions += 1
        else:
            self.adoption_rejects += 1

    def adopt_udp(self, sender: Any) -> bool:
        """Take over a paced UDP flow from the top of ``_send_next``.

        Returns True when the fluid path handled this tick's send
        (either by adopting the flow or by walking the probe and
        rescheduling the sender); False when the flow is not eligible
        and the sender should transmit normally.
        """
        if not self.ready():
            return False
        if sender._fluid_attempts >= self.max_attempts:
            return False
        if sender.next_seq < sender._fluid_retry_seq:
            return False
        receiver = sender.fluid_receiver
        if receiver is None:
            return False
        record = sender.record
        base = sender.next_seq
        # Reserve the final (possibly partial) packet for packet level.
        span = sender.total_packets - base - 1
        if span < self.min_span:
            return False
        with self._fluid_phase():
            flow = _FluidFlow(
                record.flow_id, _UDP, sender, receiver, record,
                record.src_vip, record.dst_vip, sender.mss_bytes,
                base, span, 128,
            )
            if self._begin_round(flow, adopting=True):
                self.adoptions += 1
            else:
                self.adoption_rejects += 1
        return True

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def _begin_round(self, flow: _FluidFlow, adopting: bool = False) -> bool:
        """Walk one probe and, if clean, arm an analytic round.

        Returns True when a round was armed; False when the probe was
        dirty and the flow was handed back to packet level (the
        transport is already restored and running on return).

        A flow whose path signature is memoized clean skips the probe
        walk entirely (bounded by ``probe_every``) and replays the
        previous probe's deltas for the whole round.
        """
        self._commit_due_draws()
        if not adopting and flow.flow_id not in self._flows:
            # A drained draw triggered a mutation that escalated this
            # very flow; its transport is already restored and running.
            return False
        if (not adopting and flow.skips_left > 0 and flow.deltas
                and flow.sig in self._clean_sigs):
            flow.skips_left -= 1
            self.probe_skips += 1
            self._arm_round(flow, probed=False)
            return True
        status, ctx, rtt = self._walk_round(flow)
        if status == _ST_CLEAN:
            flow.deltas = ctx.deltas
            flow.counter_deltas = ctx.counter_deltas
            flow.draw_sites = ctx.draw_sites
            flow.links = ctx.data_links
            flow.wire_bytes = ctx.wire_bytes
            flow.sig = frozenset(ctx.switches)
            if flow.kind == _RELIABLE:
                flow.iso_interval = max(1, rtt // flow.window,
                                        ctx.bottleneck_ns)
            else:
                flow.iso_interval = flow.sender.gap_ns
            if adopting:
                self._register(flow, ctx.switches)
            elif not ctx.switches <= flow.switch_ids:
                self._register_switches(flow, ctx.switches)
            key = (flow.src_vip, flow.dst_vip)
            streak, dirty = self._warmup.get(key, (0, 0))
            self._warmup[key] = (streak + 1, dirty)
            if streak + 1 >= self.warmup_clean_target:
                self._clean_sigs.add(flow.sig)
                flow.skips_left = self.probe_every - 1
            self._arm_round(flow, probed=True)
            self._process_deferred()
            return True
        # Dirty probe: hand the flow back.  The probe packet is real
        # and already accounted (walked to completion, re-injected into
        # the live simulation, or consumed with drop accounting).
        if status == _ST_MUTATED:
            # Data (and ACK, for reliable) fully walked: the probe
            # behaved exactly like a packet-mode packet.
            flow.sent += 1
            inflight = 0
            reason = "probe-mutated"
        elif status == _ST_DATA_DIVERTED:
            inflight = 1
            reason = "probe-diverted"
        elif status == _ST_DATA_CONSUMED:
            inflight = 1
            reason = "probe-consumed"
        elif status == _ST_ACK_DIVERTED:
            inflight = 1
            reason = "ack-diverted"
        else:
            inflight = 1
            reason = "ack-consumed"
        warming = False
        if status == _ST_MUTATED:
            # Cold-start signature: the pair's caches are still
            # populating.  Reset the clean streak, and while the dirty-
            # probe cap holds, batch a wider stretch of real packets
            # before the next probe instead of charging the attempt
            # budget ("-warmup" escalations in the per-reason stats).
            key = (flow.src_vip, flow.dst_vip)
            streak, dirty = self._warmup.get(key, (0, 0))
            warming = (streak < self.warmup_clean_target
                       and dirty < self.warmup_probe_cap)
            self._warmup[key] = (0, dirty + 1)
            if warming:
                reason = "probe-mutated-warmup"
        if flow.sig is not None:
            self._clean_sigs.discard(flow.sig)
        if flow.kind == _UDP and status != _ST_MUTATED:
            # UDP senders track emissions, not deliveries: a diverted
            # or consumed probe was still emitted.
            flow.sent += 1
            inflight = 0
        # The probe replaced the send that was due now; the next real
        # UDP send paces one gap later.
        resume_at = self.engine._now + (flow.sender.gap_ns
                                        if flow.kind == _UDP else 0)
        self._escalate_finish(flow, reason, inflight,
                              registered=not adopting,
                              udp_resume_at=resume_at, warmup=warming)
        self._process_deferred()
        return False

    def _arm_round(self, flow: _FluidFlow, probed: bool) -> None:
        """Schedule the commit timer and queue the round's draws."""
        n = min(flow.window, flow.span - flow.sent)
        interval = self._shared_interval(flow)
        flow.round_size = n
        flow.interval = interval
        flow.t0 = self.engine._now
        flow.probed = probed
        flow.timer = self.engine.schedule_timer(n * interval,
                                                self._commit, flow)
        self.rounds += 1
        if flow.draw_sites:
            self._queue_draws(flow, n, probed)

    def _shared_interval(self, flow: _FluidFlow) -> int:
        """Per-packet pacing for the next round, contention included."""
        if self._alloc_dirty:
            self._commit_shares()
        shared = flow.share_interval
        iso = flow.iso_interval
        return shared if shared > iso else iso

    def _commit_shares(self) -> None:
        """Max-min fair shares (iterative water-filling) over shared links.

        A flow's demand is its isolated send rate (wire bytes per
        isolated interval, bytes/ns); link capacity is the line rate.
        Links carrying a single fluid flow never bind — the isolated
        interval already respects the path's bottleneck serialization
        time — so only links shared by two or more registered flows
        enter the computation, and it runs only when the active set
        changed (arrival, departure, escalation) since the last round
        was armed.  The resulting ``share_interval`` stretches a
        reliable flow's round pacing to its fair rate; UDP flows
        contribute demand but keep their application-paced interval
        (congestion costs them drops, not pacing, in packet mode).
        Cache metrics are timing-independent, so this refines FCT
        fidelity without touching the exactness contract.
        """
        self._alloc_dirty = False
        flows = list(self._flows.values())
        members: dict[Any, list[_FluidFlow]] = {}
        for flow in flows:
            flow.share_interval = 0
            if flow.iso_interval <= 0 or not flow.wire_bytes:
                continue
            for link in flow.links:
                group = members.get(link)
                if group is None:
                    members[link] = [flow]
                else:
                    group.append(flow)
        shared = [(link, group) for link, group in members.items()
                  if len(group) > 1]
        if not shared:
            return
        shared_links = frozenset(link for link, _ in shared)
        demand: dict[int, float] = {}
        on_shared: dict[int, list[Any]] = {}
        live: dict[int, _FluidFlow] = {}
        for flow in flows:
            links = [link for link in flow.links if link in shared_links]
            if links:
                fid = flow.flow_id
                demand[fid] = flow.wire_bytes / flow.iso_interval
                on_shared[fid] = links
                live[fid] = flow
        remaining = {link: link.rate_bps / 8e9 for link, _ in shared}
        while live:
            # The binding link: the smallest equal split of remaining
            # capacity among a shared link's still-unfrozen users.
            best_group = None
            best_share = 0.0
            for link, group in shared:
                users = sum(1 for flow in group if flow.flow_id in live)
                if users:
                    share = remaining[link] / users
                    if best_group is None or share < best_share:
                        best_group, best_share = group, share
            if best_group is None:
                break
            # Flows demanding less than the water level freeze at their
            # demand and release capacity; when none do, the binding
            # link's users freeze at the fair level.
            low = [fid for fid in live if demand[fid] <= best_share]
            if low:
                chosen, level = low, None
            else:
                chosen = [flow.flow_id for flow in best_group
                          if flow.flow_id in live]
                level = best_share
            for fid in chosen:
                allotted = demand[fid] if level is None else level
                flow = live.pop(fid)
                for link in on_shared[fid]:
                    left = remaining[link] - allotted
                    remaining[link] = left if left > 0.0 else 0.0
                if allotted <= 0.0 or flow.kind != _RELIABLE:
                    continue
                interval = int(flow.wire_bytes / allotted)
                if interval > flow.iso_interval:
                    flow.share_interval = interval

    def _queue_draws(self, flow: _FluidFlow, n: int, probed: bool) -> None:
        """Queue the round's analytic draws at their virtual due times.

        The probe packet (when real) drew live during its walk, so a
        probed round queues packets ``1..n-1``; a skipped round's
        packets are all analytic (``0..n-1``).  Entries replay in
        global virtual-time order across flows at the next fluid
        boundary (:meth:`_commit_due_draws`) — per-flow draw order is
        preserved, and cross-flow draws now interleave as their
        packet-mode counterparts would, instead of clustering at each
        flow's commit instant.
        """
        token = [True, -1]
        flow.round_token = token
        heap = self._draw_heap
        seq = self._draw_seq
        t0 = flow.t0
        interval = flow.interval
        sites = flow.draw_sites
        for k in range(1 if probed else 0, n):
            due = t0 + k * interval
            for switch, template in sites:
                seq += 1
                heappush(heap, (due, seq, switch, template, token))
        self._draw_seq = seq

    def _commit(self, flow: _FluidFlow) -> None:
        """Round timer fired: replay the probe's deltas for the round."""
        with self._fluid_phase():
            flow.timer = None
            n = flow.round_size
            # A skipped round's "probe" slot is analytic too: replay
            # the recorded deltas for all n packets instead of n - 1.
            self._commit_deltas(flow, n - 1 if flow.probed else n)
            flow.sent += n
            flow.round_token = None
            self._commit_due_draws()
            if flow.flow_id not in self._flows:
                # A replayed draw triggered a real cache insert and
                # the mutation observer escalated this very flow;
                # the transport is already restored at base + sent.
                return
            if flow.sent >= flow.span:
                # Tail handoff: the next send is due exactly now.
                self._escalate_finish(flow, "tail", 0, registered=True,
                                      udp_resume_at=self.engine._now)
            else:
                self._begin_round(flow)

    def _commit_deltas(self, flow: _FluidFlow, times: int) -> None:
        """Apply the recorded per-packet deltas ``times`` more times.

        Every delta was produced by a verified-idempotent walk, so
        replication is exact: ``times`` analytic packets would each
        have applied precisely these counter movements.
        """
        if times <= 0:
            return
        for obj, attr, amount in flow.deltas:
            setattr(obj, attr, getattr(obj, attr) + amount * times)
        for counter, key, amount in flow.counter_deltas:
            counter[key] += amount * times
        self.fluid_packets += times

    def _commit_due_draws(self) -> None:
        """Replay every queued draw due by now, in virtual-time order.

        Each analytic packet must consume exactly the draws its real
        counterpart would have (same sites, same order) or the shared
        learning RNG — and every later draw in the run — diverges from
        packet mode.  Draws run through the real scheme entry point,
        so a draw that triggers emits real learning traffic or
        performs a real ToR install, whose effects (including cache
        mutations that escalate flows via ``on_mutate``) land through
        the normal code paths at the next fluid boundary after the
        packet's virtual send time.

        Escalation mid-drain is safe: the reentrancy guard keeps the
        nested call a no-op, and the escalated round's token records a
        credited-cutoff timestamp so its already-due entries still
        replay while future-dated ones are discarded on arrival.
        """
        heap = self._draw_heap
        if not heap or self._draining:
            return
        self._draining = True
        try:
            now = self.engine._now
            replay = self.scheme.replay_learning_draw
            while heap and heap[0][0] <= now:
                due, _seq, switch, template, token = heappop(heap)
                if token[0] or due <= token[1]:
                    replay(switch, template)
        finally:
            self._draining = False

    # ------------------------------------------------------------------
    # escalation core
    # ------------------------------------------------------------------
    def _escalate(self, flow: _FluidFlow, reason: str) -> None:
        """External escalation: stop mid-round and restore the transport."""
        with self._fluid_phase():
            resume_at = self.engine._now
            timer = flow.timer
            partial = 1
            if timer is not None:
                self.engine.cancel_timer(timer)
                flow.timer = None
                # The probe (packet 1 of the round) is always through;
                # credit analytic packets for the elapsed fraction.
                elapsed = self.engine._now - flow.t0
                partial = 1 + elapsed // flow.interval
                n = flow.round_size
                if partial > n:
                    partial = n
                elif partial < 1:
                    partial = 1
                # A skipped round's "probe" slot is analytic too.
                self._commit_deltas(flow,
                                    partial - 1 if flow.probed else partial)
                flow.sent += partial
                # The next packet is analytically due one interval
                # after the last credited one (strictly in the future
                # by the floor-division above).
                resume_at = flow.t0 + partial * flow.interval
            token = flow.round_token
            flow.round_token = None
            self._escalate_finish(flow, reason, 0, registered=True,
                                  udp_resume_at=resume_at)
            # Credited packets' RNG draws replay only after the flow is
            # unregistered: a triggered draw may escalate other flows
            # through the cache observer but can no longer re-enter
            # this one.  The resumed transport's own packets draw later
            # (at switch-arrival events), preserving packet-mode order.
            # Future-dated entries of the cancelled round die: the
            # token is marked dead with a credited cutoff — entries due
            # by now (exactly the ``partial`` credited packets) still
            # replay, whether drained here or by an enclosing drain.
            if token is not None:
                token[0] = False
                token[1] = self.engine._now
            self._commit_due_draws()

    def _escalate_finish(self, flow: _FluidFlow, reason: str,
                         inflight: int, registered: bool,
                         udp_resume_at: int = 0,
                         warmup: bool = False) -> None:
        """Unregister + hand the transport back to packet level."""
        if registered:
            self._unregister(flow)
        self.escalations += 1
        by = self.escalations_by_reason
        by[reason] = by.get(reason, 0) + 1
        sender = flow.sender
        if reason != "tail":
            # Warmup escalations batch a wider stretch of real-packet
            # windows instead of charging the adoption-attempt budget:
            # the pair's caches are still populating, and the batch
            # both warms them and amortizes the next probe walk.
            if not warmup:
                sender._fluid_attempts += 1
            batch = self.warmup_batch_windows if warmup else 2
            sender._fluid_retry_seq = (flow.base + flow.sent
                                       + batch * flow.window)
        if flow.kind == _RELIABLE:
            self._escalate_resume_reliable(
                sender, flow.base + flow.sent, inflight)
        else:
            self._escalate_resume_udp(flow, udp_resume_at)

    def _escalate_resume_reliable(self, sender: Any, pos: int,
                                  inflight: int) -> None:
        """Point the sender at ``pos`` and let ack-clocking resume.

        ``inflight`` is 1 when the probe at ``pos`` is still alive in
        the real simulation (diverted data or ACK): the sender must
        treat it as outstanding so the eventual ACK — or a retransmit
        timeout — drives recovery through the normal transport paths.
        """
        sender._fluid_active = False
        sender._fluid_wait = False
        if sender.done:
            return
        sender.snd_una = pos
        sender.snd_next = pos + inflight
        sender.acks_received = pos
        sender.dup_acks = 0
        sender.rto_ns = sender.config.initial_rto_ns
        sender._send_window()
        sender._arm_timer()

    def _escalate_resume_udp(self, flow: _FluidFlow, resume_at: int) -> None:
        sender = flow.sender
        sender.next_seq = flow.base + flow.sent
        if sender.next_seq >= sender.total_packets:
            return
        engine = self.engine
        if resume_at < engine._now:
            resume_at = engine._now
        engine.schedule(resume_at, sender._send_next)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _register(self, flow: _FluidFlow, switches: set[int]) -> None:
        self._flows[flow.flow_id] = flow
        self._alloc_dirty = True
        self._register_switches(flow, switches)
        self._by_vip.setdefault(flow.src_vip, set()).add(flow.flow_id)
        self._by_vip.setdefault(flow.dst_vip, set()).add(flow.flow_id)

    def _register_switches(self, flow: _FluidFlow,
                           switches: set[int]) -> None:
        for switch_id in switches:
            if switch_id not in flow.switch_ids:
                flow.switch_ids.add(switch_id)
                self._by_switch.setdefault(switch_id, set()).add(flow.flow_id)

    def _unregister(self, flow: _FluidFlow) -> None:
        self._flows.pop(flow.flow_id, None)
        self._alloc_dirty = True
        for switch_id in flow.switch_ids:
            ids = self._by_switch.get(switch_id)
            if ids is not None:
                ids.discard(flow.flow_id)
        for vip in (flow.src_vip, flow.dst_vip):
            ids = self._by_vip.get(vip)
            if ids is not None:
                ids.discard(flow.flow_id)

    # ------------------------------------------------------------------
    # the walk
    # ------------------------------------------------------------------
    def _walk_round(self, flow: _FluidFlow):
        """Walk one data probe (and, for reliable flows, its ACK).

        Returns ``(status, ctx, rtt_ns)``.  All effects the walk
        applies are real — on a CLEAN outcome they are exactly the
        effects one packet-mode packet (pair) would have applied, and
        ``ctx.deltas`` replays them for the rest of the round.
        """
        ctx = self._walk_open(flow)
        self._walking = True
        self._walking_ctx = ctx
        scheme = self.scheme
        observes_draws = hasattr(scheme, "learning_draw_observer")
        if observes_draws:
            scheme.learning_draw_observer = self._walk_record_draw
        rtt = 0
        try:
            seq = flow.base + flow.sent
            sender = flow.sender
            src_host = sender.host
            data = src_host.new_packet(_DATA, flow.flow_id, seq,
                                       flow.payload, flow.src_vip,
                                       flow.dst_vip)
            ctx.wire_bytes = data._wire_bytes
            result, d_data, dst_host = self._walk_packet(ctx, src_host, data)
            ctx.data_links = tuple(ctx.links)
            if result != _DELIVERED:
                status = (_ST_DATA_DIVERTED if result == _DIVERTED
                          else _ST_DATA_CONSUMED)
                return self._walk_close(flow, ctx, status, 0)
            # Delivered at the destination host: apply the receiver
            # bookkeeping the endpoint would have, *without* emitting a
            # real ACK (reliable ACKs are walked below; ``_max_seen``
            # and reorder accounting are deliberately left untouched so
            # straggler packets still in flight compare against
            # pre-adoption state).
            record = flow.record
            record.bytes_received += flow.payload
            ctx.deltas.append((record, "bytes_received", flow.payload))
            rtt = d_data
            if flow.kind == _RELIABLE:
                receiver = flow.receiver
                receiver.rcv_next += 1
                ctx.deltas.append((receiver, "rcv_next", 1))
                ack = dst_host.new_packet(_ACK, flow.flow_id,
                                          receiver.rcv_next, 0,
                                          flow.dst_vip, flow.src_vip)
                result, d_ack, _ = self._walk_packet(ctx, dst_host, ack)
                if result != _DELIVERED:
                    status = (_ST_ACK_DIVERTED if result == _DIVERTED
                              else _ST_ACK_CONSUMED)
                    return self._walk_close(flow, ctx, status, rtt)
                rtt += d_ack
            return self._walk_close(flow, ctx, _ST_CLEAN, rtt)
        finally:
            if observes_draws:
                scheme.learning_draw_observer = None
            self._walking = False
            self._walking_ctx = None

    def _walk_record_draw(self, switch: Any, packet: Any) -> None:
        """Draw observer: capture a learning-RNG draw site mid-walk."""
        ctx = self._walking_ctx
        if ctx is not None:
            ctx.draw_sites.append(
                (switch, _DrawTemplate(packet.outer_src, packet.dst_vip,
                                       packet.outer_dst)))

    def _walk_packet(self, ctx: _WalkContext, origin: Host, packet: Packet):
        """Advance one real packet from ``origin`` to delivery, inline.

        Mirrors ``Host.send`` → ``Link.transmit`` → ``Switch.receive``
        hop by hop, applying the same counter effects by hand (each
        recorded in ``ctx.deltas``) and calling the real scheme hooks.
        The link/destination checks run *before* a link's effects are
        applied, so a packet handed back to the live simulation
        (``_DIVERTED``) is never double-counted: the real
        ``Link.transmit`` performs its own accounting on re-injection.

        Returns ``(result, elapsed_ns, delivery_host_or_None)``.
        """
        engine = self.engine
        deltas = ctx.deltas
        packet.outer_src = origin.pip
        packet.created_at = engine._now
        handler = origin.handler
        if handler is not None:
            handler.on_host_send(origin, packet)
        origin.packets_sent += 1
        deltas.append((origin, "packets_sent", 1))
        if packet.outer_dst == UNRESOLVED:
            origin.unroutable_drops += 1
            ctx.mutated = True
            return _CONSUMED, 0, None
        link = origin.uplink
        if link is None:
            ctx.mutated = True
            return _CONSUMED, 0, None
        node: Any = origin
        elapsed = 0
        hops = 0
        while True:
            if not link.up or link._loss_rng is not None:
                # Down or lossy link: give the packet back to the real
                # data plane at the time it would have reached here.
                self._reinject_transmit(elapsed, node, link, packet)
                return _DIVERTED, elapsed, None
            dst = link.dst
            is_switch = isinstance(dst, Switch)
            if not is_switch and not (isinstance(dst, Host)
                                      and packet.dst_vip in dst.vms):
                # Gateway, or a host that no longer holds the VM: the
                # real simulation handles translation/misdelivery.
                self._reinject_transmit(elapsed, node, link, packet)
                return _DIVERTED, elapsed, None
            if is_switch and dst._slow_ns:
                # Gray-slow switch: the held-then-forwarded pipeline
                # reorders against concurrent traffic, so replay the
                # hop (and everything after it) at packet level.
                self._reinject_transmit(elapsed, node, link, packet)
                return _DIVERTED, elapsed, None
            size = packet._wire_bytes
            ser = link.serialization_ns(size)
            lstats = link.stats
            lstats.packets += 1
            lstats.bytes += size
            deltas.append((lstats, "packets", 1))
            deltas.append((lstats, "bytes", size))
            ctx.links.append(link)
            elapsed += ser + link.propagation_ns
            if ser > ctx.bottleneck_ns:
                ctx.bottleneck_ns = ser
            if not is_switch:
                # Final host: deliver through the real observer chain
                # (collector counters, oracle probes) with the packet
                # back-dated so its measured latency equals ``elapsed``.
                packet.created_at = engine._now - elapsed
                if dst.on_deliver is not None:
                    dst.on_deliver(packet)
                if dst.pool is not None:
                    dst.pool.release(packet)
                return _DELIVERED, elapsed, dst
            switch = dst
            if switch._failed:
                switch.stats.drops += 1
                ctx.mutated = True
                return _CONSUMED, elapsed, None
            packet.hops += 1
            sstats = switch.stats
            sstats.packets += 1
            sstats.bytes += size
            deltas.append((sstats, "packets", 1))
            deltas.append((sstats, "bytes", size))
            ctx.switches.add(switch.switch_id)
            self._walk_note_cache(ctx, switch)
            if not switch.handler.on_switch(switch, packet, link):
                ctx.mutated = True
                return _CONSUMED, elapsed, None
            if packet._misdelivery_tag:
                self._reinject_forward(elapsed, switch, packet)
                return _DIVERTED, elapsed, None
            hops += 1
            if hops > _HOP_CAP:
                self._reinject_forward(elapsed, switch, packet)
                return _DIVERTED, elapsed, None
            egress = switch.next_hop(packet)
            if egress is None:
                sstats.drops += 1
                ctx.mutated = True
                return _CONSUMED, elapsed, None
            node = switch
            link = egress

    def _walk_note_cache(self, ctx: _WalkContext, switch: Switch) -> None:
        """Snapshot a switch's cache stats before its handler runs."""
        cache_of = getattr(self.scheme, "cache_of", None)
        if cache_of is None:
            return
        cache = cache_of(switch)
        if cache is None:
            return
        stats = cache.stats
        if stats not in ctx.cache_before:
            ctx.cache_before[stats] = tuple(
                getattr(stats, name)
                for name in _CACHE_REPLICABLE + _CACHE_MUTATING)

    def _walk_open(self, flow: _FluidFlow) -> _WalkContext:
        ctx = _WalkContext()
        collector = self.collector
        ctx.collector_before = tuple(
            getattr(collector, name) for name in _COLLECTOR_INTS)
        ctx.hits_before = dict(collector.hits_by_layer)
        ctx.first_hits_before = dict(collector.first_packet_hits_by_layer)
        scheme = self.scheme
        ctx.scheme_before = tuple(
            getattr(scheme, name, 0) for name in _SCHEME_DIRTY)
        return ctx

    def _walk_close(self, flow: _FluidFlow, ctx: _WalkContext,
                    status: int, rtt: int):
        """Diff the opaque-call snapshots into deltas; detect mutation."""
        collector = self.collector
        deltas = ctx.deltas
        for name, before in zip(_COLLECTOR_INTS, ctx.collector_before):
            after = getattr(collector, name)
            if after != before:
                deltas.append((collector, name, after - before))
        self._walk_diff_counter(ctx, collector.hits_by_layer,
                                ctx.hits_before)
        self._walk_diff_counter(ctx, collector.first_packet_hits_by_layer,
                                ctx.first_hits_before)
        scheme = self.scheme
        for name, before in zip(_SCHEME_DIRTY, ctx.scheme_before):
            after = getattr(scheme, name, 0)
            if after == before:
                continue
            if name == "rng_draws" and after - before == len(ctx.draw_sites):
                # Replayable: every draw's site was captured by the
                # observer, and _commit_draws repeats the real draw per
                # analytic packet, keeping the RNG stream exact.  Draws
                # that *triggered* moved learning_packets_sent (or a
                # cache insert fired on_mutate) and stay mutating.
                continue
            ctx.mutated = True
        replicable = len(_CACHE_REPLICABLE)
        names = _CACHE_REPLICABLE + _CACHE_MUTATING
        for stats, before in ctx.cache_before.items():
            for i, name in enumerate(names):
                diff = getattr(stats, name) - before[i]
                if diff:
                    if i < replicable:
                        deltas.append((stats, name, diff))
                    else:
                        ctx.mutated = True
        if status == _ST_CLEAN and ctx.mutated:
            status = _ST_MUTATED
        return status, ctx, rtt

    def _walk_diff_counter(self, ctx: _WalkContext, counter: Any,
                           before: dict[Any, int]) -> None:
        if len(counter) == len(before) and not any(
                counter[key] != val for key, val in before.items()):
            return
        for key, after in counter.items():
            diff = after - before.get(key, 0)
            if diff:
                ctx.counter_deltas.append((counter, key, diff))

    # ------------------------------------------------------------------
    # re-injection (diverted probes rejoin the live simulation)
    # ------------------------------------------------------------------
    def _reinject_transmit(self, elapsed: int, node: Any, link: Link,
                           packet: Packet) -> None:
        self.engine.schedule_after(elapsed, self._reinject_transmit_now,
                                   node, link, packet)

    def _reinject_transmit_now(self, node: Any, link: Link,
                               packet: Packet) -> None:
        if not link.transmit(packet) and isinstance(node, Switch):
            node.stats.drops += 1

    def _reinject_forward(self, elapsed: int, switch: Switch,
                          packet: Packet) -> None:
        self.engine.schedule_after(elapsed, switch.forward, packet)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats_dict(self) -> dict[str, Any]:
        return {
            "adoptions": self.adoptions,
            "adoption_rejects": self.adoption_rejects,
            "escalations": self.escalations,
            "escalations_by_reason": dict(
                sorted(self.escalations_by_reason.items())),
            "rounds": self.rounds,
            "fluid_packets": self.fluid_packets,
            "probe_skips": self.probe_skips,
            "warm_pairs": sum(
                1 for streak, _dirty in self._warmup.values()
                if streak >= self.warmup_clean_target),
            "active_flows": len(self._flows),
        }
