"""Seeded random-number streams for reproducible experiments.

Every stochastic component (trace generation, ECMP hashing salt,
learning-packet coin flips, gateway load balancing) draws from its own
named stream derived from a single experiment seed.  This keeps results
bit-identical across runs and lets a single component be re-randomized
without perturbing the others.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RandomStreams:
    """A factory of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(derive_seed(self.root_seed, name))
            self._streams[name] = generator
        return generator
