"""Command-line interface: run experiments and reproduce paper artifacts.

Examples::

    python -m repro list
    python -m repro run --trace hadoop --scheme SwitchV2P --cache-ratio 4
    python -m repro reproduce fig5a --ratios 0.5 4 32
    python -m repro migrate --senders 16 --packets 500
"""

from __future__ import annotations

import argparse
import math
import sys
from collections.abc import Sequence

from repro.experiments.figures import (
    FIG5_SCHEMES,
    FigureScale,
    appendix_controller,
    build_trace,
    figure5,
    figure6,
    figure7,
    figure9,
    figure10,
    ft8_spec,
    ft16_spec,
    table5,
)
from repro.experiments.runner import SCHEME_FACTORIES, run_experiment
from repro.metrics.reporting import failure_breakdown_rows, render_table
from repro.net.node import Layer

TRACES = ("hadoop", "websearch", "alibaba", "microbursts", "video")
ARTIFACTS = ("fig5a", "fig5b", "fig5c", "fig5d", "fig6", "fig7", "fig9",
             "fig10", "table5", "table6", "appendix")


def _scale_from_args(args: argparse.Namespace) -> FigureScale:
    kwargs = {}
    # ``is not None``, not truthiness: ``--flows 0`` / ``--vms 0`` are
    # legitimate degenerate inputs that must reach the scale, not fall
    # back to the defaults.
    if getattr(args, "vms", None) is not None:
        kwargs["num_vms"] = args.vms
    if getattr(args, "flows", None) is not None:
        kwargs["hadoop_flows"] = args.flows
    if getattr(args, "ratios", None):
        kwargs["ratios"] = tuple(args.ratios)
    if getattr(args, "seed", None) is not None:
        kwargs["seed"] = args.seed
    return FigureScale(**kwargs)


def _sweep_progress(label: str = "sweep"):
    """A terminal progress callback for sweep jobs, or None off-tty.

    Receives the orchestrator's ``(done, total, cached)`` ticks and
    redraws one status line; cache hits are counted so a warm re-run
    visibly reports "all cached".
    """
    stream = sys.stderr
    if not stream.isatty():
        return None
    cached_count = [0]

    def callback(done: int, total: int, cached: bool) -> None:
        if cached:
            cached_count[0] += 1
        stream.write(f"\r  {label}: {done}/{total} points "
                     f"({cached_count[0]} cached)   ")
        stream.flush()
        if done == total:
            stream.write("\n")

    return callback


def _chaos_progress():
    """Progress callback for the chaos experiment's scheme runs."""
    stream = sys.stderr
    if not stream.isatty():
        return None

    def callback(done: int, total: int, label: str) -> None:
        stream.write(f"\r  chaos: {done}/{total} runs ({label})   ")
        stream.flush()
        if done == total:
            stream.write("\n")

    return callback


def _print_sweep(rows) -> None:
    table = [[r.scheme, r.x_value, f"{r.hit_rate:.3f}",
              f"{r.fct_improvement:.2f}", f"{r.first_packet_improvement:.2f}"]
             for r in rows]
    print(render_table(
        ["scheme", "x", "hit rate", "FCT impr.", "first-pkt impr."], table))


def cmd_list(args: argparse.Namespace) -> int:
    print("schemes:   " + ", ".join(sorted(SCHEME_FACTORIES)))
    print("traces:    " + ", ".join(TRACES))
    print("artifacts: " + ", ".join(ARTIFACTS))
    return 0


def _us(value_ns: float) -> str:
    """Nanoseconds → microseconds cell; ``n/a`` when no flow completed."""
    return f"{value_ns / 1000:.1f}" if math.isfinite(value_ns) else "n/a"


def cmd_run(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    flows, num_vms = build_trace(args.trace, scale)
    spec = ft16_spec() if args.trace == "alibaba" else ft8_spec()
    result = run_experiment(spec, args.scheme, flows, num_vms,
                            args.cache_ratio, scale.seed,
                            trace_name=args.trace, fidelity=args.fidelity)
    rows = [
        ["scheme", result.scheme],
        ["trace", result.trace],
        ["fidelity", result.fidelity],
        ["cache ratio", result.cache_ratio],
        ["flows completed", f"{result.completion_rate:.1%}"],
        ["hit rate", f"{result.hit_rate:.3f}"],
        ["avg FCT [us]", _us(result.avg_fct_ns)],
        ["avg first-packet [us]", _us(result.avg_first_packet_ns)],
        ["avg stretch", f"{result.avg_stretch:.2f}"],
        ["gateway packets", result.gateway_arrivals],
        ["drops", result.drops],
    ]
    if result.fidelity == "hybrid":
        rows.append(["fluid packets",
                     f"{result.fluid_packets} "
                     f"({result.fluid_adoptions} adoptions, "
                     f"{result.fluid_escalations} escalations)"])
    rows.extend(failure_breakdown_rows(result.failed_flows,
                                       result.failure_reasons))
    print(render_table(["metric", "value"], rows))
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    scale = _scale_from_args(args)
    artifact = args.artifact
    workers = args.workers
    progress = _sweep_progress(artifact)
    if artifact in ("fig5a", "fig5b", "fig5c", "fig5d"):
        trace = {"fig5a": "hadoop", "fig5b": "microbursts",
                 "fig5c": "websearch", "fig5d": "video"}[artifact]
        schemes = FIG5_SCHEMES if trace != "video" else (
            "SwitchV2P", "GwCache", "LocalLearning", "NoCache")
        _print_sweep(figure5(trace, scale, schemes=schemes,
                             workers=workers, progress=progress))
    elif artifact == "fig6":
        _print_sweep(figure6(scale, workers=workers, progress=progress))
    elif artifact == "fig7":
        results = figure7(scale)
        pods = len(next(iter(results.values())).pod_bytes)
        table = [[s] + [b // 1_000_000 for b in r.pod_bytes]
                 + [f"{r.avg_stretch:.1f}"] for s, r in results.items()]
        print(render_table(["scheme"] + [f"pod{p + 1}" for p in range(pods)]
                           + ["stretch"], table))
    elif artifact == "fig9":
        _print_sweep(figure9(scale))
    elif artifact == "fig10":
        _print_sweep(figure10(scale))
    elif artifact == "table5":
        rows = table5(scale, cache_ratio=4.0)
        table = [[r.trace] + [f"{r.total[layer]:.1%}" for layer in Layer]
                 + [f"{r.first_packet[layer]:.1%}" for layer in Layer]
                 for r in rows]
        print(render_table(
            ["trace", "tor", "spine", "core", "tor(1st)", "spine(1st)",
             "core(1st)"], table))
    elif artifact == "table6":
        from repro.hw import TABLE6_ENTRIES_PER_SWITCH, estimate_utilization
        estimate = estimate_utilization(TABLE6_ENTRIES_PER_SWITCH)
        print(render_table(["resource", "utilization"],
                           [[k, f"{v:.1f}%"] for k, v in estimate.items()]))
    elif artifact == "appendix":
        _print_sweep(appendix_controller(scale, workers=workers,
                                         progress=progress))
    else:
        print(f"unknown artifact {artifact!r}; see 'repro list'",
              file=sys.stderr)
        return 2
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    from repro.experiments.migration import run_migration_table
    from repro.traces.incast import IncastTraceParams
    params = IncastTraceParams(num_senders=args.senders,
                               packets_per_sender=args.packets)
    rows = run_migration_table(params)
    base = rows[0]
    table = [[r.label, f"{r.gateway_packet_fraction:.1%}",
              f"{r.avg_packet_latency_ns / base.avg_packet_latency_ns:.2f}x",
              f"{(r.last_misdelivered_arrival_ns or 0) / 1000:.0f}",
              r.misdelivered_packets, r.invalidation_packets]
             for r in rows]
    print(render_table(
        ["variant", "gateway pkts", "latency", "last misdeliv [us]",
         "misdelivered", "invalidations"], table))
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """The chaos experiment: gateway-rack + spine outages vs baselines."""
    from dataclasses import replace

    from repro.experiments.faults import (
        CHAOS_SCHEMES,
        ChaosParams,
        render_chaos_table,
        run_chaos_experiment,
    )
    params = ChaosParams()
    overrides = {}
    if args.flows is not None:
        overrides["num_flows"] = args.flows
    if args.vms is not None:
        overrides["num_vms"] = args.vms
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cache_ratio is not None:
        overrides["cache_ratio"] = args.cache_ratio
    if overrides:
        params = replace(params, **overrides)
    schemes = tuple(args.schemes) if args.schemes else CHAOS_SCHEMES
    rows = run_chaos_experiment(params, schemes, progress=_chaos_progress())
    print(render_chaos_table(rows))
    return 0


def cmd_gray(args: argparse.Namespace) -> int:
    """Graceful degradation: hardened vs unhardened under gray faults."""
    from dataclasses import replace

    from repro.experiments.graydegrade import (
        GrayDegradeParams,
        render_gray_table,
        run_gray_experiment,
    )
    params = GrayDegradeParams()
    overrides = {}
    if args.flows is not None:
        overrides["num_flows"] = args.flows
    if args.vms is not None:
        overrides["num_vms"] = args.vms
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cache_ratio is not None:
        overrides["cache_ratio"] = args.cache_ratio
    if overrides:
        params = replace(params, **overrides)
    rows = run_gray_experiment(params, progress=_chaos_progress())
    print(render_gray_table(rows))
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Chaos fuzzing: random fault schedules vs. the invariant oracles."""
    from dataclasses import replace

    from repro.experiments.chaosfuzz import (
        BUGS,
        CHAOS_FUZZ_SCHEMES,
        ChaosFuzzParams,
        gray_chaos_params,
        replay_reproducer,
        run_chaos_fuzz,
    )
    if args.replay is not None:
        outcome = replay_reproducer(args.replay)
        if outcome.violations:
            print(f"replay re-tripped {len(outcome.violations)} "
                  f"violation(s) on {outcome.scheme} "
                  f"({outcome.num_events} events):")
            for violation in outcome.violations:
                print(f"  {violation}")
            return 1
        print(f"replay of {args.replay} ran clean on {outcome.scheme} — "
              "the recorded defect no longer reproduces")
        return 0
    if args.bug is not None and args.bug not in BUGS:
        print(f"unknown bug {args.bug!r}; known: {', '.join(sorted(BUGS))}",
              file=sys.stderr)
        return 2
    params = gray_chaos_params() if args.gray else ChaosFuzzParams()
    overrides = {}
    if args.flows is not None:
        overrides["num_flows"] = args.flows
    if args.vms is not None:
        overrides["num_vms"] = args.vms
    if args.cache_ratio is not None:
        overrides["cache_ratio"] = args.cache_ratio
    if args.fidelity is not None:
        overrides["fidelity"] = args.fidelity
    if overrides:
        params = replace(params, **overrides)
    schemes = tuple(args.schemes) if args.schemes else CHAOS_FUZZ_SCHEMES
    result = run_chaos_fuzz(args.trials, args.seed, schemes, params,
                            bug=args.bug, artifact_dir=args.artifact_dir,
                            shrink=not args.no_shrink,
                            progress=_chaos_progress())
    trials_run = len({outcome.trial for outcome in result.outcomes})
    if result.clean:
        print(f"chaos: {trials_run} trial(s) x {len(schemes)} scheme(s) "
              f"(seed {args.seed}) — all oracles clean")
        return 0
    failure = result.failures[0]
    print(f"chaos: oracle violation in trial {failure.trial} on "
          f"{failure.scheme} (seed {args.seed}, {failure.num_events} "
          "events):")
    for violation in failure.violations:
        print(f"  {violation}")
    if result.shrunk_events is not None:
        print(f"shrunk the schedule to {result.shrunk_events} event(s)")
    if result.reproducer_path is not None:
        print(f"reproducer written to {result.reproducer_path}")
        print(f"replay with: python -m repro chaos --replay "
              f"{result.reproducer_path}")
    return 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Always-on service mode: long-horizon churn + rolling maintenance."""
    from dataclasses import replace

    from repro.service import (
        ServiceConfig,
        build_report,
        render_report,
        replay_reproducer,
        run_service,
        write_report,
    )
    from repro.sim.engine import SECOND, msec, usec

    if args.replay is not None:
        result = replay_reproducer(args.replay)
        if result.violations:
            print(f"replay re-tripped {len(result.violations)} violation(s):")
            for violation in result.violations:
                print(f"  {violation}")
            return 1
        print(f"replay of {args.replay} ran clean — the recorded defect "
              "no longer reproduces")
        return 0

    config = ServiceConfig()
    overrides = {}
    if args.minutes is not None:
        overrides["duration_ns"] = round(args.minutes * 60) * SECOND
    if args.seconds is not None:
        overrides["duration_ns"] = args.seconds * SECOND
    if args.scheme is not None:
        overrides["scheme"] = args.scheme
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.cache_ratio is not None:
        overrides["cache_ratio"] = args.cache_ratio
    if args.window_ms is not None:
        overrides["window_ns"] = msec(args.window_ms)
    if args.tenants is not None:
        overrides["initial_tenants"] = args.tenants
        overrides["max_tenants"] = max(args.tenants,
                                       config.max_tenants)
    if args.probe_interval_us is not None:
        overrides["probe_interval_ns"] = usec(args.probe_interval_us)
    if args.reinstate_timeout_us is not None:
        overrides["reinstate_timeout_ns"] = usec(args.reinstate_timeout_us)
    if args.anti_entropy_ms is not None:
        overrides["anti_entropy_period_ns"] = msec(args.anti_entropy_ms)
    if args.staleness_bound_ms is not None:
        overrides["staleness_bound_ns"] = msec(args.staleness_bound_ms)
    if args.fidelity is not None:
        overrides["fidelity"] = args.fidelity
    if overrides:
        config = replace(config, **overrides)

    on_window = None
    if sys.stderr.isatty():
        def on_window(stats) -> None:
            sys.stderr.write(
                f"\r  serve: window {stats.index} "
                f"t={stats.end_ns / 1_000_000_000:.1f}s "
                f"started={stats.flows_started} hit={stats.hit_ratio:.2f}   ")
            sys.stderr.flush()

    result = run_service(config, artifact_dir=args.artifact_dir,
                         on_window=on_window)
    if on_window is not None:
        sys.stderr.write("\n")
    report = build_report(result)
    if args.report is not None:
        write_report(args.report, report)
    print(render_report(report))
    if args.report is not None:
        print(f"\nreport written to {args.report}")
    if result.violations:
        if result.reproducer_path is not None:
            print(f"replay with: python -m repro serve --replay "
                  f"{result.reproducer_path}")
        return 1
    return 0


def cmd_serve_report(args: argparse.Namespace) -> int:
    """Re-render a saved SLO report without re-simulating."""
    from repro.service import load_report, render_report
    report = load_report(args.input)
    print(render_report(report))
    return 1 if report["slo"]["violation_count"] else 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one experiment: phase timers, rates, optional cProfile."""
    import json as _json

    from repro.perf import profile_experiment
    scale = _scale_from_args(args)
    flows, num_vms = build_trace(args.trace, scale)
    spec = ft16_spec() if args.trace == "alibaba" else ft8_spec()
    profile, _ = profile_experiment(
        spec, args.scheme, flows, num_vms, args.cache_ratio, scale.seed,
        trace_name=args.trace, with_cprofile=args.cprofile,
        with_memory=args.memory, top=args.top, fidelity=args.fidelity)
    print(profile.render())
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(profile.as_dict(), fh, indent=2, sort_keys=True)
        print(f"\nwrote {args.json}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Assemble all persisted benchmark tables into one report."""
    from pathlib import Path
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"no results at {results_dir}; run "
              "'pytest benchmarks/ --benchmark-only' first", file=sys.stderr)
        return 1
    files = sorted(results_dir.glob("*.txt"))
    if not files:
        print(f"no result tables in {results_dir}", file=sys.stderr)
        return 1
    for path in files:
        print(f"==== {path.stem} " + "=" * max(1, 60 - len(path.stem)))
        print(path.read_text().rstrip())
        print()
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static determinism/invariant lint (see docs/linting.md)."""
    from repro.analysis.cli import run
    return run(args)


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the content-addressed run cache."""
    from repro.experiments.runcache import (
        RunCache,
        default_cache_dir,
        runcache_enabled,
    )
    store = RunCache(default_cache_dir())
    if args.cache_command == "info":
        entries = store.entries()
        print(render_table(["property", "value"], [
            ["location", str(store.root)],
            ["enabled", "yes" if runcache_enabled() else
             "no (REPRO_RUNCACHE=0)"],
            ["entries", len(entries)],
            ["size [KiB]", f"{store.size_bytes() / 1024:.1f}"],
        ]))
    elif args.cache_command == "clear":
        removed = store.clear()
        print(f"removed {removed} cached run(s) from {store.root}")
    return 0


def cmd_trace_generate(args: argparse.Namespace) -> int:
    from repro.traces.io import save_flows
    scale = _scale_from_args(args)
    flows, num_vms = build_trace(args.name, scale)
    count = save_flows(args.output, flows)
    print(f"wrote {count} flows over {num_vms} VMs to {args.output}")
    return 0


def cmd_trace_inspect(args: argparse.Namespace) -> int:
    from repro.traces.io import load_flows, trace_stats
    stats = trace_stats(load_flows(args.path))
    print(render_table(["statistic", "value"],
                       [[key, value] for key, value in stats.items()]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SwitchV2P reproduction: simulate and reproduce the "
                    "paper's experiments")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="worker processes for parallelizable commands "
                             "(passed through explicitly; 0 = sequential, "
                             "default: the REPRO_PARALLEL variable)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list schemes, traces, artifacts") \
        .set_defaults(func=cmd_list)

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("--trace", choices=TRACES, default="hadoop")
    run_parser.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES),
                            default="SwitchV2P")
    run_parser.add_argument("--cache-ratio", type=float, default=4.0,
                            help="aggregate cache size relative to the "
                                 "VIP address space")
    run_parser.add_argument("--vms", type=int, default=None)
    run_parser.add_argument("--flows", type=int, default=None)
    run_parser.add_argument("--seed", type=int, default=None)
    run_parser.add_argument("--fidelity", choices=("packet", "hybrid"),
                            default="packet",
                            help="simulation fidelity: per-packet (exact) or "
                                 "hybrid fluid fast path (see docs/simulator.md)")
    run_parser.set_defaults(func=cmd_run)

    repro_parser = subparsers.add_parser(
        "reproduce", help="regenerate one of the paper's tables/figures")
    repro_parser.add_argument("artifact", choices=ARTIFACTS)
    repro_parser.add_argument("--vms", type=int, default=None)
    repro_parser.add_argument("--flows", type=int, default=None)
    repro_parser.add_argument("--ratios", type=float, nargs="+", default=None)
    repro_parser.add_argument("--seed", type=int, default=None)
    repro_parser.set_defaults(func=cmd_reproduce)

    migrate_parser = subparsers.add_parser(
        "migrate", help="the VM-migration experiment (Table 4)")
    migrate_parser.add_argument("--senders", type=int, default=16)
    migrate_parser.add_argument("--packets", type=int, default=500)
    migrate_parser.set_defaults(func=cmd_migrate)

    faults_parser = subparsers.add_parser(
        "faults",
        help="chaos experiment: schemes under an identical fault schedule",
        description="Run every scheme twice — undisturbed and under the "
                    "same timed fault schedule (a gateway-rack power loss "
                    "with hypervisor failover, then a spine fail+recover) — "
                    "and report availability, FCT degradation, windowed "
                    "hit-rate phases and time-to-recover.")
    faults_parser.add_argument("--schemes", nargs="+",
                               choices=sorted(SCHEME_FACTORIES), default=None,
                               help="schemes to compare (default: "
                                    "SwitchV2P GwCache OnDemand)")
    faults_parser.add_argument("--vms", type=int, default=None)
    faults_parser.add_argument("--flows", type=int, default=None)
    faults_parser.add_argument("--cache-ratio", type=float, default=None)
    faults_parser.add_argument("--seed", type=int, default=None)
    faults_parser.set_defaults(func=cmd_faults)

    gray_parser = subparsers.add_parser(
        "gray",
        help="graceful degradation: self-healing plane vs gray failures",
        description="Run SwitchV2P through one gray episode — a gateway "
                    "brownout overlapping a degraded cable, plus cache "
                    "bit flips that nothing in the schedule repairs — "
                    "with the self-healing plane (gray EWMA detector, "
                    "anti-entropy audit, negative caching) on and off, "
                    "and report in-window and post-window degradation.")
    gray_parser.add_argument("--vms", type=int, default=None)
    gray_parser.add_argument("--flows", type=int, default=None)
    gray_parser.add_argument("--cache-ratio", type=float, default=None)
    gray_parser.add_argument("--seed", type=int, default=None)
    gray_parser.set_defaults(func=cmd_gray)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="chaos fuzzing: random fault schedules vs. invariant oracles",
        description="Sample random fault schedules from the topology and "
                    "run them against each scheme with runtime invariant "
                    "oracles attached (no misdelivery, no forwarding "
                    "loops, packet conservation, cache coherence, "
                    "liveness).  A failing schedule is delta-debugged to "
                    "a minimal reproducer artifact; --replay re-runs one. "
                    "Deterministic per --seed.  Exits 1 on any violation.")
    chaos_parser.add_argument("--trials", type=int, default=10,
                              help="fuzzed schedules per scheme (default 10)")
    chaos_parser.add_argument("--seed", type=int, default=1,
                              help="root seed; same seed => same schedules "
                                   "and verdicts (default 1)")
    chaos_parser.add_argument("--schemes", nargs="+",
                              choices=sorted(SCHEME_FACTORIES), default=None,
                              help="schemes to fuzz (default: "
                                   "SwitchV2P GwCache)")
    chaos_parser.add_argument("--vms", type=int, default=None)
    chaos_parser.add_argument("--flows", type=int, default=None)
    chaos_parser.add_argument("--cache-ratio", type=float, default=None)
    chaos_parser.add_argument("--fidelity", choices=("packet", "hybrid"),
                              default=None,
                              help="simulation fidelity for the fuzz trials")
    chaos_parser.add_argument("--gray", action="store_true",
                              help="fuzz with the gray-failure kinds enabled "
                                   "(degrade/flap/slow/brownout/bitflip) plus "
                                   "the anti-entropy audit and the "
                                   "bounded-staleness oracle")
    chaos_parser.add_argument("--bug", default=None, metavar="NAME",
                              help="inject a deliberate bug (harness "
                                   "self-test): skip-cache-flush, "
                                   "misdelivery-loop, oracle-canary, "
                                   "disabled-audit (pair with --gray)")
    chaos_parser.add_argument("--artifact-dir", default="chaos-artifacts",
                              metavar="DIR",
                              help="where failing trials write reproducer "
                                   "artifacts (default: chaos-artifacts/)")
    chaos_parser.add_argument("--no-shrink", action="store_true",
                              help="skip delta-debugging the failing "
                                   "schedule")
    chaos_parser.add_argument("--replay", default=None, metavar="ARTIFACT",
                              help="re-run a saved reproducer artifact "
                                   "instead of fuzzing")
    chaos_parser.set_defaults(func=cmd_chaos)

    serve_parser = subparsers.add_parser(
        "serve",
        help="always-on service mode: churn + maintenance + streaming SLOs",
        description="Run the simulated datacenter as long-lived "
                    "infrastructure: Poisson tenant arrivals/departures, "
                    "background VM migration, rolling planned maintenance "
                    "(drain/fail/recover rotation over ToRs, spines and "
                    "gateways), per-window streaming SLO metrics in "
                    "O(window) memory, and always-on invariant oracles "
                    "that fail fast with a replayable reproducer. "
                    "Exits 1 on any violation.")
    serve_parser.add_argument("--minutes", type=float, default=None,
                              help="simulated run length in minutes")
    serve_parser.add_argument("--seconds", type=int, default=None,
                              help="simulated run length in seconds "
                                   "(default 10)")
    serve_parser.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES),
                              default=None,
                              help="translation scheme (default SwitchV2P)")
    serve_parser.add_argument("--seed", type=int, default=None)
    serve_parser.add_argument("--cache-ratio", type=float, default=None)
    serve_parser.add_argument("--fidelity", choices=("packet", "hybrid"),
                              default=None,
                              help="simulation fidelity for the service run")
    serve_parser.add_argument("--window-ms", type=float, default=None,
                              help="metrics window length in milliseconds "
                                   "(default 1000)")
    serve_parser.add_argument("--tenants", type=int, default=None,
                              help="initial tenant count")
    serve_parser.add_argument("--probe-interval-us", type=float, default=None,
                              help="gateway failure-detector probe period "
                                   "(microseconds; default 1000)")
    serve_parser.add_argument("--reinstate-timeout-us", type=float,
                              default=None,
                              help="bound on detecting a recovered gateway "
                                   "(microseconds; default 2000)")
    serve_parser.add_argument("--anti-entropy-ms", type=float, default=None,
                              help="anti-entropy audit period reconciling "
                                   "switch caches against the gateway "
                                   "database (milliseconds; default off)")
    serve_parser.add_argument("--staleness-bound-ms", type=float, default=None,
                              help="bounded-staleness promise checked by the "
                                   "oracle suite (milliseconds; default off; "
                                   "must be >= the audit period)")
    serve_parser.add_argument("--report", default=None, metavar="PATH",
                              help="also write the SLO report JSON here")
    serve_parser.add_argument("--artifact-dir", default="serve-artifacts",
                              metavar="DIR",
                              help="where violations write reproducer "
                                   "artifacts (default: serve-artifacts/)")
    serve_parser.add_argument("--replay", default=None, metavar="ARTIFACT",
                              help="re-run a saved service reproducer "
                                   "instead of a fresh run")
    serve_parser.set_defaults(func=cmd_serve)

    serve_report_parser = subparsers.add_parser(
        "serve-report",
        help="re-render a saved service SLO report")
    serve_report_parser.add_argument("--input", required=True, metavar="PATH",
                                     help="report JSON written by "
                                          "'repro serve --report'")
    serve_report_parser.set_defaults(func=cmd_serve_report)

    profile_parser = subparsers.add_parser(
        "profile",
        help="profile one experiment (phase timers, events/sec, cProfile)")
    profile_parser.add_argument("trace", choices=TRACES)
    profile_parser.add_argument("--scheme", choices=sorted(SCHEME_FACTORIES),
                                default="SwitchV2P")
    profile_parser.add_argument("--cache-ratio", type=float, default=4.0)
    profile_parser.add_argument("--vms", type=int, default=None)
    profile_parser.add_argument("--flows", type=int, default=None)
    profile_parser.add_argument("--seed", type=int, default=None)
    profile_parser.add_argument("--fidelity", choices=("packet", "hybrid"),
                                default="packet",
                                help="simulation fidelity; hybrid reports the "
                                     "fluid/packet split and escalation counts")
    profile_parser.add_argument("--cprofile", action="store_true",
                                help="include a cProfile function breakdown")
    profile_parser.add_argument("--memory", action="store_true",
                                help="snapshot tracemalloc + peak RSS per "
                                     "phase (build / warmup / steady); "
                                     "slows the run")
    profile_parser.add_argument("--top", type=int, default=25,
                                help="cProfile rows to show")
    profile_parser.add_argument("--json", default=None,
                                help="also write the profile summary to "
                                     "this JSON file")
    profile_parser.set_defaults(func=cmd_profile)

    lint_parser = subparsers.add_parser(
        "lint",
        help="static determinism & simulator-invariant checks",
        description="Run the repro.analysis lint engine: AST-based rules "
                    "that keep the simulator deterministic (no wall-clock "
                    "reads, no global RNG, integer-ns time, freelist and "
                    "memo-table invariants).  Exits non-zero when any "
                    "unsuppressed finding remains; see docs/linting.md.")
    from repro.analysis.cli import add_arguments as _add_lint_arguments
    _add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=cmd_lint)

    cache_parser = subparsers.add_parser(
        "cache",
        help="inspect or clear the content-addressed run cache",
        description="The run cache memoizes completed experiment runs "
                    "on disk (see docs/simulator.md); re-running an "
                    "unchanged figure sweep is then pure cache hits. "
                    "Disable with REPRO_RUNCACHE=0, relocate with "
                    "REPRO_RUNCACHE_DIR.")
    cache_sub = cache_parser.add_subparsers(dest="cache_command",
                                            required=True)
    cache_sub.add_parser("info", help="show location, entry count, size") \
        .set_defaults(func=cmd_cache)
    cache_sub.add_parser("clear", help="delete every cached run") \
        .set_defaults(func=cmd_cache)

    report_parser = subparsers.add_parser(
        "report", help="print every persisted benchmark table")
    report_parser.add_argument("--results-dir", default="benchmarks/results")
    report_parser.set_defaults(func=cmd_report)

    trace_parser = subparsers.add_parser(
        "trace", help="generate or inspect workload trace files")
    trace_sub = trace_parser.add_subparsers(dest="trace_command",
                                            required=True)
    gen = trace_sub.add_parser("generate", help="write a trace to a file")
    gen.add_argument("name", choices=TRACES)
    gen.add_argument("output", help="output path (JSON lines)")
    gen.add_argument("--vms", type=int, default=None)
    gen.add_argument("--flows", type=int, default=None)
    gen.add_argument("--seed", type=int, default=None)
    gen.set_defaults(func=cmd_trace_generate)
    inspect = trace_sub.add_parser("inspect", help="summarize a trace file")
    inspect.add_argument("path")
    inspect.set_defaults(func=cmd_trace_inspect)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # --workers is threaded explicitly into each command (never via the
    # environment, which would leak into the calling process and any
    # embedding application); REPRO_PARALLEL remains a fallback read by
    # repro.experiments.parallel.default_workers when --workers is absent.
    if args.workers is not None:
        args.workers = max(0, args.workers)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
