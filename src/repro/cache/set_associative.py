"""A set-associative cache variant for the design-choice ablation.

The paper chooses a *direct-mapped* cache (§3.2, citing Hill's "A Case
for Direct-Mapped Caches") because it fits the Tofino register model:
one hash, one read-modify-write per array, no pointer chasing.  A
set-associative organization with LRU would reduce conflict misses at
the cost of multi-way matching, which Tofino cannot do in registers at
line rate.  Implementing it lets the ablation quantify what the
hardware constraint costs (``benchmarks/test_ablation_cache_geometry``).

The class mirrors :class:`~repro.cache.direct_mapped.DirectMappedCache`'s
interface, including access-bit semantics generalized per entry:

* a hit sets the entry's access bit and refreshes its LRU position;
* a miss that lands in a full set ages (clears the access bit of) the
  set's LRU entry — the multi-way analogue of the direct-mapped
  "conflict miss clears the line's bit";
* conservative admission (``only_if_clear``) refuses to evict when
  every entry in the set has its access bit set.

Like the direct-mapped cache, the class supports the mutation
observation the hybrid-fidelity engine keys on: ``attach_observer``
swaps a live instance to the observed subclass, whose zero-argument
hook fires on every observable state change (new entry, eviction,
invalidation, conflict aging) and stays silent on idempotent refreshes
(hit, value overwrite).  Without it, fluid flows adopted over a
set-associative fabric would replay against stale cache state — and
:meth:`repro.sim.fluid.FluidEngine.scheme_compatible` would refuse the
geometry outright.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

from repro.cache.direct_mapped import CacheStats, InsertResult

_MIX = 2654435761


class SetAssociativeCache:
    """An N-way set-associative VIP -> PIP cache with per-entry A bits.

    Args:
        num_slots: total entries (sets = num_slots // ways; a remainder
            is dropped, matching how a hardware layout would round).
        ways: associativity; 1 behaves like a direct-mapped cache with
            LRU == the single line.
        salt: per-switch hash salt.
    """

    __slots__ = ("num_slots", "ways", "num_sets", "salt", "_sets", "stats",
                 "on_mutate")

    def __init__(self, num_slots: int, ways: int = 2, salt: int = 0) -> None:
        if num_slots < 0:
            raise ValueError(f"negative cache size: {num_slots}")
        if ways < 1:
            raise ValueError(f"associativity must be >= 1, got {ways}")
        self.ways = ways
        self.num_sets = num_slots // ways
        self.num_slots = self.num_sets * ways
        self.salt = salt
        # Each set maps vip -> [pip, abit] in LRU order (oldest first).
        self._sets: list[OrderedDict[int, list[int]]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.stats = CacheStats()
        #: zero-argument observer fired on observable state changes
        #: (see the module docstring); installed via
        #: :meth:`attach_observer`, never fired by this base class.
        self.on_mutate: Callable[[], None] | None = None

    def attach_observer(self, cb: Callable[[], None]) -> None:
        """Install ``cb`` as the mutation observer (hybrid fidelity).

        Swaps the instance to :class:`_ObservedSetAssociativeCache`;
        the unobserved base class carries no observer branches.
        """
        self.on_mutate = cb
        self.__class__ = _ObservedSetAssociativeCache

    def _set_of(self, vip: int) -> OrderedDict[int, list[int]]:
        index = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_sets
        return self._sets[index]

    # ------------------------------------------------------------------
    # The observed subclass below duplicates these bodies with the
    # notification added; keep the two in sync.
    def lookup(self, vip: int) -> int | None:
        self.stats.lookups += 1
        if self.num_sets == 0:
            return None
        entries = self._set_of(vip)
        entry = entries.get(vip)
        if entry is not None:
            entry[1] = 1
            entries.move_to_end(vip)
            self.stats.hits += 1
            return entry[0]
        if len(entries) >= self.ways:
            # Age the LRU entry under conflict pressure.
            oldest = next(iter(entries))
            if entries[oldest][1]:
                entries[oldest][1] = 0
        return None

    def insert(self, vip: int, pip: int, only_if_clear: bool = False) -> InsertResult:
        if self.num_sets == 0:
            self.stats.rejections += 1
            return InsertResult(False, None)
        entries = self._set_of(vip)
        if vip in entries:
            entries[vip][0] = pip
            entries.move_to_end(vip)
            return InsertResult(True, None)
        if len(entries) < self.ways:
            entries[vip] = [pip, 0]
            self.stats.insertions += 1
            return InsertResult(True, None)
        victim = self._pick_victim(entries, only_if_clear)
        if victim is None:
            self.stats.rejections += 1
            return InsertResult(False, None)
        evicted = (victim, entries[victim][0])
        del entries[victim]
        entries[vip] = [pip, 0]
        self.stats.insertions += 1
        self.stats.evictions += 1
        return InsertResult(True, evicted)

    def _pick_victim(self, entries: OrderedDict[int, list[int]],
                     only_if_clear: bool) -> int | None:
        if only_if_clear:
            for vip, entry in entries.items():  # LRU order
                if entry[1] == 0:
                    return vip
            return None
        return next(iter(entries))

    def invalidate(self, vip: int, stale_pip: int | None = None) -> bool:
        if self.num_sets == 0:
            return False
        entries = self._set_of(vip)
        entry = entries.get(vip)
        if entry is None:
            return False
        if stale_pip is not None and entry[0] != stale_pip:
            return False
        del entries[vip]
        self.stats.invalidations += 1
        return True

    def corrupt_entry(self, ordinal: int, bit: int) -> tuple[int, int, int] | None:
        """Flip ``bit`` of the value in the ``ordinal``-th occupied entry.

        SRAM soft-error injection; see
        :meth:`repro.cache.direct_mapped.DirectMappedCache.corrupt_entry`.
        Entries are enumerated set by set (LRU order within a set),
        modulo occupancy.  Fires ``on_mutate`` when an observer is
        attached; does not touch LRU position or access bits.

        Returns:
            ``(vip, old_pip, new_pip)``, or None on an empty cache.
        """
        occupied = [(entries, vip) for entries in self._sets for vip in entries]
        if not occupied:
            return None
        entries, vip = occupied[ordinal % len(occupied)]
        entry = entries[vip]
        old = entry[0]
        new = old ^ (1 << bit)
        entry[0] = new
        cb = self.on_mutate
        if cb is not None:
            cb()
        return (vip, old, new)

    # ------------------------------------------------------------------
    def peek(self, vip: int) -> int | None:
        if self.num_sets == 0:
            return None
        entry = self._set_of(vip).get(vip)
        return None if entry is None else entry[0]

    def access_bit(self, vip: int) -> int | None:
        if self.num_sets == 0:
            return None
        entry = self._set_of(vip).get(vip)
        return None if entry is None else entry[1]

    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def entries(self) -> list[tuple[int, int, int]]:
        out = []
        for entries in self._sets:
            for vip, (pip, abit) in entries.items():
                out.append((vip, pip, abit))
        return out

    def clear(self) -> None:
        for entries in self._sets:
            entries.clear()

    def __len__(self) -> int:
        return self.occupancy()


class _ObservedSetAssociativeCache(SetAssociativeCache):
    """A set-associative cache with mutation observation wired in.

    Never constructed directly: :meth:`attach_observer` swaps a live
    cache's ``__class__`` here (empty ``__slots__`` keeps the layouts
    identical).  The bodies mirror the base class plus the
    ``on_mutate`` firing; W402 holds these overrides to the
    escalation contract.
    """

    __slots__ = ()

    def lookup(self, vip: int) -> int | None:
        """Observed :meth:`SetAssociativeCache.lookup`."""
        self.stats.lookups += 1
        if self.num_sets == 0:
            return None
        entries = self._set_of(vip)
        entry = entries.get(vip)
        if entry is not None:
            entry[1] = 1
            entries.move_to_end(vip)
            self.stats.hits += 1
            return entry[0]
        if len(entries) >= self.ways:
            # Age the LRU entry under conflict pressure.
            oldest = next(iter(entries))
            if entries[oldest][1]:
                entries[oldest][1] = 0
                cb = self.on_mutate
                if cb is not None:
                    cb()
        return None

    def insert(self, vip: int, pip: int, only_if_clear: bool = False) -> InsertResult:
        """Observed :meth:`SetAssociativeCache.insert`."""
        if self.num_sets == 0:
            self.stats.rejections += 1
            return InsertResult(False, None)
        entries = self._set_of(vip)
        if vip in entries:
            entries[vip][0] = pip
            entries.move_to_end(vip)
            return InsertResult(True, None)
        if len(entries) < self.ways:
            entries[vip] = [pip, 0]
            self.stats.insertions += 1
            cb = self.on_mutate
            if cb is not None:
                cb()
            return InsertResult(True, None)
        victim = self._pick_victim(entries, only_if_clear)
        if victim is None:
            self.stats.rejections += 1
            return InsertResult(False, None)
        evicted = (victim, entries[victim][0])
        del entries[victim]
        entries[vip] = [pip, 0]
        self.stats.insertions += 1
        self.stats.evictions += 1
        cb = self.on_mutate
        if cb is not None:
            cb()
        return InsertResult(True, evicted)

    def invalidate(self, vip: int, stale_pip: int | None = None) -> bool:
        """Observed :meth:`SetAssociativeCache.invalidate`."""
        if self.num_sets == 0:
            return False
        entries = self._set_of(vip)
        entry = entries.get(vip)
        if entry is None:
            return False
        if stale_pip is not None and entry[0] != stale_pip:
            return False
        del entries[vip]
        self.stats.invalidations += 1
        cb = self.on_mutate
        if cb is not None:
            cb()
        return True
