"""The in-switch direct-mapped V2P cache (paper §3.2).

Each switch holds three parallel register arrays — keys (VIPs), values
(PIPs) and one *access bit* per line — exactly the structure the P4
prototype implements with three Tofino register arrays.  The access bit
is set on a hit and cleared when a lookup lands on the line but
mismatches (a conflict miss), giving a one-bit recency signal without
sketches.  Admission is the caller's policy decision; the cache itself
only exposes the primitive operations.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import NamedTuple

_EMPTY = -1
_MIX = 2654435761  # Knuth multiplicative hash constant.


class InsertResult(NamedTuple):
    """Outcome of an insert attempt.

    Attributes:
        admitted: whether the entry now resides in the cache.
        evicted: the ``(vip, pip)`` pair displaced by the insert, if
            any — the spillover mechanism forwards it downstream.
    """

    admitted: bool
    evicted: tuple[int, int] | None


#: Shared results for the two allocation-free outcomes.  Inserts run on
#: every switch hop of every packet, and only evictions carry payload,
#: so the common paths reuse these singletons instead of allocating.
_ADMITTED = InsertResult(True, None)
_REJECTED = InsertResult(False, None)


class CacheStats:
    """Operation counters for one cache instance."""

    __slots__ = ("lookups", "hits", "insertions", "evictions", "rejections",
                 "invalidations")

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0
        self.insertions = 0
        self.evictions = 0
        self.rejections = 0
        self.invalidations = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class DirectMappedCache:
    """A fixed-size direct-mapped VIP -> PIP cache with access bits.

    Args:
        num_slots: number of cache lines; 0 creates a degenerate cache
            where every lookup misses and every insert is rejected
            (used when a switch's share of the aggregate cache budget
            rounds to nothing).
        salt: per-switch hash salt so co-located caches don't all
            conflict on the same VIPs.
    """

    __slots__ = ("num_slots", "salt", "_keys", "_values", "_abits", "stats",
                 "on_mutate")

    def __init__(self, num_slots: int, salt: int = 0) -> None:
        if num_slots < 0:
            raise ValueError(f"negative cache size: {num_slots}")
        self.num_slots = num_slots
        self.salt = salt
        self._keys = [_EMPTY] * num_slots
        self._values = [0] * num_slots
        self._abits = [0] * num_slots
        self.stats = CacheStats()
        #: Zero-arg observer fired on every *state* change — insert of
        #: a new key, eviction, invalidation, conflict access-bit clear
        #: — but not on idempotent refreshes (hit, value refresh,
        #: rejection).  Installed via :meth:`attach_observer`, which
        #: swaps the instance to the observed subclass; this base class
        #: never fires it, so pure-packet runs pay zero dispatch cost.
        self.on_mutate: Callable[[], None] | None = None

    def attach_observer(self, cb: Callable[[], None]) -> None:
        """Install ``cb`` as the mutation observer (hybrid fidelity).

        Swaps the instance to :class:`_ObservedDirectMappedCache`,
        whose data-plane overrides fire the callback on every state
        change.  The unobserved base class carries no observer
        branches at all — observation costs nothing until a scheduler
        actually asks for it.
        """
        self.on_mutate = cb
        self.__class__ = _ObservedDirectMappedCache

    def _slot(self, vip: int) -> int:
        return (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots

    # ------------------------------------------------------------------
    # data-plane primitives
    # ------------------------------------------------------------------
    # ``lookup``/``insert`` inline the ``_slot`` hash: both run on every
    # switch hop of every packet, so the method-call overhead is one of
    # the simulator's largest single line items.  The observed subclass
    # below duplicates these bodies with the notification added; keep
    # the two in sync when changing cache semantics.
    def lookup(self, vip: int) -> int | None:
        """Look up ``vip``; maintains the access bit (hit=set, miss=clear)."""
        stats = self.stats
        stats.lookups += 1
        if self.num_slots == 0:
            return None
        slot = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots
        key = self._keys[slot]
        if key == vip:
            self._abits[slot] = 1
            stats.hits += 1
            return self._values[slot]
        if key != _EMPTY:
            # The line was consulted and did not help: age it.
            abits = self._abits
            if abits[slot]:
                abits[slot] = 0
        return None

    def insert(self, vip: int, pip: int, only_if_clear: bool = False) -> InsertResult:
        """Install a mapping.

        Args:
            only_if_clear: conservative admission (spine/core policy) —
                refuse to evict a line whose access bit is set.
        """
        if self.num_slots == 0:
            self.stats.rejections += 1
            return _REJECTED
        slot = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots
        keys = self._keys
        values = self._values
        key = keys[slot]
        if key == vip:
            values[slot] = pip
            return _ADMITTED
        stats = self.stats
        if key != _EMPTY:
            if only_if_clear and self._abits[slot] == 1:
                stats.rejections += 1
                return _REJECTED
            evicted = (key, values[slot])
            keys[slot] = vip
            values[slot] = pip
            self._abits[slot] = 0
            stats.insertions += 1
            stats.evictions += 1
            return InsertResult(True, evicted)
        keys[slot] = vip
        values[slot] = pip
        self._abits[slot] = 0
        stats.insertions += 1
        return _ADMITTED

    def invalidate(self, vip: int, stale_pip: int | None = None) -> bool:
        """Remove ``vip`` from the cache.

        Args:
            stale_pip: if given, invalidate only when the cached value
                equals it — a fresher mapping already learned is kept
                (paper §3.3 misdelivery-tag semantics).
        """
        if self.num_slots == 0:
            return False
        slot = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots
        if self._keys[slot] != vip:
            return False
        if stale_pip is not None and self._values[slot] != stale_pip:
            return False
        self._keys[slot] = _EMPTY
        self._abits[slot] = 0
        self.stats.invalidations += 1
        return True

    def corrupt_entry(self, ordinal: int, bit: int) -> tuple[int, int, int] | None:
        """Flip ``bit`` of the value in the ``ordinal``-th occupied line.

        Models an SRAM soft error in a live register array (fault
        injection, never the data plane).  ``ordinal`` indexes occupied
        lines in slot order, modulo occupancy, so fault schedules stay
        valid whatever the cache holds.  Fires ``on_mutate`` — a bitflip
        is a silent state change the fluid path must escalate for.

        Returns:
            ``(vip, old_pip, new_pip)`` for the corrupted line, or None
            when the cache is empty (logged no-op).
        """
        occupied = [slot for slot, key in enumerate(self._keys) if key != _EMPTY]
        if not occupied:
            return None
        slot = occupied[ordinal % len(occupied)]
        old = self._values[slot]
        new = old ^ (1 << bit)
        self._values[slot] = new
        cb = self.on_mutate
        if cb is not None:
            cb()
        return (self._keys[slot], old, new)

    # ------------------------------------------------------------------
    # introspection (control plane / tests; does not touch access bits)
    # ------------------------------------------------------------------
    def peek(self, vip: int) -> int | None:
        """Read the cached value for ``vip`` without side effects."""
        if self.num_slots == 0:
            return None
        slot = self._slot(vip)
        if self._keys[slot] == vip:
            return self._values[slot]
        return None

    def access_bit(self, vip: int) -> int | None:
        """The access bit of ``vip``'s line, or None if not cached."""
        if self.num_slots == 0:
            return None
        slot = self._slot(vip)
        if self._keys[slot] == vip:
            return self._abits[slot]
        return None

    def occupancy(self) -> int:
        """Number of occupied lines."""
        return sum(1 for key in self._keys if key != _EMPTY)

    def entries(self) -> list[tuple[int, int, int]]:
        """All ``(vip, pip, access_bit)`` triples currently cached."""
        return [(key, self._values[slot], self._abits[slot])
                for slot, key in enumerate(self._keys) if key != _EMPTY]

    def clear(self) -> None:
        """Empty the cache (control-plane reset; stats are preserved)."""
        for slot in range(self.num_slots):
            self._keys[slot] = _EMPTY
            self._abits[slot] = 0

    def __len__(self) -> int:
        return self.occupancy()


class _ObservedDirectMappedCache(DirectMappedCache):
    """A direct-mapped cache with mutation observation wired in.

    Instances are never constructed directly: :meth:`attach_observer`
    swaps a live cache's ``__class__`` here (the empty ``__slots__``
    keeps the layouts identical), so only runs that installed an
    observer — hybrid fidelity — pay the callback branches.  The
    method bodies mirror the base class exactly, plus the ``on_mutate``
    firing on each observable state change; the W402 whole-program
    lint holds these overrides (not the base class) to the escalation
    contract.
    """

    __slots__ = ()

    def lookup(self, vip: int) -> int | None:
        """Observed :meth:`DirectMappedCache.lookup`."""
        stats = self.stats
        stats.lookups += 1
        if self.num_slots == 0:
            return None
        slot = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots
        key = self._keys[slot]
        if key == vip:
            self._abits[slot] = 1
            stats.hits += 1
            return self._values[slot]
        if key != _EMPTY:
            # The line was consulted and did not help: age it.
            abits = self._abits
            if abits[slot]:
                abits[slot] = 0
                cb = self.on_mutate
                if cb is not None:
                    cb()
        return None

    def insert(self, vip: int, pip: int, only_if_clear: bool = False) -> InsertResult:
        """Observed :meth:`DirectMappedCache.insert`."""
        if self.num_slots == 0:
            self.stats.rejections += 1
            return _REJECTED
        slot = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots
        keys = self._keys
        values = self._values
        key = keys[slot]
        if key == vip:
            values[slot] = pip
            return _ADMITTED
        stats = self.stats
        if key != _EMPTY:
            if only_if_clear and self._abits[slot] == 1:
                stats.rejections += 1
                return _REJECTED
            evicted = (key, values[slot])
            keys[slot] = vip
            values[slot] = pip
            self._abits[slot] = 0
            stats.insertions += 1
            stats.evictions += 1
            cb = self.on_mutate
            if cb is not None:
                cb()
            return InsertResult(True, evicted)
        keys[slot] = vip
        values[slot] = pip
        self._abits[slot] = 0
        stats.insertions += 1
        cb = self.on_mutate
        if cb is not None:
            cb()
        return _ADMITTED

    def invalidate(self, vip: int, stale_pip: int | None = None) -> bool:
        """Observed :meth:`DirectMappedCache.invalidate`."""
        if self.num_slots == 0:
            return False
        slot = (((vip ^ self.salt) * _MIX) & 0xFFFFFFFF) % self.num_slots
        if self._keys[slot] != vip:
            return False
        if stale_pip is not None and self._values[slot] != stale_pip:
            return False
        self._keys[slot] = _EMPTY
        self._abits[slot] = 0
        self.stats.invalidations += 1
        cb = self.on_mutate
        if cb is not None:
            cb()
        return True
