"""In-switch cache structures and sizing conventions."""

from repro.cache.direct_mapped import CacheStats, DirectMappedCache, InsertResult
from repro.cache.set_associative import SetAssociativeCache
from repro.cache.sizing import aggregate_slots, per_switch_slots

__all__ = [
    "DirectMappedCache",
    "SetAssociativeCache",
    "InsertResult",
    "CacheStats",
    "aggregate_slots",
    "per_switch_slots",
]
