"""Cache-size bookkeeping shared by all caching schemes.

The paper reports cache size as the *aggregate* memory of all caching
switches, expressed relative to the number of virtual addresses in the
experiment (1% ... 1500x), and divides it equally among the caching
switches (§5, "In-switch memory size").  These helpers implement that
convention so every scheme and benchmark sizes caches identically.
"""

from __future__ import annotations


def aggregate_slots(address_space: int, ratio: float) -> int:
    """Total cache entries for a relative cache size.

    Args:
        address_space: number of VIPs in the experiment.
        ratio: aggregate size relative to the address space (0.5 = 50%,
            1500.0 = the paper's upper end).
    """
    if address_space < 0:
        raise ValueError(f"negative address space: {address_space}")
    if ratio < 0:
        raise ValueError(f"negative cache ratio: {ratio}")
    return int(round(address_space * ratio))


def per_switch_slots(address_space: int, ratio: float, num_switches: int) -> int:
    """Equal per-switch share of the aggregate budget (floor division).

    The paper's smallest configuration — 1% of 10K addresses over 80
    switches — yields exactly one entry per switch; rounding down
    preserves that interpretation.
    """
    if num_switches <= 0:
        raise ValueError(f"need at least one caching switch, got {num_switches}")
    return aggregate_slots(address_space, ratio) // num_switches
