"""Network invariant checks.

A virtual network accumulates cross-referenced state — the mapping
database, per-host VM sets, per-ToR attachment tables, fabric wiring.
``validate_network`` audits all of it and returns human-readable
descriptions of any inconsistencies; tests and long experiments run it
to catch state-corruption bugs early.

``check_invariants`` is the degraded-network-aware superset: it accepts
failed switches, downed links and crashed gateways as legitimate states
(a mid-outage network is *supposed* to look like that) and instead
audits that the failure bookkeeping itself is consistent — fault
counters match the visible failures, a failed switch really lost its
cache SRAM, the hypervisors' live-gateway pool is a well-formed subset.
The chaos oracles sweep it after every fault event.
"""

from __future__ import annotations

from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Layer
from repro.vnet.network import VirtualNetwork


def validate_network(network: VirtualNetwork) -> list[str]:
    """Audit cross-referenced network state; returns found issues."""
    issues: list[str] = []
    issues.extend(_check_placement(network))
    issues.extend(_check_attachments(network))
    issues.extend(_check_wiring(network))
    issues.extend(_check_gateways(network))
    return issues


def check_invariants(network: VirtualNetwork) -> list[str]:
    """``validate_network`` plus failure-state consistency.

    Safe to run on a degraded network: failed switches, downed links
    and crashed gateways are tolerated, but their *bookkeeping* must be
    coherent — see :func:`_check_fault_state`.
    """
    issues = validate_network(network)
    issues.extend(_check_fault_state(network))
    return issues


def assert_valid(network: VirtualNetwork) -> None:
    """Raise :class:`AssertionError` listing any invariant violations."""
    issues = check_invariants(network)
    if issues:
        raise AssertionError("network invariants violated:\n  "
                             + "\n  ".join(issues))


def _check_placement(network: VirtualNetwork) -> list[str]:
    issues = []
    for vip, pip in network.database.items():
        host = network.host_by_pip.get(pip)
        if host is None:
            issues.append(f"vip {vip} maps to unknown pip {pip}")
        elif vip not in host.vms:
            issues.append(f"vip {vip} maps to {host.name} but the host "
                          "does not run it")
    for host in network.hosts:
        for vip in host.vms:
            if network.database.get(vip) != host.pip:
                issues.append(f"{host.name} runs vip {vip} but the database "
                              "disagrees")
        for vip in host.endpoints:
            if vip not in host.vms:
                issues.append(f"{host.name} holds an endpoint for vip {vip} "
                              "without the VM")
    return issues


def _check_attachments(network: VirtualNetwork) -> list[str]:
    issues = []
    for host in network.hosts:
        pod, rack = pip_pod(host.pip), pip_rack(host.pip)
        tor = network.fabric.tors.get((pod, rack))
        if tor is None:
            issues.append(f"{host.name} pip names missing ToR ({pod},{rack})")
            continue
        if host.pip not in tor.attached_pips:
            issues.append(f"{host.name} not in its ToR's attachment table")
        link = tor.host_links.get(host.pip)
        if link is None or link.dst is not host:
            issues.append(f"{host.name} has no consistent downlink at its ToR")
        if host.uplink is None or host.uplink.dst is not tor:
            issues.append(f"{host.name} uplink does not reach its ToR")
    return issues


def _check_wiring(network: VirtualNetwork) -> list[str]:
    issues = []
    fabric = network.fabric
    spec = network.config.spec
    for (pod, rack), tor in fabric.tors.items():
        if len(tor.up_links) != spec.spines_per_pod:
            issues.append(f"{tor.name} has {len(tor.up_links)} uplinks, "
                          f"expected {spec.spines_per_pod}")
        for link in tor.up_links:
            peer = link.dst
            if peer.layer != Layer.SPINE or peer.pod != pod:
                issues.append(f"{tor.name} uplink reaches {peer.name}")
    for core in fabric.cores:
        if (len(core.pod_links) != spec.pods
                or any(link is None for link in core.pod_links)):
            issues.append(f"{core.name} does not reach every pod")
    return issues


def _check_fault_state(network: VirtualNetwork) -> list[str]:
    """Failure bookkeeping is consistent with the visible failures."""
    issues = []
    fabric = network.fabric
    failed_switches = [sw for sw in fabric.switches if sw.failed]
    down_links = sum(1 for link in _all_links(network) if not link.up)
    expected = len(failed_switches) + down_links
    if fabric.fault_count != expected:
        issues.append(
            f"fabric.fault_count is {fabric.fault_count} but "
            f"{len(failed_switches)} failed switch(es) + {down_links} down "
            f"link(s) = {expected} faults are visible")
    # A failed switch lost power: its cache SRAM must be empty until the
    # scheme repopulates it after recovery.  (Schemes without per-switch
    # caches have nothing to check.)
    cache_of = getattr(network.scheme, "cache_of", None)
    if cache_of is not None:
        for switch in failed_switches:
            cache = cache_of(switch)
            if cache is not None and cache.occupancy() != 0:
                issues.append(
                    f"{switch.name} is failed but its cache still holds "
                    f"{cache.occupancy()} entries (SRAM must not survive "
                    "power loss)")
    # The hypervisors' live pool is a well-formed view of the fleet: a
    # subset of commissioned gateways, no duplicates.  (It may lag the
    # truth — failure detection takes probes — so crashed-but-listed and
    # recovered-but-delisted gateways are legitimate.)
    live = network.live_gateways
    if len(live) != len(set(id(gw) for gw in live)):
        issues.append("live-gateway pool lists a gateway twice")
    commissioned = set(id(gw) for gw in network.gateways)
    for gateway in live:
        if id(gateway) not in commissioned:
            issues.append(f"live-gateway pool lists decommissioned "
                          f"{gateway.name}")
    return issues


def _all_links(network: VirtualNetwork):
    """Every link in the network, switch fabric and edge alike."""
    fabric = network.fabric
    links = list(fabric._switch_links.values())
    for tor in fabric.tors.values():
        links.extend(tor.host_links.values())
    for host in network.hosts:
        if host.uplink is not None:
            links.append(host.uplink)
    for gateway in network.gateways:
        if gateway.uplink is not None:
            links.append(gateway.uplink)
    return links


def _check_gateways(network: VirtualNetwork) -> list[str]:
    issues = []
    if not network.gateways:
        issues.append("no gateways commissioned")
    seen = set()
    for gateway in network.gateways:
        if gateway.pip in seen:
            issues.append(f"duplicate gateway pip {gateway.pip}")
        seen.add(gateway.pip)
        if gateway.uplink is None:
            issues.append(f"{gateway.name} has no uplink")
        if gateway.pip in network.host_by_pip:
            issues.append(f"{gateway.name} pip collides with a server")
    return issues
