"""Network invariant checks.

A virtual network accumulates cross-referenced state — the mapping
database, per-host VM sets, per-ToR attachment tables, fabric wiring.
``validate_network`` audits all of it and returns human-readable
descriptions of any inconsistencies; tests and long experiments run it
to catch state-corruption bugs early.
"""

from __future__ import annotations

from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Layer
from repro.vnet.network import VirtualNetwork


def validate_network(network: VirtualNetwork) -> list[str]:
    """Audit cross-referenced network state; returns found issues."""
    issues: list[str] = []
    issues.extend(_check_placement(network))
    issues.extend(_check_attachments(network))
    issues.extend(_check_wiring(network))
    issues.extend(_check_gateways(network))
    return issues


def assert_valid(network: VirtualNetwork) -> None:
    """Raise :class:`AssertionError` listing any invariant violations."""
    issues = validate_network(network)
    if issues:
        raise AssertionError("network invariants violated:\n  "
                             + "\n  ".join(issues))


def _check_placement(network: VirtualNetwork) -> list[str]:
    issues = []
    for vip, pip in network.database.items():
        host = network.host_by_pip.get(pip)
        if host is None:
            issues.append(f"vip {vip} maps to unknown pip {pip}")
        elif vip not in host.vms:
            issues.append(f"vip {vip} maps to {host.name} but the host "
                          "does not run it")
    for host in network.hosts:
        for vip in host.vms:
            if network.database.get(vip) != host.pip:
                issues.append(f"{host.name} runs vip {vip} but the database "
                              "disagrees")
        for vip in host.endpoints:
            if vip not in host.vms:
                issues.append(f"{host.name} holds an endpoint for vip {vip} "
                              "without the VM")
    return issues


def _check_attachments(network: VirtualNetwork) -> list[str]:
    issues = []
    for host in network.hosts:
        pod, rack = pip_pod(host.pip), pip_rack(host.pip)
        tor = network.fabric.tors.get((pod, rack))
        if tor is None:
            issues.append(f"{host.name} pip names missing ToR ({pod},{rack})")
            continue
        if host.pip not in tor.attached_pips:
            issues.append(f"{host.name} not in its ToR's attachment table")
        link = tor.host_links.get(host.pip)
        if link is None or link.dst is not host:
            issues.append(f"{host.name} has no consistent downlink at its ToR")
        if host.uplink is None or host.uplink.dst is not tor:
            issues.append(f"{host.name} uplink does not reach its ToR")
    return issues


def _check_wiring(network: VirtualNetwork) -> list[str]:
    issues = []
    fabric = network.fabric
    spec = network.config.spec
    for (pod, rack), tor in fabric.tors.items():
        if len(tor.up_links) != spec.spines_per_pod:
            issues.append(f"{tor.name} has {len(tor.up_links)} uplinks, "
                          f"expected {spec.spines_per_pod}")
        for link in tor.up_links:
            peer = link.dst
            if peer.layer != Layer.SPINE or peer.pod != pod:
                issues.append(f"{tor.name} uplink reaches {peer.name}")
    for core in fabric.cores:
        if set(core.pod_links) != set(range(spec.pods)):
            issues.append(f"{core.name} does not reach every pod")
    return issues


def _check_gateways(network: VirtualNetwork) -> list[str]:
    issues = []
    if not network.gateways:
        issues.append("no gateways commissioned")
    seen = set()
    for gateway in network.gateways:
        if gateway.pip in seen:
            issues.append(f"duplicate gateway pip {gateway.pip}")
        seen.add(gateway.pip)
        if gateway.uplink is None:
            issues.append(f"{gateway.name} has no uplink")
        if gateway.pip in network.host_by_pip:
            issues.append(f"{gateway.name} pip collides with a server")
    return issues
