"""End-host hypervisors (virtual switches).

The hypervisor encapsulates tenant packets into the IP-in-IP tunnel,
chooses the outer destination (directly, from a local cache, or a
gateway — scheme-dependent), and delivers arriving packets to the VMs
it hosts.  It also implements the two end-host behaviours the paper's
update protocol relies on (§3.3 and §5.2):

* *misdelivery handling*: a packet for a VM that no longer lives here
  is re-forwarded after a processing delay (10 us in the paper), either
  to the new location via a "follow-me" rule (Andromeda-style; used by
  the NoCache/OnDemand/Direct baselines) or to a gateway (SwitchV2P);
* *follow-me rules*: installed by the control plane at the old host
  just before a migration.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Protocol

from repro.net.addresses import UNRESOLVED
from repro.net.node import Node
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Engine, usec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link

DEFAULT_FORWARD_DELAY_NS = usec(10)

#: Pre-bound kind bound: DATA(0)/ACK(1) are deliverable, anything above
#: is control traffic a host ignores.
_ACK = PacketKind.ACK


class HostHandler(Protocol):
    """Scheme hooks executed at end hosts."""

    def on_host_send(self, host: Host, packet: Packet) -> None:
        """Choose the packet's outer destination before transmission."""
        ...  # pragma: no cover - protocol

    def on_misdelivery(self, host: Host, packet: Packet) -> None:
        """Re-forward a packet whose destination VM moved away."""
        ...  # pragma: no cover - protocol


class Endpoint(Protocol):
    """A packet consumer bound to a VIP (transport receiver/sender)."""

    def on_packet(self, packet: Packet) -> None:
        ...  # pragma: no cover - protocol


class Host(Node):
    """A physical server running a hypervisor and a set of VMs.

    Attributes:
        pip: physical address (assigned when attached to the fabric).
        vms: VIPs of the VMs currently placed on this server.
        endpoints: per-VIP transport receivers; endpoints migrate with
            their VM.
        follow_me: VIP -> new PIP redirection rules installed by the
            control plane at migration time.
    """

    __slots__ = (
        "engine",
        "pip",
        "uplink",
        "vms",
        "endpoints",
        "follow_me",
        "handler",
        "forward_delay_ns",
        "on_deliver",
        "on_misdeliver",
        "misdeliveries",
        "packets_sent",
        "unroutable_drops",
        "pool",
    )

    def __init__(self, name: str, engine: Engine,
                 forward_delay_ns: int = DEFAULT_FORWARD_DELAY_NS) -> None:
        super().__init__(name)
        self.engine = engine
        self.pip = -1
        self.uplink: Link | None = None
        self.vms: set[int] = set()
        self.endpoints: dict[int, Endpoint] = {}
        self.follow_me: dict[int, int] = {}
        self.handler: HostHandler | None = None
        self.forward_delay_ns = forward_delay_ns
        #: Observer invoked on every successful local delivery (metrics).
        self.on_deliver: Callable[[Packet], None] | None = None
        #: Observer invoked when a packet arrives for a VM not present.
        self.on_misdeliver: Callable[[Packet], None] | None = None
        self.misdeliveries = 0
        self.packets_sent = 0
        #: Packets the scheme could not address at all (e.g. no
        #: surviving gateway): hard-dropped here instead of being
        #: garbage-routed into the fabric.
        self.unroutable_drops = 0
        #: Shared :class:`~repro.net.packet.PacketPool`; wired in by
        #: :class:`~repro.vnet.network.VirtualNetwork`.  When None,
        #: transports fall back to plain construction.
        self.pool = None

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def new_packet(self, kind: PacketKind, flow_id: int, seq: int,
                   payload_bytes: int, src_vip: int, dst_vip: int) -> Packet:
        """Make a DATA/ACK packet originating here, recycled if possible.

        The freelist pop is :meth:`PacketPool.acquire` inlined — this
        runs once per packet the transport originates.
        """
        pool = self.pool
        if pool is not None:
            free = pool._free
            if free:
                packet = free.pop()
                packet.reset(kind, flow_id, seq, payload_bytes, src_vip,
                             dst_vip, self.pip)
                pool.recycled += 1
                return packet
            pool.allocated += 1
        return Packet(kind, flow_id, seq, payload_bytes, src_vip, dst_vip,
                      self.pip)

    def send(self, packet: Packet) -> None:
        """Encapsulate and transmit a packet originated by a local VM."""
        packet.outer_src = self.pip
        packet.created_at = self.engine._now
        if self.handler is not None:
            self.handler.on_host_send(self, packet)
        self.packets_sent += 1
        if packet.outer_dst == UNRESOLVED:
            self.unroutable_drops += 1
            return
        if self.uplink is not None:
            self.uplink.transmit(packet)

    def reforward(self, packet: Packet) -> None:
        """Put a re-forwarded (misdelivered) packet back on the wire.

        The outer source is deliberately left as the original sender's
        PIP: the ToR detects that the packet did not originate from the
        attached server and stamps the misdelivery tag (paper §3.3).
        """
        if packet.outer_dst == UNRESOLVED:
            self.unroutable_drops += 1
            return
        if self.uplink is not None:
            self.uplink.transmit(packet)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link=None) -> None:
        if packet.kind > _ACK:
            return
        if packet.dst_vip in self.vms:
            if self.on_deliver is not None:
                self.on_deliver(packet)
            endpoint = self.endpoints.get(packet.dst_vip)
            if endpoint is not None:
                endpoint.on_packet(packet)
            # Terminal delivery: the only point where a packet provably
            # has no other live reference, so it may be recycled.
            if self.pool is not None:
                self.pool.release(packet)
            return
        # The destination VM is not (or no longer) here: hypervisor
        # re-forwards after its processing delay.
        self.misdeliveries += 1
        if self.on_misdeliver is not None:
            self.on_misdeliver(packet)
        self.engine.schedule_after(self.forward_delay_ns, self._handle_misdelivery,
                                   packet)

    def _handle_misdelivery(self, packet: Packet) -> None:
        if self.handler is not None:
            self.handler.on_misdelivery(self, packet)

    # ------------------------------------------------------------------
    # VM placement (control plane)
    # ------------------------------------------------------------------
    def add_vm(self, vip: int, endpoint: Endpoint | None = None) -> None:
        self.vms.add(vip)
        if endpoint is not None:
            self.endpoints[vip] = endpoint

    def remove_vm(self, vip: int) -> Endpoint | None:
        self.vms.discard(vip)
        return self.endpoints.pop(vip, None)
