"""The assembled virtual network: fabric + hosts + gateways + mappings.

:class:`VirtualNetwork` is the top-level simulation object.  It builds
the physical fabric from a :class:`~repro.net.topology.FatTreeSpec`,
attaches one :class:`~repro.vnet.hypervisor.Host` per server and the
configured gateways, owns the authoritative mapping database, and wires
a *translation scheme* (SwitchV2P or any baseline) into every node's
hooks.  Transports and trace players then drive traffic through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.collector import Collector
from repro.net.node import ecmp_index
from repro.net.packet import Packet, PacketKind, PacketPool
from repro.net.topology import Fabric, FatTreeSpec
from repro.sim.engine import Engine, msec, usec
from repro.sim.randomness import RandomStreams
from repro.vnet.failover import GatewayFailureDetector
from repro.vnet.gateway import Gateway
from repro.vnet.hypervisor import Host
from repro.vnet.mapping import MappingDatabase

_DATA = PacketKind.DATA


@dataclass(frozen=True)
class NetworkConfig:
    """Everything needed to instantiate a simulated virtual network."""

    spec: FatTreeSpec = field(default_factory=FatTreeSpec)
    gateway_processing_ns: int = usec(40)
    gateway_service_ns: int = 0
    host_forward_delay_ns: int = usec(10)
    seed: int = 0
    #: Gateway failure-detector tuning (hypervisor-side probing): the
    #: steady-state probe period, and the ceiling on probe backoff —
    #: which also bounds how long a *recovered* gateway stays outside
    #: the load-balancing pool (the reinstatement timeout).  Long
    #: service runs raise these to trade detection latency for probe
    #: event overhead; the defaults match the historical hard-coded
    #: values in :mod:`repro.vnet.failover`.
    gateway_probe_interval_ns: int = usec(200)
    gateway_reinstate_timeout_ns: int = msec(2)
    #: Simulation fidelity: ``"packet"`` simulates every packet
    #: discretely (bit-identical to historical behaviour); ``"hybrid"``
    #: lets the fluid scheduler advance warm steady-state flows
    #: analytically, escalating back to packet level on cache-relevant
    #: events (see :mod:`repro.sim.fluid`).
    fidelity: str = "packet"

    def __post_init__(self) -> None:
        if self.fidelity not in ("packet", "hybrid"):
            raise ValueError(
                f"fidelity must be 'packet' or 'hybrid', got {self.fidelity!r}")


class VirtualNetwork:
    """A simulated data center running one V2P translation scheme.

    Args:
        config: topology and latency parameters.
        scheme: a translation scheme implementing the host/switch hooks
            (see :class:`repro.baselines.base.TranslationScheme`).
        collector: metrics sink; a fresh one is created if omitted.
    """

    def __init__(self, config: NetworkConfig, scheme, collector: Collector | None = None):
        self.config = config
        self.scheme = scheme
        self.collector = collector if collector is not None else Collector()
        # Timer-wheel width and freelist headroom scale with the
        # topology: concurrent armed timers and in-flight packets both
        # grow with the server count, and a wheel sized for FT8 leaves
        # k=32 buckets hundreds deep.  Neither knob affects event
        # order, so results stay bit-identical across sizings.
        servers = config.spec.num_servers
        wheel_slots = 512
        while wheel_slots < servers and wheel_slots < 8192:
            wheel_slots *= 2
        self.engine = Engine(wheel_slots=wheel_slots)
        self.streams = RandomStreams(config.seed)
        self.fabric = Fabric(self.engine, config.spec)
        self.database = MappingDatabase()
        #: Shared freelist recycling DATA/ACK packets across all hosts;
        #: steady-state traffic allocates no new packet objects.
        self.packet_pool = PacketPool(max_free=max(65536, 16 * servers))
        self.hosts: list[Host] = []
        self.host_by_pip: dict[int, Host] = {}
        self.gateways: list[Gateway] = []
        #: Gateways the hypervisors currently believe are healthy (the
        #: load-balancing pool).  Failure detection moves gateways out
        #: and back in; with no detector the pool never changes.
        self.live_gateways: list[Gateway] = []
        self.failure_detector: GatewayFailureDetector | None = None
        self.gateway_failovers = 0
        #: Anti-entropy auditor reconciling switch caches against the
        #: authoritative database; None until enabled.
        self.anti_entropy = None
        self._gateway_salt = int(self.streams.stream("gateway-lb").integers(0, 2**31))
        #: Per-flow gateway choice memo; ``gateway_for`` is a pure
        #: function of (flow_id, salt, pool), so entries stay valid
        #: until the live pool changes (failover/commissioning), which
        #: clears the memo.
        self._gateway_memo: dict[int, Gateway] = {}
        self._build_hosts()
        self._build_gateways()
        self._wire_scheme()
        #: Hybrid-fidelity fluid scheduler; None in pure-packet mode so
        #: every hot-path hook reduces to one attribute test.
        self.fluid = None
        if config.fidelity == "hybrid":
            from repro.sim.fluid import FluidScheduler
            self.fluid = FluidScheduler(self)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_hosts(self) -> None:
        spec = self.config.spec
        deliver = self._on_host_deliver
        misdeliver = self._on_host_misdeliver
        for pod in range(spec.pods):
            for rack in range(spec.racks_per_pod):
                for index in range(spec.servers_per_rack):
                    host = Host(f"host-p{pod}r{rack}h{index}", self.engine,
                                self.config.host_forward_delay_ns)
                    pip, uplink = self.fabric.attach_host(host, pod, rack, index)
                    host.pip = pip
                    host.uplink = uplink
                    uplink._src_is_host = True
                    host.on_deliver = deliver
                    host.on_misdeliver = misdeliver
                    host.pool = self.packet_pool
                    self.hosts.append(host)
                    self.host_by_pip[pip] = host

    def _build_gateways(self) -> None:
        spec = self.config.spec
        rack = spec.gateway_rack
        for pod in spec.gateway_pods:
            for index in range(spec.gateways_per_pod):
                gateway = Gateway(f"gw-p{pod}g{index}", self.engine, self.database,
                                  self.config.gateway_processing_ns,
                                  self.config.gateway_service_ns)
                pip, uplink = self.fabric.attach_host(
                    gateway, pod, rack, spec.servers_per_rack + index)
                gateway.pip = pip
                gateway.uplink = uplink
                gateway.on_packet = self.collector.record_gateway_arrival
                self.gateways.append(gateway)
        if not self.gateways:
            raise ValueError("topology has no gateways; every scheme needs at "
                             "least one translation gateway")
        self.live_gateways = list(self.gateways)

    def _wire_scheme(self) -> None:
        for switch in self.fabric.switches:
            switch.handler = self.scheme
        for host in self.hosts:
            host.handler = self.scheme
        self.scheme.setup(self)

    def _on_host_deliver(self, packet: Packet) -> None:
        # Body of Collector.record_delivery, inlined: one call per
        # delivered packet.
        collector = self.collector
        collector.deliveries += 1
        collector.delivered_hops += packet.hops
        if packet.kind is _DATA:
            collector.packet_latency_sum_ns += self.engine._now - packet.created_at
            collector.packet_latency_count += 1
            collector.delivered_payload_bytes += packet.payload_bytes

    def _on_host_misdeliver(self, packet: Packet) -> None:
        self.collector.record_misdelivery(self.engine._now)

    # ------------------------------------------------------------------
    # VM placement and migration (control plane)
    # ------------------------------------------------------------------
    def place_vms(self, count: int) -> None:
        """Place ``count`` VMs round-robin across all servers.

        VIP ``v`` lands on server ``v % num_servers``, which yields the
        uniform VMs-per-server placement the paper's trace setup uses.
        """
        for vip in range(count):
            self.place_vm(vip, self.hosts[vip % len(self.hosts)])

    def place_vm(self, vip: int, host: Host) -> None:
        host.add_vm(vip)
        self.database.set(vip, host.pip)

    def host_of(self, vip: int) -> Host:
        """The host currently running ``vip`` (authoritative view)."""
        return self.host_by_pip[self.database.lookup(vip)]

    def migrate(self, vip: int, target: Host) -> None:
        """Move a VM: follow-me at the old host, then update the DB.

        Matches the Andromeda-style migration the paper assumes (§3.3):
        the follow-me rule is installed before the mapping update so
        packets are never black-holed.
        """
        old_host = self.host_of(vip)
        if old_host is target:
            return
        if self.fluid is not None:
            self.fluid.escalate_vip(vip, "vm-migration")
        endpoint = old_host.remove_vm(vip)
        old_host.follow_me[vip] = target.pip
        target.add_vm(vip)
        if endpoint is not None:
            target.endpoints[vip] = endpoint
        self.database.set(vip, target.pip)

    def retire_vm(self, vip: int) -> None:
        """Decommission a VM: drop it from its host and the database.

        The inverse of :meth:`place_vm` (tenant departure in service
        mode).  Follow-me rules pointing at the VIP are cleared fleet-
        wide — after retirement nothing should redirect traffic toward
        a ghost — while stale switch-cache entries are left to the
        lazy-invalidation path: packets they detour end at a gateway
        whose authoritative lookup now fails (a counted resolution
        failure, not a silent drop).  Idempotent for unknown VIPs.
        """
        pip = self.database.get(vip)
        if pip is None:
            return
        if self.fluid is not None:
            self.fluid.escalate_vip(vip, "vm-retirement")
        host = self.host_by_pip.get(pip)
        if host is not None:
            host.remove_vm(vip)
        for other in self.hosts:
            other.follow_me.pop(vip, None)
        self.database.remove(vip)

    # ------------------------------------------------------------------
    # gateway fleet management (paper §4, "Gateway migration")
    # ------------------------------------------------------------------
    def decommission_gateway(self, gateway: Gateway) -> None:
        """Remove a gateway from the load-balancing pool.

        The device stays physically attached (packets already in
        flight toward it still resolve), but no new flows select it.
        """
        self.gateways.remove(gateway)
        if gateway in self.live_gateways:
            self.live_gateways.remove(gateway)
            self._gateway_memo.clear()
            if self.fluid is not None:
                self.fluid.escalate_all("gateway-change")
        if not self.gateways:
            raise ValueError("cannot decommission the last gateway")

    def commission_gateway(self, pod: int, rack: int | None = None) -> Gateway:
        """Attach and activate a new gateway under (pod, rack).

        After commissioning, call the scheme's role reassignment (e.g.
        ``SwitchV2P.reassign_roles``) so switch roles match the new
        gateway placement.
        """
        from repro.net.addresses import pip_host
        spec = self.config.spec
        if rack is None:
            rack = spec.gateway_rack
        tor = self.fabric.tor_of(pod, rack)
        taken = {pip_host(pip) for pip in tor.attached_pips}
        host_index = max(taken, default=-1) + 1
        gateway = Gateway(f"gw-p{pod}r{rack}h{host_index}", self.engine,
                          self.database, self.config.gateway_processing_ns,
                          self.config.gateway_service_ns)
        pip, uplink = self.fabric.attach_host(gateway, pod, rack, host_index)
        gateway.pip = pip
        gateway.uplink = uplink
        gateway.on_packet = self.collector.record_gateway_arrival
        self.gateways.append(gateway)
        self.live_gateways.append(gateway)
        self._gateway_memo.clear()
        if self.fluid is not None:
            self.fluid.escalate_all("gateway-change")
        if self.failure_detector is not None:
            self.failure_detector.watch(gateway)
        return gateway

    # ------------------------------------------------------------------
    # gateway fault tolerance (hypervisor-side failover, §2.4)
    # ------------------------------------------------------------------
    def enable_gateway_failover(self, **detector_kwargs) -> GatewayFailureDetector:
        """Start hypervisor-side gateway health probing (idempotent).

        Without this, a crashed gateway silently black-holes its share
        of traffic forever; with it, hypervisors detect the crash after
        a few missed probes (exponential backoff) and re-balance flows
        over the surviving gateways.
        """
        if self.failure_detector is None:
            detector_kwargs.setdefault(
                "probe_interval_ns", self.config.gateway_probe_interval_ns)
            detector_kwargs.setdefault(
                "max_backoff_ns", self.config.gateway_reinstate_timeout_ns)
            self.failure_detector = GatewayFailureDetector(
                self, **detector_kwargs)
            self.failure_detector.start()
        return self.failure_detector

    def set_gateway_brownout(self, gateway: Gateway, drop_rate: float,
                             extra_ns: int) -> None:
        """Put ``gateway`` into (or, with zeros, out of) a brownout.

        The shed decision draws from the named ``gateway-brownout``
        stream so runs are reproducible for a fixed seed.  The fluid
        path already diverts every gateway-bound packet, so no extra
        escalation is needed for RNG parity; flows are still escalated
        because their steady-state service latency changed.
        """
        rng = self.streams.stream("gateway-brownout") if drop_rate > 0.0 else None
        gateway.set_brownout(drop_rate, extra_ns, rng)
        if self.fluid is not None:
            self.fluid.escalate_all("gateway-brownout")

    def enable_anti_entropy(self, period_ns: int, staleness_bound_ns: int = 0):
        """Start the periodic cache-vs-database reconciliation audit.

        Idempotent; returns the :class:`repro.core.AntiEntropyAuditor`.
        See that class for the bounded-staleness argument.
        """
        if self.anti_entropy is None:
            from repro.core.antientropy import AntiEntropyAuditor
            self.anti_entropy = AntiEntropyAuditor(
                self, period_ns, staleness_bound_ns=staleness_bound_ns)
            self.anti_entropy.start()
        return self.anti_entropy

    def mark_gateway_down(self, gateway: Gateway) -> None:
        """Remove a gateway from the load-balancing pool (failover)."""
        if gateway in self.live_gateways:
            self.live_gateways.remove(gateway)
            self._gateway_memo.clear()
            self.gateway_failovers += 1
            if self.fluid is not None:
                self.fluid.escalate_all("gateway-change")

    def mark_gateway_up(self, gateway: Gateway) -> None:
        """Reinstate a recovered gateway into the pool."""
        if gateway in self.gateways and gateway not in self.live_gateways:
            self.live_gateways.append(gateway)
            self._gateway_memo.clear()
            if self.fluid is not None:
                self.fluid.escalate_all("gateway-change")

    # ------------------------------------------------------------------
    # gateway selection
    # ------------------------------------------------------------------
    def gateway_for(self, flow_id: int) -> Gateway | None:
        """Per-flow gateway load balancing, as done by each server (§5).

        Selects among the gateways the hypervisors believe are alive;
        returns None when none survive (callers must hard-drop, the
        packet has nowhere to resolve).
        """
        gateway = self._gateway_memo.get(flow_id)
        if gateway is not None:
            return gateway
        pool = self.live_gateways
        if not pool:
            return None
        gateway = pool[ecmp_index(flow_id, self._gateway_salt, len(pool))]
        self._gateway_memo[flow_id] = gateway
        return gateway

    # ------------------------------------------------------------------
    # running and finalizing
    # ------------------------------------------------------------------
    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Run the simulation, then fold node counters into the collector."""
        end = self.engine.run(until=until, max_events=max_events)
        self.finalize()
        return end

    def finalize(self) -> None:
        """Aggregate per-node counters into the metrics collector."""
        collector = self.collector
        collector.packets_sent = sum(host.packets_sent for host in self.hosts)
        collector.misdeliveries = sum(host.misdeliveries for host in self.hosts)
        collector.drops = sum(switch.stats.drops for switch in self.fabric.switches)
        collector.gateway_crash_drops = sum(
            gateway.dropped_while_failed for gateway in self.gateways)
        collector.gateway_brownout_drops = sum(
            gateway.dropped_brownout for gateway in self.gateways)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def pod_bytes(self) -> list[int]:
        """Total bytes processed by the switches of each pod (Figure 7)."""
        spec = self.config.spec
        totals = [0] * spec.pods
        for switch in self.fabric.switches:
            if switch.pod >= 0:
                totals[switch.pod] += switch.stats.bytes
        return totals

    def pod_switch_bytes(self, pod: int) -> dict[str, int]:
        """Per-switch byte counts within one pod (Figure 8)."""
        result: dict[str, int] = {}
        spec = self.config.spec
        for j in range(spec.spines_per_pod):
            switch = self.fabric.spines[(pod, j)]
            result[f"spine-{j}"] = switch.stats.bytes
        for rack in range(spec.racks_per_pod):
            switch = self.fabric.tors[(pod, rack)]
            label = "gateway-tor" if (pod in spec.gateway_pods
                                      and rack == spec.gateway_rack) else f"tor-{rack}"
            result[label] = switch.stats.bytes
        return result

    def total_switch_bytes(self) -> int:
        """Bytes processed by all switches (bandwidth-overhead metric)."""
        return sum(switch.stats.bytes for switch in self.fabric.switches)

    def gateway_pip_set(self) -> set[int]:
        return {gateway.pip for gateway in self.gateways}
