"""Hypervisor-side gateway failure detection and failover.

The paper's §2.4 rejects in-switch DHT designs partly because resolver
and gateway failures are *critical*: packets black-hole until something
notices.  Production virtual networks handle this at the end hosts —
hypervisors time out on unanswered resolutions, probe the gateway with
exponential backoff, and after a few missed probes fail the gateway out
of the load-balancing pool so new (and retransmitted) packets pick a
surviving gateway.  A later successful probe reinstates it.

:class:`GatewayFailureDetector` models exactly that control loop on the
simulation clock.  Detection latency is therefore not instantaneous:
packets sent during the window between crash and detection are lost and
must be recovered by the transport (RTO backoff), which is what the
resilience experiments measure.

Beyond the binary crashed/alive signal, the detector optionally tracks
*gray* degradation: each healthy probe samples the gateway's current
shed rate and service latency, folds them into per-gateway EWMAs, and
fails the gateway out of the pool when either EWMA crosses its
threshold.  Reinstatement uses hysteresis twice over — the EWMA must
fall back below *half* the degrade threshold, and a minimum dwell time
must have passed since the last bad sample — so a flapping gateway does
not thrash the pool (and the flow->gateway memo) on every oscillation.
Both thresholds default to 0 (disabled), preserving the historical
binary detector bit-for-bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import msec, usec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vnet.gateway import Gateway
    from repro.vnet.network import VirtualNetwork

#: Steady-state probe period while a gateway is believed healthy.
DEFAULT_PROBE_INTERVAL_NS = usec(200)
#: First retry delay after a missed probe; doubles per further miss.
DEFAULT_BACKOFF_BASE_NS = usec(100)
#: Ceiling on the exponential backoff between probes of a dead gateway.
DEFAULT_MAX_BACKOFF_NS = msec(2)
#: Missed probes before the gateway is declared dead (failed over).
DEFAULT_MISS_THRESHOLD = 3


class GatewayFailureDetector:
    """Probe every gateway; fail over on misses, reinstate on success.

    Args:
        network: the :class:`~repro.vnet.network.VirtualNetwork` whose
            live-gateway pool this detector manages.
        probe_interval_ns: period between probes of a healthy gateway
            (the hypervisor's resolution-timeout granularity).
        backoff_base_ns: retry delay after the first missed probe;
            subsequent misses double it (exponential backoff).
        max_backoff_ns: backoff ceiling — also bounds how long a
            recovered gateway can stay undetected.
        miss_threshold: consecutive missed probes before failover.
        reinstate_dwell_ns: minimum time since the last bad sample
            (missed probe or over-threshold gray sample) before a
            healthy probe may reset miss counts or reinstate the
            gateway.  0 (the default) preserves the historical
            immediate-reinstatement behaviour.
        gray_loss_threshold: fail the gateway out when its shed-rate
            EWMA reaches this value; 0 disables gray loss detection.
        gray_latency_threshold_ns: fail the gateway out when its
            service-latency EWMA reaches this value; 0 disables gray
            latency detection.
        ewma_alpha: weight of the newest sample in both EWMAs.
    """

    def __init__(self, network: VirtualNetwork,
                 probe_interval_ns: int = DEFAULT_PROBE_INTERVAL_NS,
                 backoff_base_ns: int = DEFAULT_BACKOFF_BASE_NS,
                 max_backoff_ns: int = DEFAULT_MAX_BACKOFF_NS,
                 miss_threshold: int = DEFAULT_MISS_THRESHOLD,
                 reinstate_dwell_ns: int = 0,
                 gray_loss_threshold: float = 0.0,
                 gray_latency_threshold_ns: int = 0,
                 ewma_alpha: float = 0.3) -> None:
        if probe_interval_ns <= 0 or backoff_base_ns <= 0:
            raise ValueError("probe and backoff periods must be positive")
        if miss_threshold < 1:
            raise ValueError(f"miss threshold must be >= 1, got {miss_threshold}")
        if reinstate_dwell_ns < 0:
            raise ValueError(f"negative reinstatement dwell: {reinstate_dwell_ns}")
        if not 0.0 <= gray_loss_threshold <= 1.0:
            raise ValueError(
                f"gray loss threshold must be in [0, 1], got {gray_loss_threshold}")
        if gray_latency_threshold_ns < 0:
            raise ValueError(
                f"negative gray latency threshold: {gray_latency_threshold_ns}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma alpha must be in (0, 1], got {ewma_alpha}")
        self.network = network
        self.probe_interval_ns = probe_interval_ns
        self.backoff_base_ns = backoff_base_ns
        self.max_backoff_ns = max_backoff_ns
        self.miss_threshold = miss_threshold
        self.reinstate_dwell_ns = reinstate_dwell_ns
        self.gray_loss_threshold = gray_loss_threshold
        self.gray_latency_threshold_ns = gray_latency_threshold_ns
        self.ewma_alpha = ewma_alpha
        self.probes_sent = 0
        self.detections = 0
        self.reinstatements = 0
        self.gray_detections = 0
        self.gray_reinstatements = 0
        self._misses: dict[int, int] = {}
        self._watched: set[int] = set()
        self._started = False
        #: Armed probe timers by gateway PIP (wheel timers, so stopping
        #: the detector cancels them in O(1) without heap churn).
        self._probe_timers: dict[int, object] = {}
        #: Per-gateway gray-health state: shed-rate / latency EWMAs,
        #: gateways currently failed out for gray degradation, and the
        #: time of the last bad sample (for dwell hysteresis).
        self._loss_ewma: dict[int, float] = {}
        self._latency_ewma: dict[int, float] = {}
        self._gray_out: set[int] = set()
        self._last_bad_ns: dict[int, int] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin probing every gateway currently attached."""
        if self._started:
            return
        self._started = True
        for gateway in self.network.gateways:
            self.watch(gateway)

    def watch(self, gateway: Gateway) -> None:
        """Add ``gateway`` to the probe loop (idempotent)."""
        if gateway.pip in self._watched:
            return
        self._watched.add(gateway.pip)
        self._misses[gateway.pip] = 0
        self._loss_ewma[gateway.pip] = 0.0
        self._latency_ewma[gateway.pip] = float(gateway.processing_ns)
        #: "Long ago" sentinel so dwell gating never blocks a gateway
        #: that has been healthy since it was first watched.
        self._last_bad_ns[gateway.pip] = -(10 ** 18)
        self._probe_timers[gateway.pip] = self.network.engine.schedule_timer(
            self.probe_interval_ns, self._probe, gateway)

    def stop(self) -> None:
        """Cancel all armed probes and forget the watched set."""
        engine = self.network.engine
        for timer in self._probe_timers.values():
            engine.cancel_timer(timer)
        self._probe_timers.clear()
        self._watched.clear()
        self._started = False

    # ------------------------------------------------------------------
    def _probe(self, gateway: Gateway) -> None:
        self.probes_sent += 1
        pip = gateway.pip
        now = self.network.engine.now
        if gateway.failed:
            self._last_bad_ns[pip] = now
            misses = self._misses[pip] + 1
            self._misses[pip] = misses
            if misses == self.miss_threshold:
                self.detections += 1
                self.network.mark_gateway_down(gateway)
            # Exponential backoff between retries of an unresponsive
            # gateway, capped so recovery is detected within the cap.
            delay = min(self.max_backoff_ns,
                        self.backoff_base_ns << min(misses - 1, 32))
        else:
            # A healthy probe only clears crash-detection state once
            # the gateway has stayed well for the dwell period; without
            # this, a flapping gateway resets its miss count on every
            # brief recovery and is never failed over (detector
            # thrash).  dwell=0 preserves the historical behaviour.
            if now - self._last_bad_ns[pip] >= self.reinstate_dwell_ns:
                if self._misses[pip] >= self.miss_threshold:
                    self.reinstatements += 1
                    self.network.mark_gateway_up(gateway)
                self._misses[pip] = 0
            self._update_gray(gateway, now)
            delay = self.probe_interval_ns
        self._probe_timers[pip] = self.network.engine.schedule_timer(
            delay, self._probe, gateway)

    def _update_gray(self, gateway: Gateway, now: int) -> None:
        """Fold one healthy-probe sample into the gray-health EWMAs.

        Probes measure what a real health stream would see: the current
        brownout shed rate, and the service latency including inflation
        and any queueing backlog.  Degrade thresholds are compared
        against the EWMA (not the raw sample) so single spikes don't
        fail a gateway out; reinstatement requires the EWMA back below
        half the threshold *and* the dwell period elapsed since the
        last over-threshold sample.
        """
        if not self.gray_loss_threshold and not self.gray_latency_threshold_ns:
            return
        pip = gateway.pip
        alpha = self.ewma_alpha
        backlog_ns = gateway._busy_until - now
        sample_latency = (gateway.processing_ns + gateway.brownout_extra_ns
                          + (backlog_ns if backlog_ns > 0 else 0))
        loss = self._loss_ewma[pip] = (
            (1.0 - alpha) * self._loss_ewma[pip]
            + alpha * gateway.brownout_drop_rate)
        latency = self._latency_ewma[pip] = (
            (1.0 - alpha) * self._latency_ewma[pip] + alpha * sample_latency)
        lossy = bool(self.gray_loss_threshold) and loss >= self.gray_loss_threshold
        slow = (bool(self.gray_latency_threshold_ns)
                and latency >= self.gray_latency_threshold_ns)
        if lossy or slow:
            self._last_bad_ns[pip] = now
        if pip not in self._gray_out:
            if lossy or slow:
                self._gray_out.add(pip)
                self.gray_detections += 1
                self.network.mark_gateway_down(gateway)
            return
        cleared_loss = (not self.gray_loss_threshold
                        or loss <= self.gray_loss_threshold / 2.0)
        cleared_latency = (not self.gray_latency_threshold_ns
                           or latency <= self.gray_latency_threshold_ns / 2.0)
        if (cleared_loss and cleared_latency
                and now - self._last_bad_ns[pip] >= self.reinstate_dwell_ns):
            self._gray_out.discard(pip)
            self.gray_reinstatements += 1
            self.network.mark_gateway_up(gateway)
