"""Hypervisor-side gateway failure detection and failover.

The paper's §2.4 rejects in-switch DHT designs partly because resolver
and gateway failures are *critical*: packets black-hole until something
notices.  Production virtual networks handle this at the end hosts —
hypervisors time out on unanswered resolutions, probe the gateway with
exponential backoff, and after a few missed probes fail the gateway out
of the load-balancing pool so new (and retransmitted) packets pick a
surviving gateway.  A later successful probe reinstates it.

:class:`GatewayFailureDetector` models exactly that control loop on the
simulation clock.  Detection latency is therefore not instantaneous:
packets sent during the window between crash and detection are lost and
must be recovered by the transport (RTO backoff), which is what the
resilience experiments measure.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.engine import msec, usec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.vnet.gateway import Gateway
    from repro.vnet.network import VirtualNetwork

#: Steady-state probe period while a gateway is believed healthy.
DEFAULT_PROBE_INTERVAL_NS = usec(200)
#: First retry delay after a missed probe; doubles per further miss.
DEFAULT_BACKOFF_BASE_NS = usec(100)
#: Ceiling on the exponential backoff between probes of a dead gateway.
DEFAULT_MAX_BACKOFF_NS = msec(2)
#: Missed probes before the gateway is declared dead (failed over).
DEFAULT_MISS_THRESHOLD = 3


class GatewayFailureDetector:
    """Probe every gateway; fail over on misses, reinstate on success.

    Args:
        network: the :class:`~repro.vnet.network.VirtualNetwork` whose
            live-gateway pool this detector manages.
        probe_interval_ns: period between probes of a healthy gateway
            (the hypervisor's resolution-timeout granularity).
        backoff_base_ns: retry delay after the first missed probe;
            subsequent misses double it (exponential backoff).
        max_backoff_ns: backoff ceiling — also bounds how long a
            recovered gateway can stay undetected.
        miss_threshold: consecutive missed probes before failover.
    """

    def __init__(self, network: VirtualNetwork,
                 probe_interval_ns: int = DEFAULT_PROBE_INTERVAL_NS,
                 backoff_base_ns: int = DEFAULT_BACKOFF_BASE_NS,
                 max_backoff_ns: int = DEFAULT_MAX_BACKOFF_NS,
                 miss_threshold: int = DEFAULT_MISS_THRESHOLD) -> None:
        if probe_interval_ns <= 0 or backoff_base_ns <= 0:
            raise ValueError("probe and backoff periods must be positive")
        if miss_threshold < 1:
            raise ValueError(f"miss threshold must be >= 1, got {miss_threshold}")
        self.network = network
        self.probe_interval_ns = probe_interval_ns
        self.backoff_base_ns = backoff_base_ns
        self.max_backoff_ns = max_backoff_ns
        self.miss_threshold = miss_threshold
        self.probes_sent = 0
        self.detections = 0
        self.reinstatements = 0
        self._misses: dict[int, int] = {}
        self._watched: set[int] = set()
        self._started = False
        #: Armed probe timers by gateway PIP (wheel timers, so stopping
        #: the detector cancels them in O(1) without heap churn).
        self._probe_timers: dict[int, object] = {}

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin probing every gateway currently attached."""
        if self._started:
            return
        self._started = True
        for gateway in self.network.gateways:
            self.watch(gateway)

    def watch(self, gateway: Gateway) -> None:
        """Add ``gateway`` to the probe loop (idempotent)."""
        if gateway.pip in self._watched:
            return
        self._watched.add(gateway.pip)
        self._misses[gateway.pip] = 0
        self._probe_timers[gateway.pip] = self.network.engine.schedule_timer(
            self.probe_interval_ns, self._probe, gateway)

    def stop(self) -> None:
        """Cancel all armed probes and forget the watched set."""
        engine = self.network.engine
        for timer in self._probe_timers.values():
            engine.cancel_timer(timer)
        self._probe_timers.clear()
        self._watched.clear()
        self._started = False

    # ------------------------------------------------------------------
    def _probe(self, gateway: Gateway) -> None:
        self.probes_sent += 1
        if gateway.failed:
            misses = self._misses[gateway.pip] + 1
            self._misses[gateway.pip] = misses
            if misses == self.miss_threshold:
                self.detections += 1
                self.network.mark_gateway_down(gateway)
            # Exponential backoff between retries of an unresponsive
            # gateway, capped so recovery is detected within the cap.
            delay = min(self.max_backoff_ns,
                        self.backoff_base_ns << min(misses - 1, 32))
        else:
            if self._misses[gateway.pip] >= self.miss_threshold:
                self.reinstatements += 1
                self.network.mark_gateway_up(gateway)
            self._misses[gateway.pip] = 0
            delay = self.probe_interval_ns
        self._probe_timers[gateway.pip] = self.network.engine.schedule_timer(
            delay, self._probe, gateway)
