"""Virtual-network layer: mappings, gateways, hypervisors, assembly."""

from repro.vnet.failover import GatewayFailureDetector
from repro.vnet.gateway import Gateway
from repro.vnet.hypervisor import Host
from repro.vnet.mapping import MappingDatabase, MappingError
from repro.vnet.network import NetworkConfig, VirtualNetwork
from repro.vnet.validation import assert_valid, check_invariants, validate_network

__all__ = [
    "MappingDatabase",
    "MappingError",
    "Gateway",
    "GatewayFailureDetector",
    "Host",
    "NetworkConfig",
    "VirtualNetwork",
    "validate_network",
    "check_invariants",
    "assert_valid",
]
