"""Translation gateways.

A gateway is a dedicated server that holds the full, always-fresh V2P
table (via :class:`repro.vnet.mapping.MappingDatabase`) and resolves
packets the network could not.  Following Sailfish's measurements, each
packet spends a fixed *processing latency* (40 us by default) inside
the gateway; throughput is bounded by the gateway's NIC, which the
simulator models as the gateway's access link.  Optionally a serial
service rate can be set to model CPU-bound software gateways.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.net.node import Node
from repro.net.packet import Packet
from repro.sim.engine import Engine, usec
from repro.vnet.mapping import MappingDatabase, MappingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link

DEFAULT_PROCESSING_NS = usec(40)


class Gateway(Node):
    """A V2P translation gateway attached under a gateway ToR.

    Attributes:
        pip: the gateway's physical address (assigned at attachment).
        processing_ns: per-packet translation latency.
        service_ns: if nonzero, packets are additionally serialized
            through a single server with this per-packet service time
            (models a CPU-bound gateway); 0 means line-rate pipelining.
    """

    __slots__ = (
        "engine",
        "database",
        "pip",
        "uplink",
        "processing_ns",
        "service_ns",
        "_busy_until",
        "packets_processed",
        "resolution_failures",
        "dropped_while_failed",
        "dropped_brownout",
        "failed",
        "brownout_drop_rate",
        "brownout_extra_ns",
        "_brownout_rng",
        "on_packet",
    )

    def __init__(
        self,
        name: str,
        engine: Engine,
        database: MappingDatabase,
        processing_ns: int = DEFAULT_PROCESSING_NS,
        service_ns: int = 0,
    ) -> None:
        super().__init__(name)
        self.engine = engine
        self.database = database
        self.pip = -1
        self.uplink: Link | None = None
        self.processing_ns = processing_ns
        self.service_ns = service_ns
        self._busy_until = 0
        self.packets_processed = 0
        self.resolution_failures = 0
        #: Packets that arrived while the gateway was crashed (black-
        #: holed until hypervisor-side failover kicks in, §2.4).
        self.dropped_while_failed = 0
        #: Packets shed while browned out (overflowing software queue;
        #: distinct from crash drops so the conservation oracle can
        #: account for them separately).
        self.dropped_brownout = 0
        #: A crashed gateway black-holes everything it receives; the
        #: mapping database itself is external and stays authoritative,
        #: so a restarted gateway resumes immediately.
        self.failed = False
        #: Gray brownout state (overload, not crash): a browned-out
        #: gateway sheds a fraction of arrivals and serves the rest
        #: with inflated processing latency.  Both default off.
        self.brownout_drop_rate = 0.0
        self.brownout_extra_ns = 0
        self._brownout_rng = None
        #: Observer hook invoked for every packet the gateway handles
        #: (schemes/metrics subscribe to count gateway load).
        self.on_packet: Callable[[Packet], None] | None = None

    # ------------------------------------------------------------------
    # failure / recovery (control plane)
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the gateway: arriving and in-flight packets are lost."""
        self.failed = True

    def recover(self) -> None:
        """Restart the gateway process (fresh pipeline, same database)."""
        self.failed = False
        self._busy_until = 0

    def set_brownout(self, drop_rate: float, extra_ns: int, rng=None) -> None:
        """Enter (or leave, with zeros) a brownout episode.

        Args:
            drop_rate: fraction of arrivals shed by the overflowing
                software queue, in [0, 1].
            extra_ns: extra per-packet processing latency while the
                gateway is saturated.
            rng: ``random()``-bearing generator for the shed decision;
                required when ``drop_rate`` is positive so drops are
                reproducible for a fixed seed.
        """
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {drop_rate}")
        if extra_ns < 0:
            raise ValueError(f"negative latency inflation: {extra_ns}")
        if drop_rate > 0.0 and rng is None:
            raise ValueError("brownout with positive drop rate needs an rng")
        self.brownout_drop_rate = drop_rate
        self.brownout_extra_ns = extra_ns
        self._brownout_rng = rng if drop_rate > 0.0 else None

    def receive(self, packet: Packet, link=None) -> None:
        packet.gateway_visits += 1
        if self.on_packet is not None:
            # Arrivals are counted even when crashed: the packet did
            # reach the gateway (it is not an in-network hit), it just
            # gets no service.
            self.on_packet(packet)
        if self.failed:
            self.dropped_while_failed += 1
            return
        if self._brownout_rng is not None \
                and self._brownout_rng.random() < self.brownout_drop_rate:
            # Shed by the overflowing software queue; senders see a
            # timeout, not an error, exactly like a crash drop.
            self.dropped_brownout += 1
            return
        self.packets_processed += 1
        # Translation happens on arrival; packets then sit in the
        # processing pipeline for ``processing_ns``.  Resolving up
        # front matters for fidelity: packets buffered inside the
        # gateway during a migration leave with the *old* mapping and
        # are misdelivered, exactly the NoCache behaviour the paper's
        # migration experiment reports (§5.2).
        try:
            true_pip = self.database.lookup(packet.dst_vip)
        except MappingError:
            self.resolution_failures += 1
            return
        packet.outer_dst = true_pip
        packet.resolved = True
        # A packet leaving the gateway has been authoritatively
        # translated, so any stale-mapping protection is moot.
        packet.misdelivery_tag = False
        packet.carried_mapping = None
        delay = self.processing_ns + self.brownout_extra_ns
        if self.service_ns:
            now = self.engine.now
            start = self._busy_until if self._busy_until > now else now
            self._busy_until = start + self.service_ns
            delay += self._busy_until - now
        self.engine.schedule_after(delay, self._emit, packet)

    def _emit(self, packet: Packet) -> None:
        """Forward after the processing delay."""
        if self.failed:
            # Crashed mid-processing: the buffered packet dies with it.
            self.dropped_while_failed += 1
            return
        if self.uplink is not None:
            self.uplink.transmit(packet)
