"""The authoritative V2P mapping database and its control plane.

The database is the single-writer state of the system (paper §1): the
network administrator (control plane) updates it on VM arrival,
departure and migration, while gateways read it on every unresolved
packet.  Caches elsewhere (switches, hosts) are allowed to go stale;
correctness is restored lazily via misdelivery handling (§3.3).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.net.addresses import format_vip


class MappingError(KeyError):
    """Raised when a VIP has no mapping in the authoritative database."""


class MappingDatabase:
    """Authoritative VIP -> PIP mappings with update bookkeeping.

    Attributes:
        version: bumped on every mutation; lets observers (e.g. the
            Controller baseline) cheaply detect change.
        updates: total number of update operations applied.
    """

    def __init__(self) -> None:
        self._table: dict[int, int] = {}
        self.version = 0
        self.updates = 0
        #: Per-VIP generation counter, bumped on every set/remove of
        #: that VIP.  A mapping learned at generation g is provably
        #: stale once ``generation(vip) > g`` — the anti-entropy audit
        #: and the staleness oracle compare against this, which a
        #: global ``version`` cannot express per entry.
        self._generations: dict[int, int] = {}
        self._listeners: list[Callable[[int, int, int], None]] = []
        self._removal_listeners: list[Callable[[int, int], None]] = []

    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, vip: int) -> bool:
        return vip in self._table

    def lookup(self, vip: int) -> int:
        """Resolve ``vip``; raises :class:`MappingError` if absent."""
        try:
            return self._table[vip]
        except KeyError:
            raise MappingError(f"no mapping for {format_vip(vip)}") from None

    def get(self, vip: int) -> int | None:
        return self._table.get(vip)

    def set(self, vip: int, pip: int) -> None:
        """Install or move a mapping (single-writer update)."""
        old = self._table.get(vip, -1)
        self._table[vip] = pip
        self.version += 1
        self.updates += 1
        self._generations[vip] = self._generations.get(vip, 0) + 1
        for listener in self._listeners:
            listener(vip, old, pip)

    def remove(self, vip: int) -> None:
        """Retire a mapping (VM departure); notifies removal listeners."""
        old = self._table.pop(vip, None)
        if old is not None:
            self.version += 1
            self.updates += 1
            self._generations[vip] = self._generations.get(vip, 0) + 1
            for listener in self._removal_listeners:
                listener(vip, old)

    def generation(self, vip: int) -> int:
        """Monotonic per-VIP mutation count (0 for a never-set VIP)."""
        return self._generations.get(vip, 0)

    def items(self):
        return self._table.items()

    def subscribe(self, listener: Callable[[int, int, int], None]) -> None:
        """Register ``listener(vip, old_pip, new_pip)`` for updates.

        Host-driven baselines use this to model proactive control-plane
        pushes to every hypervisor (the update-cost end of the paper's
        tradeoff, Figure 1).
        """
        self._listeners.append(listener)

    def subscribe_removal(self, listener: Callable[[int, int], None]) -> None:
        """Register ``listener(vip, old_pip)`` for mapping removals.

        Departures are a distinct event from updates: a removed VIP has
        no new PIP, and observers (e.g. the cache-coherence oracle)
        must stop holding its cached entries against the database.
        """
        self._removal_listeners.append(listener)
