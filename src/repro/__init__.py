"""SwitchV2P reproduction: in-network address caching for virtual networks.

A full Python reproduction of *In-Network Address Caching for Virtual
Networks* (ACM SIGCOMM 2024): a packet-level data center simulator, the
SwitchV2P topology-aware in-switch caching protocol, the paper's seven
baselines, its five workload generators, and a benchmark harness that
regenerates every table and figure of the evaluation.

Quickstart::

    from repro import (FatTreeSpec, NetworkConfig, SwitchV2P,
                       VirtualNetwork, TrafficPlayer, FlowSpec)

    config = NetworkConfig(spec=FatTreeSpec())
    scheme = SwitchV2P(total_cache_slots=5000)
    network = VirtualNetwork(config, scheme)
    network.place_vms(1024)
    player = TrafficPlayer(network)
    player.add_flows([FlowSpec(src_vip=1, dst_vip=2, size_bytes=20_000,
                               start_ns=0)])
    player.run()
    print(network.collector.hit_rate, network.collector.average_fct_ns())
"""

from repro.baselines import (
    Bluebird,
    Controller,
    DhtStore,
    Direct,
    GwCache,
    Hoverboard,
    LocalLearning,
    NoCache,
    OnDemand,
    TranslationScheme,
)
from repro.cache import DirectMappedCache, aggregate_slots, per_switch_slots
from repro.core import (
    CORE_HEAVY,
    EDGE_HEAVY,
    TOR_ONLY,
    UNIFORM,
    AllocationPolicy,
    HybridSwitchV2P,
    MultiTenantSwitchV2P,
    Role,
    SwitchV2P,
    SwitchV2PConfig,
    TenantRegistry,
)
from repro.metrics import Collector, FlowRecord
from repro.net import Fabric, FatTreeSpec, Layer, Packet, PacketKind
from repro.sim import Engine, RandomStreams, msec, usec
from repro.transport import FlowSpec, TrafficPlayer, TransportConfig
from repro.vnet import Gateway, Host, MappingDatabase, NetworkConfig, VirtualNetwork

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "RandomStreams",
    "usec",
    "msec",
    "Packet",
    "PacketKind",
    "Layer",
    "Fabric",
    "FatTreeSpec",
    "DirectMappedCache",
    "aggregate_slots",
    "per_switch_slots",
    "MappingDatabase",
    "Gateway",
    "Host",
    "NetworkConfig",
    "VirtualNetwork",
    "TranslationScheme",
    "NoCache",
    "Direct",
    "OnDemand",
    "GwCache",
    "LocalLearning",
    "Bluebird",
    "SwitchV2P",
    "SwitchV2PConfig",
    "Role",
    "Controller",
    "Hoverboard",
    "DhtStore",
    "HybridSwitchV2P",
    "MultiTenantSwitchV2P",
    "TenantRegistry",
    "AllocationPolicy",
    "UNIFORM",
    "TOR_ONLY",
    "EDGE_HEAVY",
    "CORE_HEAVY",
    "FlowSpec",
    "TrafficPlayer",
    "TransportConfig",
    "Collector",
    "FlowRecord",
    "__version__",
]
