"""Delta-debugging minimization of failing fault schedules.

When a fuzzed schedule trips an oracle, the raw schedule usually mixes
the one or two events that matter with a dozen that do not.  This
module implements the classic ``ddmin`` algorithm (Zeller & Hildebrandt,
"Simplifying and isolating failure-inducing input") over the *event
list* of a :class:`~repro.faults.FaultSchedule`: it repeatedly re-runs
the trial on subsets and complements of the events, keeping any smaller
event list that still reproduces the failure, until the result is
1-minimal — removing any single remaining event makes the failure
disappear.

The predicate the chaos driver supplies re-runs the full trial (same
seed, same traffic, same scheme) with the candidate events, so the
shrunk schedule is guaranteed to reproduce standalone.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

T = TypeVar("T")


def ddmin(items: Sequence[T],
          failing: Callable[[list[T]], bool]) -> list[T]:
    """Minimize ``items`` to a 1-minimal subset where ``failing`` holds.

    Args:
        items: the full failure-inducing input (event list).
        failing: returns True when the given subset still reproduces
            the failure.  Must hold for ``items`` itself.

    Returns:
        A subset of ``items`` (original order preserved) for which
        ``failing`` returns True and removing any single element makes
        it return False.
    """
    current = list(items)
    if not failing(current):
        raise ValueError("ddmin precondition: the full input must fail")
    granularity = 2
    while len(current) >= 2:
        chunks = _split(current, granularity)
        reduced = False
        # Try each chunk alone, then each complement.
        for chunk in chunks:
            if failing(chunk):
                current = chunk
                granularity = 2
                reduced = True
                break
        if not reduced:
            for index in range(len(chunks)):
                complement = [item for j, chunk in enumerate(chunks)
                              if j != index for item in chunk]
                if failing(complement):
                    current = complement
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def _split(items: list[T], pieces: int) -> list[list[T]]:
    """Partition ``items`` into ``pieces`` contiguous, near-even chunks."""
    chunks: list[list[T]] = []
    start = 0
    for index in range(pieces):
        end = start + (len(items) - start) // (pieces - index)
        if end > start:
            chunks.append(items[start:end])
        start = end
    return chunks
