"""Randomized fault-schedule generation (chaos fuzzing).

Hand-written :class:`~repro.faults.FaultSchedule` objects only test the
failures someone already thought of.  This module samples *random*
schedules from the live topology — switch outages, link cuts, random
link loss, gateway crashes and VM migrations, with tunable mix,
intensity and burstiness — deterministically from a seed, so a failing
trial is exactly reproducible (and shrinkable, see
:mod:`repro.faults.shrink`).

Targets are enumerated from the :class:`~repro.net.topology.FatTreeSpec`
in a fixed order, and every random draw comes from one
``numpy`` generator seeded via :func:`repro.sim.randomness.derive_seed`,
so the same ``(spec, num_vms, config, seed)`` always yields the same
event list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.net.topology import FatTreeSpec
from repro.sim.engine import msec, usec
from repro.sim.randomness import derive_seed


@dataclass(frozen=True)
class FuzzConfig:
    """Tuning knobs of the schedule generator.

    Attributes:
        window_ns: faults are injected in ``[0, window_ns)``; recovery
            events may land up to ``max_outage_ns`` past the window.
        mean_events: Poisson mean of the number of disruptions sampled
            (recoveries paired by ``ensure_recovery`` do not count).
        burstiness: probability in [0, 1] that a disruption fires in a
            tight burst right after the previous one instead of at an
            independent uniform time — correlated failures (rack power
            events, maintenance scripts) are where protocols break.
        ensure_recovery: when True, every switch/link/gateway fault is
            paired with a recovery (and every loss event with a
            loss-clearing event), so liveness oracles may demand that
            all flows reach a terminal state after the last recovery.
            When False, roughly half the faults are permanent.
        min_outage_ns / max_outage_ns: outage duration bounds.
        max_loss_rate: upper bound of the per-packet loss probability
            imposed by LINK_LOSS events (lower bound 5%).
        switch_weight / link_weight / loss_weight / gateway_weight /
            migrate_weight: relative probability of each disruption
            kind; a zero weight removes the kind from the mix.
        degrade_weight / flap_weight / slow_weight / brownout_weight /
            bitflip_weight: relative probability of the gray-failure
            kinds (lossy+slow link, port flapping, slow switch,
            gateway brownout, SRAM bit flip).  All default to 0 so the
            historical fail-stop mix — and every schedule derived from
            it — is unchanged; gray campaigns opt in explicitly (e.g.
            :func:`gray_fuzz_config`).
        max_extra_latency_ns: ceiling on the latency inflation drawn
            for degrade/slow/brownout events.
    """

    window_ns: int = msec(4)
    mean_events: int = 6
    burstiness: float = 0.3
    ensure_recovery: bool = True
    min_outage_ns: int = usec(300)
    max_outage_ns: int = msec(1.5)
    max_loss_rate: float = 0.25
    switch_weight: float = 3.0
    link_weight: float = 3.0
    loss_weight: float = 1.5
    gateway_weight: float = 2.0
    migrate_weight: float = 2.0
    degrade_weight: float = 0.0
    flap_weight: float = 0.0
    slow_weight: float = 0.0
    brownout_weight: float = 0.0
    bitflip_weight: float = 0.0
    max_extra_latency_ns: int = usec(100)

    def __post_init__(self) -> None:
        if self.window_ns <= 0:
            raise ValueError("fault window must be positive")
        if not 0.0 <= self.burstiness <= 1.0:
            raise ValueError(f"burstiness must be in [0, 1], got "
                             f"{self.burstiness}")
        if not 0 < self.min_outage_ns <= self.max_outage_ns:
            raise ValueError("need 0 < min_outage_ns <= max_outage_ns")
        if not 0.05 <= self.max_loss_rate <= 1.0:
            raise ValueError("max_loss_rate must be in [0.05, 1]")
        weights = (self.switch_weight, self.link_weight, self.loss_weight,
                   self.gateway_weight, self.migrate_weight)
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("fault-kind weights must be >= 0 and not all 0")
        gray = (self.degrade_weight, self.flap_weight, self.slow_weight,
                self.brownout_weight, self.bitflip_weight)
        if any(w < 0 for w in gray):
            raise ValueError("gray fault-kind weights must be >= 0")
        if self.max_extra_latency_ns < 0:
            raise ValueError("max_extra_latency_ns must be non-negative")


def gray_fuzz_config(**overrides) -> FuzzConfig:
    """A :class:`FuzzConfig` with the gray-failure kinds switched on.

    The default mix keeps the fail-stop kinds (a gray campaign should
    still exercise their interactions) and gives every gray kind equal
    say.  Keyword overrides pass straight through to the dataclass.
    """
    kwargs = dict(degrade_weight=2.0, flap_weight=1.5, slow_weight=1.5,
                  brownout_weight=2.0, bitflip_weight=1.0)
    kwargs.update(overrides)
    return FuzzConfig(**kwargs)


# ----------------------------------------------------------------------
# target enumeration (fixed order => deterministic sampling)
# ----------------------------------------------------------------------
def switch_targets(spec: FatTreeSpec) -> list[tuple]:
    """Every switch locator, in construction order."""
    targets: list[tuple] = [("tor", pod, rack)
                            for pod in range(spec.pods)
                            for rack in range(spec.racks_per_pod)]
    targets.extend(("spine", pod, j)
                   for pod in range(spec.pods)
                   for j in range(spec.spines_per_pod))
    targets.extend(("core", c) for c in range(spec.num_cores))
    return targets


def cable_targets(spec: FatTreeSpec) -> list[tuple]:
    """Every switch-to-switch cable as an (a_locator, b_locator) pair."""
    cables: list[tuple] = []
    for pod in range(spec.pods):
        for rack in range(spec.racks_per_pod):
            for j in range(spec.spines_per_pod):
                cables.append((("tor", pod, rack), ("spine", pod, j)))
    group = (spec.num_cores // spec.spines_per_pod
             if spec.spines_per_pod else 0)
    for pod in range(spec.pods):
        for j in range(spec.spines_per_pod):
            for g in range(group):
                cables.append((("spine", pod, j), ("core", j * group + g)))
    return cables


def tenant_slots(spec: FatTreeSpec) -> list[tuple[int, int, int]]:
    """(pod, rack, host) slots outside the gateway racks.

    Matches the chaos experiments' tenant placement (gateway racks are
    dedicated, paper Figure 8), so migration targets always name a
    server that actually hosts tenant VMs.
    """
    gateway_racks = [(pod, spec.gateway_rack) for pod in spec.gateway_pods]
    return [(pod, rack, h)
            for pod in range(spec.pods)
            for rack in range(spec.racks_per_pod)
            if (pod, rack) not in gateway_racks
            for h in range(spec.servers_per_rack)]


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
#: Jitter window for bursty events: a burst member fires within this
#: many nanoseconds of its predecessor.
_BURST_SPREAD_NS = usec(50)


def generate_schedule(spec: FatTreeSpec, num_vms: int,
                      config: FuzzConfig | None = None,
                      seed: int = 0) -> FaultSchedule:
    """Sample one random fault schedule for ``spec``.

    Args:
        spec: topology the schedule will target (locators are derived
            from it, so the schedule applies to any network built from
            an identical spec).
        num_vms: VIP space size; migration events pick VIPs below it.
            Zero disables migrations regardless of their weight.
        config: generator tuning; defaults to :class:`FuzzConfig`.
        seed: every draw derives from this — identical seeds yield
            identical schedules.

    Returns:
        A :class:`FaultSchedule` with events sorted by firing time.
    """
    if config is None:
        config = FuzzConfig()
    rng = np.random.default_rng(derive_seed(seed, "chaos-fuzz"))

    switches = switch_targets(spec)
    cables = cable_targets(spec)
    slots = tenant_slots(spec)
    kinds: list[str] = []
    weights: list[float] = []
    for kind, weight, viable in (
            ("switch", config.switch_weight, bool(switches)),
            ("link", config.link_weight, bool(cables)),
            ("loss", config.loss_weight, bool(cables)),
            ("gateway", config.gateway_weight, spec.num_gateways > 0),
            ("migrate", config.migrate_weight, num_vms > 0 and bool(slots)),
            ("degrade", config.degrade_weight, bool(cables)),
            ("flap", config.flap_weight, bool(cables)),
            ("slow", config.slow_weight, bool(switches)),
            ("brownout", config.brownout_weight, spec.num_gateways > 0),
            ("bitflip", config.bitflip_weight, bool(switches))):
        if weight > 0 and viable:
            kinds.append(kind)
            weights.append(weight)
    total_weight = sum(weights)

    count = 1 + int(rng.poisson(max(0, config.mean_events - 1)))
    count = min(count, 4 * config.mean_events + 4)

    schedule = FaultSchedule()
    prev_ns: int | None = None
    for _ in range(count):
        if prev_ns is not None and float(rng.random()) < config.burstiness:
            at_ns = min(config.window_ns - 1,
                        prev_ns + int(rng.integers(0, _BURST_SPREAD_NS)))
        else:
            at_ns = int(rng.integers(0, config.window_ns))
        prev_ns = at_ns
        kind = _pick_weighted(rng, kinds, weights, total_weight)
        outage_ns = int(rng.integers(config.min_outage_ns,
                                     config.max_outage_ns + 1))
        recover = config.ensure_recovery or float(rng.random()) < 0.5
        if kind == "switch":
            where = switches[int(rng.integers(len(switches)))]
            schedule.add(FaultEvent(at_ns, FaultKind.SWITCH_FAIL, where))
            if recover:
                schedule.add(FaultEvent(at_ns + outage_ns,
                                        FaultKind.SWITCH_RECOVER, where))
        elif kind == "link":
            a_loc, b_loc = cables[int(rng.integers(len(cables)))]
            schedule.link_down(at_ns, a_loc, b_loc)
            if recover:
                schedule.link_up(at_ns + outage_ns, a_loc, b_loc)
        elif kind == "loss":
            a_loc, b_loc = cables[int(rng.integers(len(cables)))]
            rate = 0.05 + float(rng.random()) * (config.max_loss_rate - 0.05)
            schedule.link_loss(at_ns, a_loc, b_loc, rate)
            if recover:
                schedule.link_loss(at_ns + outage_ns, a_loc, b_loc, 0.0)
        elif kind == "gateway":
            index = int(rng.integers(spec.num_gateways))
            schedule.crash_gateway(at_ns, index)
            if recover:
                schedule.restart_gateway(at_ns + outage_ns, index)
        elif kind == "degrade":
            a_loc, b_loc = cables[int(rng.integers(len(cables)))]
            rate = 0.05 + float(rng.random()) * (config.max_loss_rate - 0.05)
            extra = int(rng.integers(0, config.max_extra_latency_ns + 1))
            schedule.degrade_link(at_ns, a_loc, b_loc, rate, extra)
            if recover:
                schedule.degrade_link(at_ns + outage_ns, a_loc, b_loc, 0.0, 0)
        elif kind == "flap":
            a_loc, b_loc = cables[int(rng.integers(len(cables)))]
            period_ns = int(rng.integers(usec(50), usec(400) + 1))
            cycles = 1 + int(rng.integers(0, 4))
            # A flap always ends with the link up: self-healing by
            # construction, no paired recovery event needed.
            schedule.flap_link(at_ns, a_loc, b_loc, period_ns, cycles)
        elif kind == "slow":
            where = switches[int(rng.integers(len(switches)))]
            extra = 1 + int(rng.integers(0, config.max_extra_latency_ns))
            schedule.add(FaultEvent(at_ns, FaultKind.SWITCH_SLOW, where,
                                    extra_ns=extra))
            if recover:
                schedule.add(FaultEvent(at_ns + outage_ns,
                                        FaultKind.SWITCH_SLOW, where))
        elif kind == "brownout":
            index = int(rng.integers(spec.num_gateways))
            rate = 0.05 + float(rng.random()) * (config.max_loss_rate - 0.05)
            extra = int(rng.integers(0, config.max_extra_latency_ns + 1))
            schedule.brownout_gateway(at_ns, index, rate, extra)
            if recover:
                schedule.brownout_gateway(at_ns + outage_ns, index)
        elif kind == "bitflip":
            where = switches[int(rng.integers(len(switches)))]
            # Corruption is a point event; the anti-entropy audit (or
            # lazy invalidation) is the recovery path, not a schedule
            # event.  ``entry`` indexes occupied lines mod occupancy.
            schedule.add(FaultEvent(at_ns, FaultKind.CACHE_BITFLIP, where,
                                    count=int(rng.integers(0, 1 << 16)),
                                    bit=int(rng.integers(0, 24))))
        else:  # migrate: churn, never needs a recovery event
            vip = int(rng.integers(num_vms))
            pod, rack, host = slots[int(rng.integers(len(slots)))]
            schedule.migrate_vm(at_ns, vip, pod, rack, host)
    schedule.events.sort(key=lambda e: e.at_ns)
    return schedule


def _pick_weighted(rng: np.random.Generator, kinds: list[str], weights: list[float],
                   total: float) -> str:
    """One weighted draw without building numpy object arrays."""
    roll = float(rng.random()) * total
    acc = 0.0
    for kind, weight in zip(kinds, weights):
        acc += weight
        if roll < acc:
            return kind
    return kinds[-1]
