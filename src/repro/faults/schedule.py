"""Timed fault schedules: scripted chaos on the simulation clock.

A :class:`FaultSchedule` is a declarative list of fault events — fail
and recover a switch, cut and splice a link, impose random loss on a
link, crash and restart a gateway — applied to a
:class:`~repro.vnet.network.VirtualNetwork` before (or while) traffic
runs.  Because the same schedule object can be applied to networks
running different translation schemes, it is the controlled variable of
the resilience experiments: every scheme faces the identical fault
sequence and only the scheme's reaction differs.

The schedule is pure data until :meth:`FaultSchedule.apply` binds it to
a network; it can therefore be built once and replayed across runs.
Targets are addressed by *locator* (layer + coordinates) rather than by
object so a schedule is not tied to one network instance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.node import Switch
    from repro.vnet.gateway import Gateway
    from repro.vnet.network import VirtualNetwork


class FaultKind(Enum):
    """What a fault event does when it fires."""

    SWITCH_FAIL = "switch-fail"
    SWITCH_RECOVER = "switch-recover"
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    LINK_LOSS = "link-loss"
    GATEWAY_CRASH = "gateway-crash"
    GATEWAY_RESTART = "gateway-restart"
    #: Planned maintenance: pull the gateway out of the hypervisors'
    #: load-balancing pool *before* it goes down, so new flows avoid it
    #: (rolling-maintenance drain; recovery is detected by the failure
    #: detector's probes after the subsequent restart).
    GATEWAY_DRAIN = "gateway-drain"
    #: Control-plane churn rather than a fault proper: live-migrate a
    #: VM to a located server.  Included so randomized schedules can
    #: exercise the lazy-invalidation path (stale caches, follow-me,
    #: misdelivery re-forwarding) alongside failures.
    VM_MIGRATE = "vm-migrate"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: at ``at_ns``, do ``kind`` to ``target``.

    Attributes:
        at_ns: absolute simulation time the fault fires.
        kind: the action (see :class:`FaultKind`).
        target: locator tuple — ``("tor", pod, rack)``,
            ``("spine", pod, index)``, ``("core", index)``,
            ``("gateway", index)`` or ``("link", kind..., ...)`` where a
            link is located by its two switch endpoints.
        loss_rate: only for LINK_LOSS — per-packet loss probability.
    """

    at_ns: int
    kind: FaultKind
    target: tuple
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ns}")
        if self.kind is FaultKind.LINK_LOSS and not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.loss_rate}")


class FaultSchedule:
    """A buildable, replayable list of timed fault events.

    Build with the fluent helpers (each returns ``self``)::

        schedule = (FaultSchedule()
                    .gateway_outage(gw=0, start_ns=msec(2), duration_ns=msec(2))
                    .switch_outage("spine", (0, 1), start_ns=msec(5),
                                   duration_ns=msec(1)))
        schedule.apply(network)

    ``apply`` schedules every event on the network's engine and, when
    any gateway event is present, starts the hypervisor-side gateway
    failure detector so failover actually happens.
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []
        #: (fired_at_ns, description) log filled in as events fire.
        self.fired: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> FaultSchedule:
        self.events.append(event)
        return self

    def fail_switch(self, at_ns: int, layer: str,
                    where: Any) -> FaultSchedule:
        """Fail the switch at ``where`` (see :meth:`_find_switch`)."""
        return self.add(FaultEvent(at_ns, FaultKind.SWITCH_FAIL,
                                   _switch_locator(layer, where)))

    def recover_switch(self, at_ns: int, layer: str,
                       where: Any) -> FaultSchedule:
        return self.add(FaultEvent(at_ns, FaultKind.SWITCH_RECOVER,
                                   _switch_locator(layer, where)))

    def switch_outage(self, layer: str, where: Any, start_ns: int,
                      duration_ns: int) -> FaultSchedule:
        """Fail at ``start_ns`` and recover ``duration_ns`` later."""
        self.fail_switch(start_ns, layer, where)
        return self.recover_switch(start_ns + duration_ns, layer, where)

    def link_down(self, at_ns: int, a_locator: tuple,
                  b_locator: tuple) -> FaultSchedule:
        """Cut the (unidirectional pair of the) cable between two switches."""
        return self.add(FaultEvent(at_ns, FaultKind.LINK_DOWN,
                                   ("link", a_locator, b_locator)))

    def link_up(self, at_ns: int, a_locator: tuple,
                b_locator: tuple) -> FaultSchedule:
        return self.add(FaultEvent(at_ns, FaultKind.LINK_UP,
                                   ("link", a_locator, b_locator)))

    def link_outage(self, a_locator: tuple, b_locator: tuple, start_ns: int,
                    duration_ns: int) -> FaultSchedule:
        self.link_down(start_ns, a_locator, b_locator)
        return self.link_up(start_ns + duration_ns, a_locator, b_locator)

    def link_loss(self, at_ns: int, a_locator: tuple, b_locator: tuple,
                  rate: float) -> FaultSchedule:
        """Impose per-packet random loss ``rate`` on the cable (0 clears)."""
        return self.add(FaultEvent(at_ns, FaultKind.LINK_LOSS,
                                   ("link", a_locator, b_locator), rate))

    def crash_gateway(self, at_ns: int, index: int) -> FaultSchedule:
        """Crash the ``index``-th gateway of the network."""
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_CRASH,
                                   ("gateway", index)))

    def restart_gateway(self, at_ns: int, index: int) -> FaultSchedule:
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_RESTART,
                                   ("gateway", index)))

    def drain_gateway(self, at_ns: int, index: int) -> FaultSchedule:
        """Remove the gateway from the load-balancing pool (planned)."""
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_DRAIN,
                                   ("gateway", index)))

    def gateway_outage(self, index: int, start_ns: int,
                       duration_ns: int) -> FaultSchedule:
        self.crash_gateway(start_ns, index)
        return self.restart_gateway(start_ns + duration_ns, index)

    def gateway_maintenance(self, index: int, drain_ns: int, crash_ns: int,
                            restart_ns: int) -> FaultSchedule:
        """Planned rolling maintenance: drain, then power-cycle.

        Draining first means new flows stop selecting the gateway
        before it goes dark; the detector's missed probes during the
        outage arm reinstatement, and its first healthy probe after
        ``restart_ns`` returns the gateway to the pool.
        """
        self.drain_gateway(drain_ns, index)
        self.crash_gateway(crash_ns, index)
        return self.restart_gateway(restart_ns, index)

    def migrate_vm(self, at_ns: int, vip: int, pod: int, rack: int,
                   host_index: int) -> FaultSchedule:
        """Live-migrate ``vip`` to the server at (pod, rack, host_index)."""
        return self.add(FaultEvent(at_ns, FaultKind.VM_MIGRATE,
                                   ("vm", int(vip), int(pod), int(rack),
                                    int(host_index))))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def has_gateway_events(self) -> bool:
        return any(event.kind in (FaultKind.GATEWAY_CRASH,
                                  FaultKind.GATEWAY_RESTART,
                                  FaultKind.GATEWAY_DRAIN)
                   for event in self.events)

    def first_fault_ns(self) -> int | None:
        """Time of the earliest fault (not recovery) event, if any."""
        starts = [e.at_ns for e in self.events
                  if e.kind in (FaultKind.SWITCH_FAIL, FaultKind.LINK_DOWN,
                                FaultKind.LINK_LOSS, FaultKind.GATEWAY_CRASH)]
        return min(starts, default=None)

    def last_recovery_ns(self) -> int | None:
        """Time of the latest recovery event, if any."""
        ends = [e.at_ns for e in self.events
                if e.kind in (FaultKind.SWITCH_RECOVER, FaultKind.LINK_UP,
                              FaultKind.GATEWAY_RESTART)]
        return max(ends, default=None)

    def last_event_ns(self) -> int | None:
        """Time of the latest event of any kind (migrations included)."""
        return max((e.at_ns for e in self.events), default=None)

    # ------------------------------------------------------------------
    # serialization (reproducer artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the schedule (events only, not ``fired``)."""
        return {"events": [
            {"at_ns": e.at_ns, "kind": e.kind.value,
             "target": _listify(e.target), "loss_rate": e.loss_rate}
            for e in self.events
        ]}

    @classmethod
    def from_dict(cls, data: dict) -> FaultSchedule:
        """Rebuild a schedule from :meth:`to_dict` output.

        Malformed input raises :class:`ValueError` naming the offending
        entry (``events[i]``) and what is wrong with it — reproducer
        artifacts are hand-editable, so schema errors must be loud and
        locatable, never a bare ``KeyError``.
        """
        if not isinstance(data, dict) or not isinstance(
                data.get("events"), list):
            raise ValueError(
                "fault schedule must be an object with an 'events' list, "
                f"got {type(data).__name__}")
        schedule = cls()
        for index, entry in enumerate(data["events"]):
            schedule.add(_event_from_dict(entry, index))
        return schedule

    def to_json(self) -> str:
        """Serialize to JSON; :meth:`from_json` round-trips exactly."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> FaultSchedule:
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, network: VirtualNetwork) -> None:
        """Bind to ``network``: schedule every event on its engine.

        Gateway events additionally enable the network's gateway
        failure detector (hypervisor-side failover); without it a
        crashed gateway would black-hole its flows for the whole run.
        """
        if self.has_gateway_events():
            network.enable_gateway_failover()
        for event in sorted(self.events, key=lambda e: e.at_ns):
            network.engine.schedule(event.at_ns, self._fire, network, event)

    def _fire(self, network: VirtualNetwork, event: FaultEvent) -> None:
        kind = event.kind
        if kind in (FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER):
            switch = self._find_switch(network, event.target)
            if kind is FaultKind.SWITCH_FAIL:
                switch.fail()
            else:
                switch.recover()
            label = f"{kind.value} {switch.name}"
        elif kind in (FaultKind.LINK_DOWN, FaultKind.LINK_UP):
            label = ""
            for link in self._find_links(network, event.target):
                network.fabric.set_link_state(link, kind is FaultKind.LINK_UP)
                label = f"{kind.value} {link.src.name}<->{link.dst.name}"
        elif kind is FaultKind.LINK_LOSS:
            rng = network.streams.stream("fault-link-loss")
            label = ""
            for link in self._find_links(network, event.target):
                link.set_loss(event.loss_rate, rng)
                label = (f"{kind.value} {event.loss_rate:.0%} "
                         f"{link.src.name}<->{link.dst.name}")
            # Loss configuration is not a fault-count transition, but
            # the hybrid engine must still observe it: a memoized-clean
            # path over this link is no longer replayable.
            on_fault = network.fabric.on_fault
            if label and on_fault is not None:
                on_fault()
        elif kind is FaultKind.VM_MIGRATE:
            label = self._fire_migration(network, event.target)
        else:
            gateway = self._find_gateway(network, event.target)
            if kind is FaultKind.GATEWAY_CRASH:
                gateway.fail()
            elif kind is FaultKind.GATEWAY_DRAIN:
                network.mark_gateway_down(gateway)
            else:
                gateway.recover()
            label = f"{kind.value} {gateway.name}"
        self.fired.append((network.engine.now, label))

    @staticmethod
    def _fire_migration(network: VirtualNetwork, target: tuple) -> str:
        """Resolve a ``("vm", vip, pod, rack, host)`` target and migrate.

        A target naming a VIP or server the network does not have is a
        logged no-op rather than an error: randomized schedules must
        stay applicable (and deterministic) across topologies.
        """
        from repro.net.addresses import make_pip
        _tag, vip, pod, rack, host_index = target
        host = network.host_by_pip.get(make_pip(pod, rack, host_index))
        if host is None or network.database.get(vip) is None:
            return (f"{FaultKind.VM_MIGRATE.value} vip {vip} -> "
                    f"({pod},{rack},{host_index}) skipped: no such vip/server")
        network.migrate(vip, host)
        return f"{FaultKind.VM_MIGRATE.value} vip {vip} -> {host.name}"

    # ------------------------------------------------------------------
    # locator resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _find_switch(network: VirtualNetwork, locator: tuple) -> Switch:
        fabric = network.fabric
        layer = locator[0]
        if layer == "tor":
            return fabric.tors[(locator[1], locator[2])]
        if layer == "spine":
            return fabric.spines[(locator[1], locator[2])]
        if layer == "core":
            return fabric.cores[locator[1]]
        raise ValueError(f"unknown switch locator {locator!r}")

    @classmethod
    def _find_links(cls, network: VirtualNetwork,
                    locator: tuple) -> list[Link]:
        """Both directions of the cable between two located switches."""
        _tag, a_loc, b_loc = locator
        a = cls._find_switch(network, a_loc)
        b = cls._find_switch(network, b_loc)
        return [network.fabric.link_between(a, b),
                network.fabric.link_between(b, a)]

    @staticmethod
    def _find_gateway(network: VirtualNetwork, locator: tuple) -> Gateway:
        return network.gateways[locator[1]]


#: Locator validators per fault family; see :class:`FaultEvent`.
_SWITCH_KINDS = frozenset((FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER))
_LINK_KINDS = frozenset((FaultKind.LINK_DOWN, FaultKind.LINK_UP,
                         FaultKind.LINK_LOSS))
_GW_KINDS = frozenset((FaultKind.GATEWAY_CRASH, FaultKind.GATEWAY_RESTART,
                       FaultKind.GATEWAY_DRAIN))


def _event_from_dict(entry: Any, index: int) -> FaultEvent:
    """One serialized event back into a validated :class:`FaultEvent`."""
    where = f"events[{index}]"
    if not isinstance(entry, dict):
        raise ValueError(f"{where}: expected an object, "
                         f"got {type(entry).__name__}")
    missing = [key for key in ("at_ns", "kind", "target") if key not in entry]
    if missing:
        raise ValueError(f"{where}: missing field(s) {', '.join(missing)}")
    raw_kind = entry["kind"]
    try:
        kind = FaultKind(raw_kind)
    except ValueError:
        known = ", ".join(sorted(member.value for member in FaultKind))
        raise ValueError(f"{where}: unknown FaultKind {raw_kind!r}; "
                         f"known kinds: {known}") from None
    target = _tuplify(entry["target"])
    _validate_locator(kind, target, where)
    try:
        at_ns = int(entry["at_ns"])
        loss_rate = float(entry.get("loss_rate", 0.0))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: non-numeric at_ns/loss_rate "
                         f"({exc})") from None
    return FaultEvent(at_ns=at_ns, kind=kind, target=target,
                      loss_rate=loss_rate)


def _is_switch_locator(value: Any) -> bool:
    if not isinstance(value, tuple) or not value:
        return False
    if value[0] == "core":
        return len(value) == 2 and isinstance(value[1], int)
    if value[0] in ("tor", "spine"):
        return len(value) == 3 and all(isinstance(v, int) for v in value[1:])
    return False


def _validate_locator(kind: FaultKind, target: Any, where: str) -> None:
    """Reject a target whose shape cannot address ``kind``'s object."""
    if kind in _SWITCH_KINDS:
        if not _is_switch_locator(target):
            raise ValueError(
                f"{where}: malformed switch locator {target!r} for "
                f"{kind.value}; expected ('tor', pod, rack), "
                "('spine', pod, index) or ('core', index)")
    elif kind in _LINK_KINDS:
        if not (isinstance(target, tuple) and len(target) == 3
                and target[0] == "link"
                and _is_switch_locator(target[1])
                and _is_switch_locator(target[2])):
            raise ValueError(
                f"{where}: malformed link locator {target!r} for "
                f"{kind.value}; expected ('link', switch_locator, "
                "switch_locator)")
    elif kind in _GW_KINDS:
        if not (isinstance(target, tuple) and len(target) == 2
                and target[0] == "gateway" and isinstance(target[1], int)):
            raise ValueError(
                f"{where}: malformed gateway locator {target!r} for "
                f"{kind.value}; expected ('gateway', index)")
    elif kind is FaultKind.VM_MIGRATE:
        if not (isinstance(target, tuple) and len(target) == 5
                and target[0] == "vm"
                and all(isinstance(v, int) for v in target[1:])):
            raise ValueError(
                f"{where}: malformed vm locator {target!r} for "
                f"{kind.value}; expected ('vm', vip, pod, rack, host_index)")


def _listify(value: Any) -> Any:
    """Recursively turn locator tuples into JSON-friendly lists."""
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


def _tuplify(value: Any) -> Any:
    """Inverse of :func:`_listify`: nested lists back into tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _switch_locator(layer: str, where: Any) -> tuple:
    """Normalize ``where`` into a locator tuple for ``layer``."""
    if layer not in ("tor", "spine", "core"):
        raise ValueError(f"unknown switch layer {layer!r}")
    if layer == "core":
        return ("core", int(where))
    pod, index = where
    return (layer, int(pod), int(index))
