"""Timed fault schedules: scripted chaos on the simulation clock.

A :class:`FaultSchedule` is a declarative list of fault events — fail
and recover a switch, cut and splice a link, impose random loss on a
link, crash and restart a gateway — applied to a
:class:`~repro.vnet.network.VirtualNetwork` before (or while) traffic
runs.  Because the same schedule object can be applied to networks
running different translation schemes, it is the controlled variable of
the resilience experiments: every scheme faces the identical fault
sequence and only the scheme's reaction differs.

The schedule is pure data until :meth:`FaultSchedule.apply` binds it to
a network; it can therefore be built once and replayed across runs.
Targets are addressed by *locator* (layer + coordinates) rather than by
object so a schedule is not tied to one network instance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.node import Switch
    from repro.vnet.gateway import Gateway
    from repro.vnet.network import VirtualNetwork


class FaultKind(Enum):
    """What a fault event does when it fires."""

    SWITCH_FAIL = "switch-fail"
    SWITCH_RECOVER = "switch-recover"
    LINK_DOWN = "link-down"
    LINK_UP = "link-up"
    LINK_LOSS = "link-loss"
    GATEWAY_CRASH = "gateway-crash"
    GATEWAY_RESTART = "gateway-restart"
    #: Planned maintenance: pull the gateway out of the hypervisors'
    #: load-balancing pool *before* it goes down, so new flows avoid it
    #: (rolling-maintenance drain; recovery is detected by the failure
    #: detector's probes after the subsequent restart).
    GATEWAY_DRAIN = "gateway-drain"
    #: Control-plane churn rather than a fault proper: live-migrate a
    #: VM to a located server.  Included so randomized schedules can
    #: exercise the lazy-invalidation path (stale caches, follow-me,
    #: misdelivery re-forwarding) alongside failures.
    VM_MIGRATE = "vm-migrate"
    # --- gray failures: degraded, not dead ---------------------------
    #: A lossy, slow cable: per-packet random loss plus propagation
    #: latency inflation on both directions.  Rate 0 and extra 0 heal.
    LINK_DEGRADE = "link-degrade"
    #: A flapping port: ``count`` down/up cycles, each half lasting
    #: ``period_ns``, starting the moment the event fires.
    LINK_FLAP = "link-flap"
    #: A switch whose control CPU or pipeline is overloaded: every
    #: forwarded packet is held ``extra_ns`` before egress.  0 heals.
    SWITCH_SLOW = "switch-slow"
    #: A browned-out gateway: still up, but sheds a fraction of
    #: arrivals (``loss_rate``) and adds queueing delay (``extra_ns``)
    #: to the rest.  The binary failure detector never sees it — only
    #: the gray (EWMA) detector can fail it out.  0/0 heals.
    GATEWAY_BROWNOUT = "gateway-brownout"
    #: Silent SRAM corruption: XOR bit ``bit`` into the PIP of the
    #: ``count``-th occupied line of the located switch's cache.
    CACHE_BITFLIP = "cache-bitflip"


#: Kinds whose ``loss_rate`` field is meaningful (and range-checked).
_LOSSY_KINDS = frozenset((FaultKind.LINK_LOSS, FaultKind.LINK_DEGRADE,
                          FaultKind.GATEWAY_BROWNOUT))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: at ``at_ns``, do ``kind`` to ``target``.

    Attributes:
        at_ns: absolute simulation time the fault fires.
        kind: the action (see :class:`FaultKind`).
        target: locator tuple — ``("tor", pod, rack)``,
            ``("spine", pod, index)``, ``("core", index)``,
            ``("gateway", index)`` or ``("link", kind..., ...)`` where a
            link is located by its two switch endpoints.
        loss_rate: LINK_LOSS / LINK_DEGRADE per-packet loss
            probability; GATEWAY_BROWNOUT per-arrival shed probability.
        extra_ns: LINK_DEGRADE propagation inflation, SWITCH_SLOW
            per-packet forwarding delay, GATEWAY_BROWNOUT added
            queueing delay (all absolute, not cumulative; 0 heals).
        period_ns: LINK_FLAP half-period (time down == time up).
        count: LINK_FLAP cycle count; CACHE_BITFLIP occupied-line
            ordinal (modulo occupancy at fire time).
        bit: CACHE_BITFLIP bit index XORed into the stored PIP.
    """

    at_ns: int
    kind: FaultKind
    target: tuple
    loss_rate: float = 0.0
    extra_ns: int = 0
    period_ns: int = 0
    count: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.at_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {self.at_ns}")
        if self.kind in _LOSSY_KINDS and not 0.0 <= self.loss_rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {self.loss_rate}")
        if self.extra_ns < 0 or self.period_ns < 0 or self.count < 0:
            raise ValueError(
                f"extra_ns/period_ns/count must be >= 0, got "
                f"{self.extra_ns}/{self.period_ns}/{self.count}")
        if self.kind is FaultKind.LINK_FLAP and (
                self.period_ns <= 0 or self.count < 1):
            raise ValueError(
                f"link flap needs period_ns > 0 and count >= 1, got "
                f"period_ns={self.period_ns}, count={self.count}")
        if not 0 <= self.bit < 64:
            raise ValueError(f"bit index must be in [0, 64), got {self.bit}")


class FaultSchedule:
    """A buildable, replayable list of timed fault events.

    Build with the fluent helpers (each returns ``self``)::

        schedule = (FaultSchedule()
                    .gateway_outage(gw=0, start_ns=msec(2), duration_ns=msec(2))
                    .switch_outage("spine", (0, 1), start_ns=msec(5),
                                   duration_ns=msec(1)))
        schedule.apply(network)

    ``apply`` schedules every event on the network's engine and, when
    any gateway event is present, starts the hypervisor-side gateway
    failure detector so failover actually happens.
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []
        #: (fired_at_ns, description) log filled in as events fire.
        self.fired: list[tuple[int, str]] = []
        #: ``(switch_id, vip, old_pip, new_pip)`` per CACHE_BITFLIP that
        #: actually corrupted a live line.  Oracles consult this so a
        #: deliberately injected corruption is not reported as a
        #: protocol coherence bug — only its *persistence* is.
        self.corruptions: list[tuple[int, int, int, int]] = []

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    def add(self, event: FaultEvent) -> FaultSchedule:
        self.events.append(event)
        return self

    def fail_switch(self, at_ns: int, layer: str,
                    where: Any) -> FaultSchedule:
        """Fail the switch at ``where`` (see :meth:`_find_switch`)."""
        return self.add(FaultEvent(at_ns, FaultKind.SWITCH_FAIL,
                                   _switch_locator(layer, where)))

    def recover_switch(self, at_ns: int, layer: str,
                       where: Any) -> FaultSchedule:
        return self.add(FaultEvent(at_ns, FaultKind.SWITCH_RECOVER,
                                   _switch_locator(layer, where)))

    def switch_outage(self, layer: str, where: Any, start_ns: int,
                      duration_ns: int) -> FaultSchedule:
        """Fail at ``start_ns`` and recover ``duration_ns`` later."""
        self.fail_switch(start_ns, layer, where)
        return self.recover_switch(start_ns + duration_ns, layer, where)

    def link_down(self, at_ns: int, a_locator: tuple,
                  b_locator: tuple) -> FaultSchedule:
        """Cut the (unidirectional pair of the) cable between two switches."""
        return self.add(FaultEvent(at_ns, FaultKind.LINK_DOWN,
                                   ("link", a_locator, b_locator)))

    def link_up(self, at_ns: int, a_locator: tuple,
                b_locator: tuple) -> FaultSchedule:
        return self.add(FaultEvent(at_ns, FaultKind.LINK_UP,
                                   ("link", a_locator, b_locator)))

    def link_outage(self, a_locator: tuple, b_locator: tuple, start_ns: int,
                    duration_ns: int) -> FaultSchedule:
        self.link_down(start_ns, a_locator, b_locator)
        return self.link_up(start_ns + duration_ns, a_locator, b_locator)

    def link_loss(self, at_ns: int, a_locator: tuple, b_locator: tuple,
                  rate: float) -> FaultSchedule:
        """Impose per-packet random loss ``rate`` on the cable (0 clears)."""
        return self.add(FaultEvent(at_ns, FaultKind.LINK_LOSS,
                                   ("link", a_locator, b_locator), rate))

    def crash_gateway(self, at_ns: int, index: int) -> FaultSchedule:
        """Crash the ``index``-th gateway of the network."""
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_CRASH,
                                   ("gateway", index)))

    def restart_gateway(self, at_ns: int, index: int) -> FaultSchedule:
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_RESTART,
                                   ("gateway", index)))

    def drain_gateway(self, at_ns: int, index: int) -> FaultSchedule:
        """Remove the gateway from the load-balancing pool (planned)."""
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_DRAIN,
                                   ("gateway", index)))

    def gateway_outage(self, index: int, start_ns: int,
                       duration_ns: int) -> FaultSchedule:
        self.crash_gateway(start_ns, index)
        return self.restart_gateway(start_ns + duration_ns, index)

    def gateway_maintenance(self, index: int, drain_ns: int, crash_ns: int,
                            restart_ns: int) -> FaultSchedule:
        """Planned rolling maintenance: drain, then power-cycle.

        Draining first means new flows stop selecting the gateway
        before it goes dark; the detector's missed probes during the
        outage arm reinstatement, and its first healthy probe after
        ``restart_ns`` returns the gateway to the pool.
        """
        self.drain_gateway(drain_ns, index)
        self.crash_gateway(crash_ns, index)
        return self.restart_gateway(restart_ns, index)

    def migrate_vm(self, at_ns: int, vip: int, pod: int, rack: int,
                   host_index: int) -> FaultSchedule:
        """Live-migrate ``vip`` to the server at (pod, rack, host_index)."""
        return self.add(FaultEvent(at_ns, FaultKind.VM_MIGRATE,
                                   ("vm", int(vip), int(pod), int(rack),
                                    int(host_index))))

    # --- gray failures ------------------------------------------------
    def degrade_link(self, at_ns: int, a_locator: tuple, b_locator: tuple,
                     rate: float = 0.0, extra_ns: int = 0) -> FaultSchedule:
        """Make the cable lossy and slow (rate 0 + extra 0 heals it)."""
        return self.add(FaultEvent(at_ns, FaultKind.LINK_DEGRADE,
                                   ("link", a_locator, b_locator),
                                   loss_rate=rate, extra_ns=int(extra_ns)))

    def link_degradation(self, a_locator: tuple, b_locator: tuple,
                         start_ns: int, duration_ns: int, rate: float,
                         extra_ns: int = 0) -> FaultSchedule:
        """Degrade at ``start_ns``, heal ``duration_ns`` later."""
        self.degrade_link(start_ns, a_locator, b_locator, rate, extra_ns)
        return self.degrade_link(start_ns + duration_ns, a_locator, b_locator)

    def flap_link(self, at_ns: int, a_locator: tuple, b_locator: tuple,
                  period_ns: int, count: int = 1) -> FaultSchedule:
        """Flap the cable: ``count`` down/up cycles of ``period_ns`` halves."""
        return self.add(FaultEvent(at_ns, FaultKind.LINK_FLAP,
                                   ("link", a_locator, b_locator),
                                   period_ns=int(period_ns), count=int(count)))

    def slow_switch(self, at_ns: int, layer: str, where: Any,
                    extra_ns: int) -> FaultSchedule:
        """Inflate the switch's forwarding delay by ``extra_ns`` (0 heals)."""
        return self.add(FaultEvent(at_ns, FaultKind.SWITCH_SLOW,
                                   _switch_locator(layer, where),
                                   extra_ns=int(extra_ns)))

    def switch_slowdown(self, layer: str, where: Any, start_ns: int,
                        duration_ns: int, extra_ns: int) -> FaultSchedule:
        """Slow at ``start_ns``, restore full speed ``duration_ns`` later."""
        self.slow_switch(start_ns, layer, where, extra_ns)
        return self.slow_switch(start_ns + duration_ns, layer, where, 0)

    def brownout_gateway(self, at_ns: int, index: int, drop_rate: float = 0.0,
                         extra_ns: int = 0) -> FaultSchedule:
        """Brown out the gateway: shed + delay arrivals (0/0 heals)."""
        return self.add(FaultEvent(at_ns, FaultKind.GATEWAY_BROWNOUT,
                                   ("gateway", index), loss_rate=drop_rate,
                                   extra_ns=int(extra_ns)))

    def gateway_brownout(self, index: int, start_ns: int, duration_ns: int,
                         drop_rate: float, extra_ns: int = 0) -> FaultSchedule:
        """Brownout window: degrade at ``start_ns``, heal after the window."""
        self.brownout_gateway(start_ns, index, drop_rate, extra_ns)
        return self.brownout_gateway(start_ns + duration_ns, index)

    def flip_cache_bit(self, at_ns: int, layer: str, where: Any,
                       entry: int = 0, bit: int = 0) -> FaultSchedule:
        """Corrupt one live line of the located switch's SRAM cache."""
        return self.add(FaultEvent(at_ns, FaultKind.CACHE_BITFLIP,
                                   _switch_locator(layer, where),
                                   count=int(entry), bit=int(bit)))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def has_gateway_events(self) -> bool:
        return any(event.kind in (FaultKind.GATEWAY_CRASH,
                                  FaultKind.GATEWAY_RESTART,
                                  FaultKind.GATEWAY_DRAIN,
                                  FaultKind.GATEWAY_BROWNOUT)
                   for event in self.events)

    def first_fault_ns(self) -> int | None:
        """Time of the earliest fault (not recovery) event, if any."""
        starts = [e.at_ns for e in self.events
                  if e.kind in (FaultKind.SWITCH_FAIL, FaultKind.LINK_DOWN,
                                FaultKind.LINK_LOSS, FaultKind.GATEWAY_CRASH,
                                FaultKind.LINK_FLAP, FaultKind.CACHE_BITFLIP)
                  or _is_gray_onset(e)]
        return min(starts, default=None)

    def last_recovery_ns(self) -> int | None:
        """Time of the latest recovery event, if any.

        A LINK_FLAP counts as recovering when its last up half-cycle
        lands; a gray event with zeroed degradation *is* the recovery.
        """
        ends = []
        for e in self.events:
            if e.kind in (FaultKind.SWITCH_RECOVER, FaultKind.LINK_UP,
                          FaultKind.GATEWAY_RESTART):
                ends.append(e.at_ns)
            elif e.kind is FaultKind.LINK_FLAP:
                ends.append(e.at_ns + (2 * e.count - 1) * e.period_ns)
            elif e.kind in _GRAY_HEALABLE and not _is_gray_onset(e):
                ends.append(e.at_ns)
        return max(ends, default=None)

    def last_event_ns(self) -> int | None:
        """Time of the latest event of any kind (migrations included)."""
        return max((e.at_ns for e in self.events), default=None)

    # ------------------------------------------------------------------
    # serialization (reproducer artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form of the schedule (events only, not ``fired``).

        The gray-failure fields are emitted only when nonzero so
        pre-gray reproducer artifacts stay byte-stable and hand-written
        schedules stay terse; :meth:`from_dict` defaults them to 0.
        """
        events = []
        for e in self.events:
            entry: dict[str, Any] = {"at_ns": e.at_ns, "kind": e.kind.value,
                                     "target": _listify(e.target),
                                     "loss_rate": e.loss_rate}
            for key in ("extra_ns", "period_ns", "count", "bit"):
                value = getattr(e, key)
                if value:
                    entry[key] = value
            events.append(entry)
        return {"events": events}

    @classmethod
    def from_dict(cls, data: dict) -> FaultSchedule:
        """Rebuild a schedule from :meth:`to_dict` output.

        Malformed input raises :class:`ValueError` naming the offending
        entry (``events[i]``) and what is wrong with it — reproducer
        artifacts are hand-editable, so schema errors must be loud and
        locatable, never a bare ``KeyError``.
        """
        if not isinstance(data, dict) or not isinstance(
                data.get("events"), list):
            raise ValueError(
                "fault schedule must be an object with an 'events' list, "
                f"got {type(data).__name__}")
        schedule = cls()
        for index, entry in enumerate(data["events"]):
            schedule.add(_event_from_dict(entry, index))
        return schedule

    def to_json(self) -> str:
        """Serialize to JSON; :meth:`from_json` round-trips exactly."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> FaultSchedule:
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, network: VirtualNetwork) -> None:
        """Bind to ``network``: schedule every event on its engine.

        Gateway events additionally enable the network's gateway
        failure detector (hypervisor-side failover); without it a
        crashed gateway would black-hole its flows for the whole run.
        """
        if self.has_gateway_events():
            network.enable_gateway_failover()
        for event in sorted(self.events, key=lambda e: e.at_ns):
            network.engine.schedule(event.at_ns, self._fire, network, event)

    def _fire(self, network: VirtualNetwork, event: FaultEvent) -> None:
        kind = event.kind
        if kind in (FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER):
            switch = self._find_switch(network, event.target)
            if kind is FaultKind.SWITCH_FAIL:
                switch.fail()
            else:
                switch.recover()
            label = f"{kind.value} {switch.name}"
        elif kind in (FaultKind.LINK_DOWN, FaultKind.LINK_UP):
            label = ""
            for link in self._find_links(network, event.target):
                network.fabric.set_link_state(link, kind is FaultKind.LINK_UP)
                label = f"{kind.value} {link.src.name}<->{link.dst.name}"
        elif kind is FaultKind.LINK_LOSS:
            rng = network.streams.stream("fault-link-loss")
            label = ""
            for link in self._find_links(network, event.target):
                link.set_loss(event.loss_rate, rng)
                label = (f"{kind.value} {event.loss_rate:.0%} "
                         f"{link.src.name}<->{link.dst.name}")
            # Loss configuration is not a fault-count transition, but
            # the hybrid engine must still observe it: a memoized-clean
            # path over this link is no longer replayable.
            on_fault = network.fabric.on_fault
            if label and on_fault is not None:
                on_fault()
        elif kind is FaultKind.LINK_DEGRADE:
            rng = network.streams.stream("fault-link-loss")
            label = ""
            for link in self._find_links(network, event.target):
                link.set_loss(event.loss_rate, rng)
                link.set_extra_latency(event.extra_ns)
                label = (f"{kind.value} {event.loss_rate:.0%} "
                         f"+{event.extra_ns}ns "
                         f"{link.src.name}<->{link.dst.name}")
            # Same hybrid-visibility rule as LINK_LOSS: degradation is
            # not a fault-count transition but invalidates clean memos
            # (latency changes are read live by the walk; loss diverts).
            on_fault = network.fabric.on_fault
            if label and on_fault is not None:
                on_fault()
        elif kind is FaultKind.LINK_FLAP:
            links = self._find_links(network, event.target)
            engine = network.engine
            for cycle in range(event.count):
                down_after = 2 * cycle * event.period_ns
                engine.schedule_after(down_after, self._set_links,
                                      network, links, False)
                engine.schedule_after(down_after + event.period_ns,
                                      self._set_links, network, links, True)
            label = (f"{kind.value} x{event.count} "
                     f"half-period {event.period_ns}ns "
                     f"{links[0].src.name}<->{links[0].dst.name}")
        elif kind is FaultKind.SWITCH_SLOW:
            switch = self._find_switch(network, event.target)
            switch.set_slowdown(event.extra_ns)
            label = f"{kind.value} +{event.extra_ns}ns {switch.name}"
        elif kind is FaultKind.CACHE_BITFLIP:
            label = self._fire_bitflip(network, event)
        elif kind is FaultKind.VM_MIGRATE:
            label = self._fire_migration(network, event.target)
        else:
            gateway = self._find_gateway(network, event.target)
            label = f"{kind.value} {gateway.name}"
            if kind is FaultKind.GATEWAY_CRASH:
                gateway.fail()
            elif kind is FaultKind.GATEWAY_DRAIN:
                network.mark_gateway_down(gateway)
            elif kind is FaultKind.GATEWAY_BROWNOUT:
                network.set_gateway_brownout(gateway, event.loss_rate,
                                             event.extra_ns)
                label = (f"{kind.value} {event.loss_rate:.0%} "
                         f"+{event.extra_ns}ns {gateway.name}")
            else:
                gateway.recover()
        self.fired.append((network.engine.now, label))

    @staticmethod
    def _set_links(network: VirtualNetwork, links: list[Link],
                   up: bool) -> None:
        """One flap half-cycle: toggle both directions of the cable."""
        for link in links:
            network.fabric.set_link_state(link, up)

    def _fire_bitflip(self, network: VirtualNetwork,
                      event: FaultEvent) -> str:
        """Corrupt one live cache line on the located switch.

        Schemes without per-switch caches (or with an empty cache at
        the located switch) make this a logged no-op, so one schedule
        stays applicable across schemes.
        """
        switch = self._find_switch(network, event.target)
        cache_of = getattr(network.scheme, "cache_of", None)
        cache = cache_of(switch) if cache_of is not None else None
        corrupt = getattr(cache, "corrupt_entry", None)
        flipped = corrupt(event.count, event.bit) if corrupt is not None \
            else None
        if flipped is None:
            return (f"{FaultKind.CACHE_BITFLIP.value} {switch.name} "
                    f"skipped: no corruptible cache entry")
        vip, old_pip, new_pip = flipped
        self.corruptions.append((switch.switch_id, vip, old_pip, new_pip))
        return (f"{FaultKind.CACHE_BITFLIP.value} {switch.name} "
                f"vip {vip}: {old_pip} -> {new_pip} (bit {event.bit})")

    @staticmethod
    def _fire_migration(network: VirtualNetwork, target: tuple) -> str:
        """Resolve a ``("vm", vip, pod, rack, host)`` target and migrate.

        A target naming a VIP or server the network does not have is a
        logged no-op rather than an error: randomized schedules must
        stay applicable (and deterministic) across topologies.
        """
        from repro.net.addresses import make_pip
        _tag, vip, pod, rack, host_index = target
        host = network.host_by_pip.get(make_pip(pod, rack, host_index))
        if host is None or network.database.get(vip) is None:
            return (f"{FaultKind.VM_MIGRATE.value} vip {vip} -> "
                    f"({pod},{rack},{host_index}) skipped: no such vip/server")
        network.migrate(vip, host)
        return f"{FaultKind.VM_MIGRATE.value} vip {vip} -> {host.name}"

    # ------------------------------------------------------------------
    # locator resolution
    # ------------------------------------------------------------------
    @staticmethod
    def _find_switch(network: VirtualNetwork, locator: tuple) -> Switch:
        fabric = network.fabric
        layer = locator[0]
        if layer == "tor":
            return fabric.tors[(locator[1], locator[2])]
        if layer == "spine":
            return fabric.spines[(locator[1], locator[2])]
        if layer == "core":
            return fabric.cores[locator[1]]
        raise ValueError(f"unknown switch locator {locator!r}")

    @classmethod
    def _find_links(cls, network: VirtualNetwork,
                    locator: tuple) -> list[Link]:
        """Both directions of the cable between two located switches."""
        _tag, a_loc, b_loc = locator
        a = cls._find_switch(network, a_loc)
        b = cls._find_switch(network, b_loc)
        return [network.fabric.link_between(a, b),
                network.fabric.link_between(b, a)]

    @staticmethod
    def _find_gateway(network: VirtualNetwork, locator: tuple) -> Gateway:
        return network.gateways[locator[1]]


#: Locator validators per fault family; see :class:`FaultEvent`.
_SWITCH_KINDS = frozenset((FaultKind.SWITCH_FAIL, FaultKind.SWITCH_RECOVER,
                           FaultKind.SWITCH_SLOW, FaultKind.CACHE_BITFLIP))
_LINK_KINDS = frozenset((FaultKind.LINK_DOWN, FaultKind.LINK_UP,
                         FaultKind.LINK_LOSS, FaultKind.LINK_DEGRADE,
                         FaultKind.LINK_FLAP))
_GW_KINDS = frozenset((FaultKind.GATEWAY_CRASH, FaultKind.GATEWAY_RESTART,
                       FaultKind.GATEWAY_DRAIN, FaultKind.GATEWAY_BROWNOUT))

#: Gray kinds where a zeroed event is the heal, not a fault onset.
_GRAY_HEALABLE = frozenset((FaultKind.LINK_DEGRADE, FaultKind.SWITCH_SLOW,
                            FaultKind.GATEWAY_BROWNOUT))

#: Every field a serialized event may carry; anything else is rejected
#: loudly (reproducers are hand-editable — a typoed knob must not be
#: silently dropped into a subtly different replay).
_EVENT_FIELDS = frozenset(("at_ns", "kind", "target", "loss_rate",
                           "extra_ns", "period_ns", "count", "bit"))


def _is_gray_onset(event: FaultEvent) -> bool:
    """True when a gray-healable event actually degrades something."""
    return (event.kind in _GRAY_HEALABLE
            and (event.loss_rate > 0.0 or event.extra_ns > 0))


def _event_from_dict(entry: Any, index: int) -> FaultEvent:
    """One serialized event back into a validated :class:`FaultEvent`."""
    where = f"events[{index}]"
    if not isinstance(entry, dict):
        raise ValueError(f"{where}: expected an object, "
                         f"got {type(entry).__name__}")
    missing = [key for key in ("at_ns", "kind", "target") if key not in entry]
    if missing:
        raise ValueError(f"{where}: missing field(s) {', '.join(missing)}")
    unknown = sorted(set(entry) - _EVENT_FIELDS)
    if unknown:
        raise ValueError(f"{where}: unknown field(s) {', '.join(unknown)}; "
                         f"known fields: {', '.join(sorted(_EVENT_FIELDS))}")
    raw_kind = entry["kind"]
    try:
        kind = FaultKind(raw_kind)
    except ValueError:
        known = ", ".join(sorted(member.value for member in FaultKind))
        raise ValueError(f"{where}: unknown FaultKind {raw_kind!r}; "
                         f"known kinds: {known}") from None
    target = _tuplify(entry["target"])
    _validate_locator(kind, target, where)
    try:
        at_ns = int(entry["at_ns"])
        loss_rate = float(entry.get("loss_rate", 0.0))
        extra_ns = int(entry.get("extra_ns", 0))
        period_ns = int(entry.get("period_ns", 0))
        count = int(entry.get("count", 0))
        bit = int(entry.get("bit", 0))
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{where}: non-numeric event field "
                         f"({exc})") from None
    try:
        return FaultEvent(at_ns=at_ns, kind=kind, target=target,
                          loss_rate=loss_rate, extra_ns=extra_ns,
                          period_ns=period_ns, count=count, bit=bit)
    except ValueError as exc:
        raise ValueError(f"{where}: {exc}") from None


def _is_switch_locator(value: Any) -> bool:
    if not isinstance(value, tuple) or not value:
        return False
    if value[0] == "core":
        return len(value) == 2 and isinstance(value[1], int)
    if value[0] in ("tor", "spine"):
        return len(value) == 3 and all(isinstance(v, int) for v in value[1:])
    return False


def _validate_locator(kind: FaultKind, target: Any, where: str) -> None:
    """Reject a target whose shape cannot address ``kind``'s object."""
    if kind in _SWITCH_KINDS:
        if not _is_switch_locator(target):
            raise ValueError(
                f"{where}: malformed switch locator {target!r} for "
                f"{kind.value}; expected ('tor', pod, rack), "
                "('spine', pod, index) or ('core', index)")
    elif kind in _LINK_KINDS:
        if not (isinstance(target, tuple) and len(target) == 3
                and target[0] == "link"
                and _is_switch_locator(target[1])
                and _is_switch_locator(target[2])):
            raise ValueError(
                f"{where}: malformed link locator {target!r} for "
                f"{kind.value}; expected ('link', switch_locator, "
                "switch_locator)")
    elif kind in _GW_KINDS:
        if not (isinstance(target, tuple) and len(target) == 2
                and target[0] == "gateway" and isinstance(target[1], int)):
            raise ValueError(
                f"{where}: malformed gateway locator {target!r} for "
                f"{kind.value}; expected ('gateway', index)")
    elif kind is FaultKind.VM_MIGRATE:
        if not (isinstance(target, tuple) and len(target) == 5
                and target[0] == "vm"
                and all(isinstance(v, int) for v in target[1:])):
            raise ValueError(
                f"{where}: malformed vm locator {target!r} for "
                f"{kind.value}; expected ('vm', vip, pod, rack, host_index)")


def _listify(value: Any) -> Any:
    """Recursively turn locator tuples into JSON-friendly lists."""
    if isinstance(value, tuple):
        return [_listify(item) for item in value]
    return value


def _tuplify(value: Any) -> Any:
    """Inverse of :func:`_listify`: nested lists back into tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def _switch_locator(layer: str, where: Any) -> tuple:
    """Normalize ``where`` into a locator tuple for ``layer``."""
    if layer not in ("tor", "spine", "core"):
        raise ValueError(f"unknown switch layer {layer!r}")
    if layer == "core":
        return ("core", int(where))
    pod, index = where
    return (layer, int(pod), int(index))
