"""Fault injection: timed schedules, chaos fuzzing, oracles, shrinking."""

from repro.faults.fuzz import FuzzConfig, generate_schedule
from repro.faults.oracles import OracleSuite, OracleViolation
from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.faults.shrink import ddmin

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "FuzzConfig",
    "generate_schedule",
    "OracleSuite",
    "OracleViolation",
    "ddmin",
]
