"""Fault injection: timed schedules of switch/link/gateway failures."""

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule

__all__ = ["FaultEvent", "FaultKind", "FaultSchedule"]
