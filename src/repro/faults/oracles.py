"""Runtime invariant oracles for chaos trials.

An :class:`OracleSuite` attaches to one :class:`VirtualNetwork` run and
watches the properties the paper's robustness story rests on — the
things a random fault schedule should *never* be able to break:

``misdelivery``
    A packet delivered to an endpoint is owned by that host *at
    delivery time* (the authoritative database maps its destination
    VIP to that host's PIP).  Stale caches may detour packets, but the
    lazy-invalidation protocol must never hand one to the wrong VM.
``forwarding-loop``
    No packet exceeds a hop bound.  Fat-tree up/down forwarding is
    structurally loop-free; the loop risk is misdelivery re-forwarding
    recirculating a packet forever, and every such cycle raises the
    hop count, so a generous bound catches it.
``conservation``
    Every packet a hypervisor sent is delivered, dropped with a
    recorded reason (switch/link/buffer drops, random loss, hard drops
    at unroutable hosts, crashed gateways, failed resolutions) or
    still in flight at the horizon.  Because the inlined switch
    forwarding path counts some drops at both the switch and the link,
    the check is a lower bound: accounted events must cover sends —
    silent vanishing still trips it.
``cache-coherence``
    No switch cache serves a ``(vip, pip)`` pair the control plane
    never published, and entries for never-migrated VIPs match the
    authoritative mapping.  Bounded staleness for migrated VIPs is
    enforced indirectly: a stale entry that misbehaves trips the
    misdelivery, loop or liveness oracle instead.
``liveness``
    After the last schedule event plus a grace period, every flow is
    terminal — completed or failed.  No permanently hung flow.
``terminal-reason``
    Every failed flow carries an explicit ``failure_reason``.
``structural``
    :func:`repro.vnet.validation.check_invariants` holds after every
    fault event and at the horizon (degraded states included — e.g. a
    failed switch must have lost its cache SRAM).

Violations are collected, not raised: a chaos trial always runs to its
horizon so one schedule produces one deterministic verdict.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any
from typing import TYPE_CHECKING

from repro.net.addresses import format_pip
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.schedule import FaultSchedule
    from repro.vnet.hypervisor import Host
    from repro.vnet.network import VirtualNetwork

#: Default per-packet hop ceiling.  The longest legitimate single pass
#: of a fat tree is 5 switches (ToR-spine-core-spine-ToR); a gateway
#: detour doubles it and each misdelivery re-forward adds another pass,
#: so 64 tolerates deep (legal) recirculation while still catching
#: unbounded loops within a millisecond of simulated time.
DEFAULT_HOP_BOUND = 64


@dataclass(frozen=True)
class OracleViolation:
    """One invariant breach: which oracle, when, and what happened."""

    oracle: str
    time_ns: int
    detail: str

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"[{self.oracle}] t={self.time_ns}ns {self.detail}"


class OracleSuite:
    """Invariant oracles hooked into one network for one run.

    Create the suite *after* VM placement (so the initial mappings are
    snapshot as published) and before traffic starts.  Then::

        suite = OracleSuite(network)
        schedule.apply(network)
        suite.watch_schedule(schedule)   # structural sweep per event
        network.run(until=horizon)
        suite.finish(horizon)            # end-of-run oracles
        assert not suite.violations

    Args:
        network: the network under test.
        hop_bound: per-packet hop ceiling for the loop oracle.
        max_violations: cap on recorded violations — a looping packet
            would otherwise grow the list once per cycle.
        on_violation: optional callback invoked with each recorded
            :class:`OracleViolation` as it happens.  Always-on service
            runs use it to fail fast (stop the engine, write a
            reproducer) instead of collecting a verdict at the horizon.
    """

    def __init__(self, network: VirtualNetwork,
                 hop_bound: int = DEFAULT_HOP_BOUND,
                 max_violations: int = 50,
                 on_violation: Callable[[OracleViolation], None] | None = None,
                 ) -> None:
        self.network = network
        self.hop_bound = hop_bound
        self.max_violations = max_violations
        self.on_violation = on_violation
        self.violations: list[OracleViolation] = []
        #: Every (vip, pip) pair the control plane ever published —
        #: the initial placement snapshot plus all later updates.
        self._published: set[tuple[int, int]] = set(
            (vip, pip) for vip, pip in network.database.items())
        #: VIPs that moved at least once (their stale pairs stay legal
        #: in caches until lazily invalidated).
        self._migrated: set[int] = set()
        #: VIPs retired from the database (tenant departure).  Their
        #: cached entries are legal staleness — the authoritative
        #: lookup now fails, so a detoured packet dies at a gateway
        #: with a counted resolution failure, never a wrong delivery.
        self._retired: set[int] = set()
        self._canary = False
        self._seen_structural: set[str] = set()
        self._seen_coherence: set[tuple] = set()
        self._finished = False
        #: The watched fault schedule (if any); its ``corruptions`` log
        #: tells the coherence oracle which unpublished (vip, pip)
        #: pairs are injected bit flips — those are the *staleness*
        #: oracle's to bound, not unpublished-mapping violations.
        self._schedule: FaultSchedule | None = None
        #: Bounded-staleness oracle state (off until configured).
        self._staleness_bound_ns = 0
        self._staleness_slack_ns = 0
        self._bad_first_seen: dict[tuple, int] = {}
        self._seen_stale: set[tuple] = set()
        network.database.subscribe(self._on_mapping_update)
        network.database.subscribe_removal(self._on_mapping_removal)
        self._wrap_hosts()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def _on_mapping_update(self, vip: int, old_pip: int, new_pip: int) -> None:
        self._published.add((vip, new_pip))
        if old_pip != -1 and old_pip != new_pip:
            self._migrated.add(vip)

    def _on_mapping_removal(self, vip: int, old_pip: int) -> None:
        self._retired.add(vip)

    def _wrap_hosts(self) -> None:
        for host in self.network.hosts:
            host.on_deliver = self._make_deliver_probe(host, host.on_deliver)
            host.on_misdeliver = self._make_misdeliver_probe(
                host, host.on_misdeliver)

    def _make_deliver_probe(self, host: Host,
                            inner: Callable[[Packet], None] | None,
                            ) -> Callable[[Packet], None]:
        db_get = self.network.database.get
        engine = self.network.engine

        def probe(packet: Packet) -> None:
            # Read primitives only — the packet object is recycled into
            # the freelist right after delivery.
            hops = packet.hops
            vip = packet.dst_vip
            if hops > self.hop_bound:
                self._report("forwarding-loop", engine._now,
                             f"packet flow={packet.flow_id} seq={packet.seq} "
                             f"delivered at {host.name} after {hops} hops "
                             f"(bound {self.hop_bound})")
            owner_pip = db_get(vip)
            if owner_pip != host.pip:
                self._report(
                    "misdelivery", engine._now,
                    f"packet for vip {vip} delivered at {host.name} "
                    f"({format_pip(host.pip)}) but the database maps it to "
                    f"{format_pip(owner_pip) if owner_pip is not None else 'nothing'}")
            if inner is not None:
                inner(packet)
        return probe

    def _make_misdeliver_probe(self, host: Host,
                               inner: Callable[[Packet], None] | None,
                               ) -> Callable[[Packet], None]:
        engine = self.network.engine

        def probe(packet: Packet) -> None:
            hops = packet.hops
            if hops > self.hop_bound:
                self._report("forwarding-loop", engine._now,
                             f"packet flow={packet.flow_id} seq={packet.seq} "
                             f"still circulating at {host.name} after {hops} "
                             f"hops (bound {self.hop_bound})")
            if inner is not None:
                inner(packet)
        return probe

    def watch_schedule(self, schedule: FaultSchedule) -> None:
        """Schedule a structural invariant sweep right after each event.

        Call after ``schedule.apply(network)``: sweeps are scheduled at
        the same timestamps but later in insertion order, so each one
        observes the fabric with its fault applied.
        """
        self._schedule = schedule
        for event in schedule.events:
            self.network.engine.schedule(event.at_ns, self._structural_sweep)

    def configure_staleness(self, bound_ns: int, audit_period_ns: int = 0,
                            check_interval_ns: int = 0) -> None:
        """Arm the bounded-staleness oracle.

        A cache entry is *bad* the moment it disagrees with the
        authoritative database (migration, retirement or corruption).
        The oracle tracks when each bad entry was first observed and
        reports a violation if one is still being served more than
        ``bound_ns + audit_period_ns`` later — i.e. the anti-entropy
        audit had a full period to repair it and did not.

        Args:
            bound_ns: the advertised staleness bound.
            audit_period_ns: grace added on top of the bound (one full
                audit period, since a sweep that starts just before an
                entry goes bad cannot repair it).
            check_interval_ns: when positive, a recurring engine timer
                re-checks at this cadence so violations surface mid-run
                (chaos trials); otherwise checks run only from
                :meth:`periodic_check` and :meth:`finish`.
        """
        if bound_ns <= 0:
            raise ValueError(f"staleness bound must be positive, got {bound_ns}")
        if audit_period_ns < 0 or check_interval_ns < 0:
            raise ValueError("staleness oracle periods must be non-negative")
        self._staleness_bound_ns = bound_ns
        self._staleness_slack_ns = audit_period_ns
        if check_interval_ns > 0:
            self.network.engine.schedule_timer(
                check_interval_ns, self._staleness_tick, check_interval_ns)

    def _staleness_tick(self, interval_ns: int) -> None:
        self._check_staleness(self.network.engine.now)
        self.network.engine.schedule_timer(
            interval_ns, self._staleness_tick, interval_ns)

    # ------------------------------------------------------------------
    # oracles
    # ------------------------------------------------------------------
    def _report(self, oracle: str, time_ns: int, detail: str) -> None:
        if len(self.violations) < self.max_violations:
            violation = OracleViolation(oracle, time_ns, detail)
            self.violations.append(violation)
            if self.on_violation is not None:
                self.on_violation(violation)

    def _structural_sweep(self) -> None:
        from repro.vnet.validation import check_invariants
        now = self.network.engine._now
        for issue in check_invariants(self.network):
            # The same broken invariant would otherwise re-report on
            # every later sweep; keep the first occurrence only.
            if issue not in self._seen_structural:
                self._seen_structural.add(issue)
                self._report("structural", now, issue)

    def periodic_check(self) -> None:
        """Run the mid-run-safe oracles now (always-on monitoring).

        Structural invariants and cache coherence are valid at any
        instant; conservation and liveness need a quiescent horizon and
        stay in :meth:`finish`.  Service mode calls this once per
        metrics window so a violation surfaces within one window of the
        event that caused it, not at the end of a multi-minute run.
        """
        self._structural_sweep()
        now = self.network.engine.now
        self._check_cache_coherence(now)
        self._check_staleness(now)

    def arm_canary(self) -> None:
        """Arm the synthetic always-failing oracle (harness self-test)."""
        self._canary = True

    def finish(self, horizon_ns: int, grace_ns: int | None = None) -> None:
        """Run the end-of-run oracles (idempotent).

        Args:
            horizon_ns: the time the run was driven to.
            grace_ns: when given, the liveness oracle is skipped unless
                the horizon leaves at least this much quiet time after
                the last schedule-driven disruption the caller knows
                about (callers that size their own horizon pass None).
        """
        if self._finished:
            return
        self._finished = True
        self._structural_sweep()
        self._check_conservation(horizon_ns)
        self._check_cache_coherence(horizon_ns)
        self._check_staleness(horizon_ns)
        self._check_liveness(horizon_ns)
        if self._canary:
            self._report("canary", horizon_ns,
                         "synthetic canary violation (harness self-test); "
                         "a run with the canary armed must fail")
        _ = grace_ns  # reserved for callers that cannot size the horizon

    def _check_conservation(self, horizon_ns: int) -> None:
        network = self.network
        fabric = network.fabric
        sent = sum(host.packets_sent for host in network.hosts)
        delivered = network.collector.deliveries
        switch_drops = sum(sw.stats.drops for sw in fabric.switches)
        link_drops = 0
        link_lost = 0
        for link in self._all_links():
            link_drops += link.stats.drops
            link_lost += link.stats.lost
        host_drops = sum(host.unroutable_drops for host in network.hosts)
        gateway_drops = sum(gw.dropped_while_failed + gw.dropped_brownout
                            + gw.resolution_failures
                            for gw in network.gateways)
        in_flight = self._in_flight()
        accounted = (delivered + switch_drops + link_drops + link_lost
                     + host_drops + gateway_drops + in_flight)
        if accounted < sent:
            self._report(
                "conservation", horizon_ns,
                f"{sent} packets sent but only {accounted} accounted for "
                f"(delivered={delivered} switch_drops={switch_drops} "
                f"link_drops={link_drops} lost={link_lost} "
                f"host_drops={host_drops} gateway_drops={gateway_drops} "
                f"in_flight={in_flight}): {sent - accounted} vanished "
                "without a recorded reason")

    def _all_links(self) -> Any:
        from repro.vnet.validation import _all_links
        return _all_links(self.network)

    def _in_flight(self) -> int:
        """Packets referenced by pending events (still on the wire).

        Walks the engine's calendar heap and timer wheel: link
        deliveries, gateway pipelines and misdelivery re-forward delays
        all hold their packet in the event args; transport/probe timers
        hold none.
        """
        engine = self.network.engine
        count = 0
        for entry in engine._queue:
            for arg in entry[3]:
                if isinstance(arg, Packet):
                    count += 1
                    break
        for bucket in engine._wheel:
            for timer in bucket:
                if timer.alive and any(isinstance(arg, Packet)
                                       for arg in timer.args):
                    count += 1
        for timer in engine._due:
            if timer.alive and any(isinstance(arg, Packet)
                                   for arg in timer.args):
                count += 1
        return count

    def _corruption_pairs(self) -> set[tuple[int, int]]:
        """(vip, pip) pairs injected by CACHE_BITFLIP events so far."""
        if self._schedule is None or not self._schedule.corruptions:
            return set()
        return {(vip, new_pip)
                for _switch_id, vip, _old_pip, new_pip
                in self._schedule.corruptions}

    def _check_cache_coherence(self, horizon_ns: int) -> None:
        scheme = self.network.scheme
        cache_of = getattr(scheme, "cache_of", None)
        if cache_of is None:
            return
        db_get = self.network.database.get
        corrupted = self._corruption_pairs()
        for switch in self.network.fabric.switches:
            cache = cache_of(switch)
            if cache is None:
                continue
            for vip, pip, _abit in cache.entries():
                if (vip, pip) in corrupted:
                    # A deliberately injected bit flip: unpublished by
                    # construction.  The staleness oracle bounds how
                    # long it may survive; re-flagging it here would
                    # fail every schedule containing the fault itself.
                    continue
                if (vip, pip) not in self._published:
                    key = (switch.name, vip, pip, "unpublished")
                    if key not in self._seen_coherence:
                        self._seen_coherence.add(key)
                        self._report(
                            "cache-coherence", horizon_ns,
                            f"{switch.name} caches vip {vip} -> "
                            f"{format_pip(pip)}, a mapping the control plane "
                            "never published")
                elif vip not in self._migrated and vip not in self._retired \
                        and db_get(vip) != pip:
                    key = (switch.name, vip, pip, "mismatch")
                    if key not in self._seen_coherence:
                        self._seen_coherence.add(key)
                        self._report(
                            "cache-coherence", horizon_ns,
                            f"{switch.name} caches vip {vip} -> "
                            f"{format_pip(pip)} but the vip never migrated "
                            f"away from {format_pip(db_get(vip))}")

    def _check_staleness(self, now_ns: int) -> None:
        """Bounded staleness: no bad entry outlives bound + slack.

        Tracks the first time each disagreeing (switch, vip, pip)
        triple is observed; entries repaired between checks drop out of
        tracking.  Detection granularity is the check cadence, so run
        with ``check_interval_ns`` well under the bound.
        """
        bound = self._staleness_bound_ns
        if not bound:
            return
        scheme = self.network.scheme
        cache_of = getattr(scheme, "cache_of", None)
        if cache_of is None:
            return
        db_get = self.network.database.get
        limit = bound + self._staleness_slack_ns
        first_seen = self._bad_first_seen
        current_bad = set()
        for switch in self.network.fabric.switches:
            cache = cache_of(switch)
            if cache is None:
                continue
            for vip, pip, _abit in cache.entries():
                if db_get(vip) == pip:
                    continue
                key = (switch.name, vip, pip)
                current_bad.add(key)
                first = first_seen.setdefault(key, now_ns)
                if now_ns - first > limit and key not in self._seen_stale:
                    self._seen_stale.add(key)
                    self._report(
                        "bounded-staleness", now_ns,
                        f"{switch.name} still serves vip {vip} -> "
                        f"{format_pip(pip)} {now_ns - first}ns after it went "
                        f"bad (bound {bound}ns + audit slack "
                        f"{self._staleness_slack_ns}ns)")
        # Entries repaired since the last check leave tracking, so a
        # re-corruption later restarts its clock.
        if len(current_bad) != len(first_seen):
            self._bad_first_seen = {key: seen for key, seen in first_seen.items()
                                    if key in current_bad}

    def _check_liveness(self, horizon_ns: int) -> None:
        hung = [record for record in self.network.collector.flows.values()
                if not record.completed and not record.failed]
        if hung:
            ids = ", ".join(str(r.flow_id) for r in hung[:5])
            self._report(
                "liveness", horizon_ns,
                f"{len(hung)} flow(s) neither completed nor failed at the "
                f"horizon (e.g. flow ids {ids}) — a hung flow without a "
                "terminal state")
        for record in self.network.collector.flows.values():
            if record.failed and record.failure_reason is None:
                self._report(
                    "terminal-reason", horizon_ns,
                    f"flow {record.flow_id} failed without an explicit "
                    "failure_reason")
                break
