"""Fat-tree fabric construction and switch-to-switch path computation.

The builder produces the two-level-pod + core fabric the paper
evaluates on (Table 3): each pod has ``racks_per_pod`` ToR switches and
``spines_per_pod`` spine switches in a full bipartite mesh; cores are
partitioned into one group per spine index, and core group *j* connects
spine *j* of every pod (the classic fat-tree wiring).  Gateways attach
to a designated *gateway ToR* (the last rack) in each gateway pod,
matching the paper's Figure 8 layout where pod 8's switch 8 is the
gateway ToR.

The fabric is purely physical: hosts and gateways are attached later by
the virtualization layer (:mod:`repro.vnet.fabric`), keeping the
layering identical to a real deployment where the overlay is built on
an existing underlay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import make_pip
from repro.net.link import Link
from repro.net.node import Layer, Node, Switch, ecmp_index
from repro.sim.engine import Engine


@dataclass(frozen=True)
class FatTreeSpec:
    """Parameters of a fat-tree fabric.

    Defaults correspond to the paper's FT8-10K topology scaled by
    server count (8 pods x 4 racks x 4 servers = 128 servers, 32 ToRs,
    32 spines, 16 cores = 80 switches; gateways in pods 1,3,6,8 —
    zero-based 0,2,5,7).
    """

    pods: int = 8
    racks_per_pod: int = 4
    servers_per_rack: int = 4
    spines_per_pod: int = 4
    num_cores: int = 16
    gateway_pods: tuple[int, ...] = (0, 2, 5, 7)
    gateways_per_pod: int = 10
    host_link_bps: float = 100e9
    fabric_link_bps: float = 400e9
    propagation_ns: int = 1_000
    buffer_bytes: int = 32 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.pods < 1:
            raise ValueError("need at least one pod")
        if self.num_cores and self.num_cores % self.spines_per_pod != 0:
            raise ValueError(
                f"num_cores ({self.num_cores}) must be a multiple of "
                f"spines_per_pod ({self.spines_per_pod}) for group wiring"
            )
        for pod in self.gateway_pods:
            if not 0 <= pod < self.pods:
                raise ValueError(f"gateway pod {pod} outside [0, {self.pods})")

    @property
    def num_servers(self) -> int:
        return self.pods * self.racks_per_pod * self.servers_per_rack

    @property
    def num_gateways(self) -> int:
        return len(self.gateway_pods) * self.gateways_per_pod

    @property
    def num_switches(self) -> int:
        return self.pods * (self.racks_per_pod + self.spines_per_pod) + self.num_cores

    @property
    def gateway_rack(self) -> int:
        """Rack index of the gateway ToR within gateway pods."""
        return self.racks_per_pod - 1


class Fabric:
    """A wired fat-tree switch fabric with host attachment points."""

    def __init__(self, engine: Engine, spec: FatTreeSpec) -> None:
        self.engine = engine
        self.spec = spec
        self.tors: dict[tuple[int, int], Switch] = {}
        self.spines: dict[tuple[int, int], Switch] = {}
        self.cores: list[Switch] = []
        self.switches: list[Switch] = []
        self.switch_by_id: dict[int, Switch] = {}
        self._switch_links: dict[tuple[int, int], Link] = {}
        self._next_switch_id = 0
        #: Pods whose ToR<->spine mesh and spine<->core uplinks have
        #: been wired.  Link objects dominate a large fabric's memory
        #: and construction time, so cables are created lazily per pod
        #: on first attachment or path computation; a pod that never
        #: sees traffic never allocates its links.
        self._wired_pods: set[int] = set()
        #: Count of currently-active faults (failed switches, downed
        #: links).  While zero, forwarding skips the deeper down-path
        #: liveness checks, keeping the fault-free hot path cheap.
        self.fault_count = 0
        #: Zero-arg observer fired on every fault transition (hybrid
        #: fidelity: path validity may have changed for any fluid flow).
        self.on_fault = None
        self._build()

    @property
    def faults_active(self) -> bool:
        return self.fault_count > 0

    def note_fault(self, delta: int) -> None:
        """Record a fault appearing (+1) or clearing (-1).

        Every transition also flushes the per-switch ECMP memo tables:
        memoized next hops are only valid for a fault-free fabric, and
        after recovery they must be re-derived rather than trusted.
        """
        self.fault_count += delta
        if self.fault_count < 0:  # defensive: unmatched recover calls
            self.fault_count = 0
        for switch in self.switches:
            memo = switch._ecmp_memo
            if memo:
                memo.clear()
        cb = self.on_fault
        if cb is not None:
            cb()

    def set_link_state(self, link: Link, up: bool) -> None:
        """Take a link down / bring it up, with fault accounting."""
        if link.up == up:
            return
        link.up = up
        self.note_fault(-1 if up else 1)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_switch(self, name: str, layer: Layer, pod: int, index: int) -> Switch:
        switch = Switch(name, self._next_switch_id, layer, pod, index)
        switch.fabric = self
        self._next_switch_id += 1
        self.switches.append(switch)
        self.switch_by_id[switch.switch_id] = switch
        return switch

    def _wire(self, a: Switch, b: Switch) -> tuple[Link, Link]:
        """Create the two directed links of a switch-to-switch cable."""
        spec = self.spec
        forward = Link(self.engine, a, b, spec.fabric_link_bps, spec.propagation_ns,
                       spec.buffer_bytes)
        backward = Link(self.engine, b, a, spec.fabric_link_bps, spec.propagation_ns,
                        spec.buffer_bytes)
        self._switch_links[(a.switch_id, b.switch_id)] = forward
        self._switch_links[(b.switch_id, a.switch_id)] = backward
        return forward, backward

    def _build(self) -> None:
        """Create every switch; cables are wired lazily per pod.

        Switch port tables are presized, list-indexed arrays (rack ->
        link at spines, pod -> link at cores): the index domains are
        bounded by the spec, so a flat array replaces the hash table on
        the per-hop forwarding path and per-switch memory stays compact
        at large ``k``.
        """
        spec = self.spec
        for pod in range(spec.pods):
            for rack in range(spec.racks_per_pod):
                self.tors[(pod, rack)] = self._new_switch(
                    f"tor-p{pod}r{rack}", Layer.TOR, pod, rack)
            for j in range(spec.spines_per_pod):
                spine = self._new_switch(f"spine-p{pod}s{j}", Layer.SPINE, pod, j)
                spine.down_links = [None] * spec.racks_per_pod
                self.spines[(pod, j)] = spine
        for c in range(spec.num_cores):
            core = self._new_switch(f"core-{c}", Layer.CORE, -1, c)
            core.pod_links = [None] * spec.pods
            self.cores.append(core)

    def _ensure_pod(self, pod: int) -> None:
        """Wire pod ``pod``'s internal mesh and core uplinks on demand.

        Traffic can only originate at or target attached hosts, and
        attachment wires the pod, so forwarding never encounters an
        unwired link table; cross-pod transit uses only the two end
        pods' cables (ToR->spine->core->spine->ToR).
        """
        if pod in self._wired_pods or not 0 <= pod < self.spec.pods:
            return
        self._wired_pods.add(pod)
        spec = self.spec
        # ToR <-> spine full mesh within the pod.
        for rack in range(spec.racks_per_pod):
            tor = self.tors[(pod, rack)]
            for j in range(spec.spines_per_pod):
                spine = self.spines[(pod, j)]
                up, down = self._wire(tor, spine)
                tor.up_links.append(up)
                spine.down_links[rack] = down
        # Spine j <-> its core group.
        group_size = spec.num_cores // spec.spines_per_pod if spec.spines_per_pod else 0
        for j in range(spec.spines_per_pod):
            spine = self.spines[(pod, j)]
            for g in range(group_size):
                core = self.cores[j * group_size + g]
                up, down = self._wire(spine, core)
                spine.up_links.append(up)
                core.pod_links[pod] = down

    def ensure_wired(self) -> None:
        """Eagerly wire every pod (structural validation, link sweeps)."""
        for pod in range(self.spec.pods):
            self._ensure_pod(pod)

    # ------------------------------------------------------------------
    # host / gateway attachment
    # ------------------------------------------------------------------
    def attach_host(self, node: Node, pod: int, rack: int, host_index: int,
                    rate_bps: float | None = None) -> tuple[int, Link]:
        """Attach ``node`` under ToR (pod, rack) at ``host_index``.

        Returns:
            The assigned PIP and the node's uplink to its ToR.
        """
        spec = self.spec
        self._ensure_pod(pod)
        pip = make_pip(pod, rack, host_index)
        tor = self.tors[(pod, rack)]
        if pip in tor.host_links:
            raise ValueError(f"host slot already taken: pod={pod} rack={rack} "
                             f"host={host_index}")
        rate = rate_bps if rate_bps is not None else spec.host_link_bps
        uplink = Link(self.engine, node, tor, rate, spec.propagation_ns,
                      spec.buffer_bytes)
        downlink = Link(self.engine, tor, node, rate, spec.propagation_ns,
                        spec.buffer_bytes)
        tor.host_links[pip] = downlink
        tor.attached_pips.add(pip)
        return pip, uplink

    # ------------------------------------------------------------------
    # lookup helpers
    # ------------------------------------------------------------------
    def tor_of(self, pod: int, rack: int) -> Switch:
        return self.tors[(pod, rack)]

    def link_between(self, a: Switch, b: Switch) -> Link:
        """The directed link from switch ``a`` to switch ``b``."""
        link = self._switch_links.get((a.switch_id, b.switch_id))
        if link is None:
            self._ensure_pod(a.pod)
            self._ensure_pod(b.pod)
            link = self._switch_links[(a.switch_id, b.switch_id)]
        return link

    def gateway_tor_ids(self) -> set[int]:
        """Switch ids of gateway ToRs (paper §3.2: role assignment)."""
        rack = self.spec.gateway_rack
        return {self.tors[(pod, rack)].switch_id for pod in self.spec.gateway_pods}

    def gateway_spine_ids(self) -> set[int]:
        """Switch ids of spines directly attached to a gateway ToR."""
        ids = set()
        for pod in self.spec.gateway_pods:
            for j in range(self.spec.spines_per_pod):
                ids.add(self.spines[(pod, j)].switch_id)
        return ids

    # ------------------------------------------------------------------
    # switch-to-switch paths (invalidation packet routing, §3.3)
    # ------------------------------------------------------------------
    def path_from_tor(self, tor: Switch, target: Switch, key: int) -> list[Link]:
        """Hop-by-hop links from ``tor`` to an arbitrary ``target`` switch.

        Invalidation packets are addressed to switches, not hosts, so
        the generating ToR computes the route explicitly (it can: PIPs
        and switch identifiers encode topology coordinates).
        """
        if tor.layer != Layer.TOR:
            raise ValueError(f"paths originate at ToRs, got {tor}")
        if target is tor:
            return []
        self._ensure_pod(tor.pod)
        self._ensure_pod(target.pod)
        spec = self.spec
        group_size = spec.num_cores // spec.spines_per_pod

        if target.layer == Layer.TOR:
            j = ecmp_index(key, 17, spec.spines_per_pod)
            first = self.spines[(tor.pod, j)]
            if target.pod == tor.pod:
                return [self.link_between(tor, first),
                        self.link_between(first, target)]
            core = self.cores[j * group_size + ecmp_index(key, 31, group_size)]
            far = self.spines[(target.pod, j)]
            return [self.link_between(tor, first),
                    self.link_between(first, core),
                    self.link_between(core, far),
                    self.link_between(far, target)]

        if target.layer == Layer.SPINE:
            j = target.rack
            local = self.spines[(tor.pod, j)]
            if target.pod == tor.pod:
                return [self.link_between(tor, local)]
            core = self.cores[j * group_size + ecmp_index(key, 31, group_size)]
            return [self.link_between(tor, local),
                    self.link_between(local, core),
                    self.link_between(core, target)]

        # Core target: reachable via this pod's spine of the core's group.
        j = target.rack // group_size
        local = self.spines[(tor.pod, j)]
        return [self.link_between(tor, local),
                self.link_between(local, target)]
