"""Point-to-point links with FIFO queueing, serialization and drops.

Each :class:`Link` is unidirectional and models a single-server FIFO
queue: a packet admitted at time *t* begins serialization when the link
becomes free, occupies the link for ``wire_bytes * 8 / rate`` and
arrives at the peer one propagation delay later.  The backlog implied
by ``busy_until`` is the queue occupancy; packets that would push it
past the configured buffer are dropped.  This is the standard
store-and-forward abstraction NS3 point-to-point devices implement, so
gateway-pod congestion (paper Figures 7/8) emerges from the same
mechanics as in the paper's simulations.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING

from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Node
    from repro.net.packet import Packet


#: Serialization-time caches shared by every link of a given line rate.
#: ``wire_bytes -> ns`` is a pure function of (size, rate), and a
#: topology has a handful of distinct rates but up to tens of thousands
#: of links — one shared dict per rate replaces one dict per link.
_SER_CACHES: dict[float, dict[int, int]] = {}


class LinkStats:
    """Byte/packet/drop counters for one link direction."""

    __slots__ = ("packets", "bytes", "drops", "lost")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.drops = 0
        #: Packets lost to random corruption (``loss_rate``), as opposed
        #: to tail drops or the link being administratively down.
        self.lost = 0


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Args:
        engine: simulation engine used to schedule deliveries.
        src: transmitting node (kept for introspection/debugging).
        dst: receiving node; its ``receive`` method is the delivery
            callback.
        rate_bps: line rate in bits per second.
        propagation_ns: signal propagation delay in nanoseconds.
        buffer_bytes: maximum queue backlog before tail drop.
    """

    __slots__ = (
        "engine",
        "src",
        "dst",
        "_rate_bps",
        "propagation_ns",
        "buffer_bytes",
        "up",
        "loss_rate",
        "_loss_rng",
        "_base_propagation_ns",
        "_busy_until",
        "stats",
        "_deliver",
        "_ser_cache",
        "_src_is_host",
    )

    def __init__(
        self,
        engine: Engine,
        src: Node,
        dst: Node,
        rate_bps: float,
        propagation_ns: int,
        buffer_bytes: int,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        if propagation_ns < 0:
            raise ValueError(f"negative propagation delay: {propagation_ns}")
        self.engine = engine
        self.src = src
        self.dst = dst
        self._rate_bps = rate_bps
        self.propagation_ns = propagation_ns
        self.buffer_bytes = buffer_bytes
        #: Administrative/physical state: a down link drops everything
        #: offered to it (fiber cut, transceiver failure).  Neighbours
        #: route around down links where equal-cost siblings exist.
        self.up = True
        #: Per-packet random loss probability (bit errors, flaky optics).
        self.loss_rate = 0.0
        self._loss_rng = None
        #: Healthy propagation delay; :meth:`set_extra_latency` inflates
        #: ``propagation_ns`` relative to this (gray link degradation).
        self._base_propagation_ns = propagation_ns
        self._busy_until = 0
        self.stats = LinkStats()
        #: Delivery callback bound once (dst never changes after
        #: wiring) — saves two attribute lookups per transmitted packet.
        self._deliver = dst.receive
        #: Serialization times per wire size, shared across all links
        #: of this rate; traces use a handful of distinct packet sizes,
        #: so this cache is tiny and hot.
        self._ser_cache = _SER_CACHES.setdefault(rate_bps, {})
        #: NOTE: ``rate_bps`` is a property; assigning it (tests that
        #: throttle a live link) rebinds ``_ser_cache`` to the new
        #: rate's shared dict so stale times are neither served nor
        #: written into another rate's cache.
        #: True when ``src`` is an end-host hypervisor (set by the
        #: network builder).  ToRs consult this for misdelivery tagging
        #: instead of an isinstance check per packet; gateways attach
        #: at host ports too but deliberately stay False.
        self._src_is_host = False

    @property
    def rate_bps(self) -> float:
        """Line rate in bits per second (hot paths read the slot)."""
        return self._rate_bps

    @rate_bps.setter
    def rate_bps(self, rate_bps: float) -> None:
        if rate_bps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_bps}")
        self._rate_bps = rate_bps
        self._ser_cache = _SER_CACHES.setdefault(rate_bps, {})

    def set_loss(self, rate: float, rng) -> None:
        """Configure random loss with probability ``rate`` per packet.

        Args:
            rate: loss probability in [0, 1]; 0 disables loss.
            rng: a ``random()``-bearing generator (e.g. a numpy
                Generator from :class:`repro.sim.randomness.RandomStreams`)
                so loss is reproducible for a fixed seed.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.loss_rate = rate
        self._loss_rng = rng if rate > 0.0 else None

    def set_extra_latency(self, extra_ns: int) -> None:
        """Inflate propagation delay by ``extra_ns`` over the healthy base.

        Gray degradation (congested optics, rerouted patch panel): the
        inflation is absolute, not cumulative — a second call replaces
        the first, and 0 restores the built delay.  In-flight packets
        keep the delay that was current when they were transmitted.
        """
        if extra_ns < 0:
            raise ValueError(f"negative latency inflation: {extra_ns}")
        self.propagation_ns = self._base_propagation_ns + extra_ns

    def queue_backlog_bytes(self, now: int) -> int:
        """Bytes currently waiting or in transmission on this link."""
        pending_ns = self._busy_until - now
        if pending_ns <= 0:
            return 0
        return int(pending_ns * self._rate_bps / 8e9)

    def serialization_ns(self, wire_bytes: int) -> int:
        """Time to clock ``wire_bytes`` onto the wire, in nanoseconds."""
        ns = self._ser_cache.get(wire_bytes)
        if ns is None:
            ns = int(round(wire_bytes * 8e9 / self._rate_bps))
            self._ser_cache[wire_bytes] = ns
        return ns

    def transmit(self, packet: Packet) -> bool:
        """Enqueue ``packet`` for transmission.

        Returns:
            True if the packet was admitted, False if it was tail-dropped
            or the link is down.

        This is the per-hop hot path: the backlog computation is the
        inlined body of :meth:`queue_backlog_bytes`, serialization
        times come from a per-size cache (the steady state does no
        floating-point math at all), the wire size is read through the
        packet's cache slot, and the delivery event is pushed onto the
        calendar directly — ``Engine.schedule_after`` minus the call
        and the negative-delay check, which ``finish >= now`` and a
        non-negative propagation delay make redundant here.
        """
        stats = self.stats
        if not self.up:
            stats.drops += 1
            return False
        engine = self.engine
        now = engine._now
        busy = self._busy_until
        size = packet._wire_bytes
        pending_ns = busy - now
        backlog = int(pending_ns * self._rate_bps / 8e9) if pending_ns > 0 else 0
        if backlog + size > self.buffer_bytes:
            stats.drops += 1
            return False
        start = busy if busy > now else now
        ser_ns = self._ser_cache.get(size)
        if ser_ns is None:
            ser_ns = int(round(size * 8e9 / self._rate_bps))
            self._ser_cache[size] = ser_ns
        finish = start + ser_ns
        self._busy_until = finish
        stats.packets += 1
        stats.bytes += size
        if self._loss_rng is not None \
                and self._loss_rng.random() < self.loss_rate:
            # The packet occupied the wire but arrives corrupted; the
            # sender sees it as admitted (loss is invisible until the
            # transport times out), so still return True.
            stats.lost += 1
            return True
        heappush(engine._queue, (finish + self.propagation_ns,
                                 engine._sequence, self._deliver,
                                 (packet, self)))
        engine._sequence += 1
        return True
