"""Virtual and physical addresses.

Virtual IPs (VIPs) are flat identifiers with no location information —
exactly the property that forces virtual-to-physical translation in the
first place (paper §1).  Physical IPs (PIPs) are hierarchical: the pod,
rack and host index are encoded in the address, mirroring real data
center addressing plans.  The hierarchy is what lets any switch compute
the ToR serving a given PIP, which the learning-packet mechanism
(paper §3.2.2, footnote 4) relies on.

Both address kinds are plain ``int`` values for speed; the functions in
this module pack, unpack and pretty-print them.
"""

from __future__ import annotations

# Bit layout of a PIP:  [pod:14][rack:10][host:12]
_HOST_BITS = 12
_RACK_BITS = 10
_POD_BITS = 14
_HOST_MASK = (1 << _HOST_BITS) - 1
_RACK_MASK = (1 << _RACK_BITS) - 1
_POD_MASK = (1 << _POD_BITS) - 1

MAX_HOSTS_PER_RACK = _HOST_MASK + 1
MAX_RACKS_PER_POD = _RACK_MASK + 1
MAX_PODS = _POD_MASK + 1

#: Sentinel used as the outer destination before translation.  Real
#: deployments fix well-known gateway anycast addresses (paper §3.1);
#: the concrete gateway PIP is chosen per flow by the sender's
#: hypervisor, so this sentinel never appears on the wire.
UNRESOLVED = -1

#: Interning table for packed PIPs: every distinct address is boxed
#: once and every later ``make_pip`` of the same coordinates returns
#: the same object.  Addresses outgrow CPython's small-int cache, and
#: at 100k+ VM scale each PIP is referenced from many tables (host,
#: ToR attachment, mapping database, follow-me rules) — one canonical
#: object per address keeps those references shared.
_PIP_INTERN: dict[int, int] = {}


def make_pip(pod: int, rack: int, host: int) -> int:
    """Pack (pod, rack, host) into an interned physical IP.

    Raises:
        ValueError: if any coordinate exceeds the field width.
    """
    if not 0 <= pod <= _POD_MASK:
        raise ValueError(f"pod {pod} out of range [0, {_POD_MASK}]")
    if not 0 <= rack <= _RACK_MASK:
        raise ValueError(f"rack {rack} out of range [0, {_RACK_MASK}]")
    if not 0 <= host <= _HOST_MASK:
        raise ValueError(f"host {host} out of range [0, {_HOST_MASK}]")
    pip = (pod << (_RACK_BITS + _HOST_BITS)) | (rack << _HOST_BITS) | host
    return _PIP_INTERN.setdefault(pip, pip)


def pip_pod(pip: int) -> int:
    """Pod index encoded in a PIP."""
    return (pip >> (_RACK_BITS + _HOST_BITS)) & _POD_MASK


def pip_rack(pip: int) -> int:
    """Rack index (within its pod) encoded in a PIP."""
    return (pip >> _HOST_BITS) & _RACK_MASK


def pip_host(pip: int) -> int:
    """Host index (within its rack) encoded in a PIP."""
    return pip & _HOST_MASK


def split_pip(pip: int) -> tuple[int, int, int]:
    """Unpack a PIP into ``(pod, rack, host)``."""
    return pip_pod(pip), pip_rack(pip), pip_host(pip)


def format_pip(pip: int) -> str:
    """Human-readable PIP, e.g. ``pip(3.1.7)`` for pod 3, rack 1, host 7."""
    if pip == UNRESOLVED:
        return "pip(unresolved)"
    pod, rack, host = split_pip(pip)
    return f"pip({pod}.{rack}.{host})"


def format_vip(vip: int) -> str:
    """Human-readable VIP."""
    return f"vip({vip})"
