"""Network nodes: the common node interface and the switch data plane.

A :class:`Switch` implements scheme-agnostic forwarding over a fat-tree
(ToR / spine / core) fabric: ECMP up, deterministic down, host delivery
at ToRs.  All translation-scheme behaviour (cache lookups, learning,
invalidation...) is delegated to a pluggable handler so that SwitchV2P
and every baseline run on the *same* forwarding substrate, mirroring
the paper's methodology of comparing schemes inside one simulator.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING, Protocol

from repro.net.addresses import pip_pod, pip_rack
from repro.net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link


class Layer(IntEnum):
    """Position of a switch in the fat-tree hierarchy."""

    TOR = 0
    SPINE = 1
    CORE = 2


class Node:
    """Anything a link can deliver packets to."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, packet: Packet, link: "Link | None" = None) -> None:
        """Deliver ``packet`` arriving over ``link`` (None for injection)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class SwitchHandler(Protocol):
    """Protocol implemented by translation schemes for in-switch hooks.

    ``on_switch`` runs for every packet entering a switch, *before*
    forwarding; it may rewrite the outer header (translation), learn
    mappings, or absorb the packet entirely (returning False).
    """

    def on_switch(self, switch: "Switch", packet: Packet,
                  ingress: "Link | None") -> bool:
        """Return False to consume the packet instead of forwarding it."""
        ...  # pragma: no cover - protocol


class _NullHandler:
    """Default no-op handler (plain forwarding, no caching)."""

    def on_switch(self, switch: "Switch", packet: Packet,
                  ingress: "Link | None") -> bool:
        return True


NULL_HANDLER = _NullHandler()


def ecmp_index(key: int, salt: int, n: int) -> int:
    """Deterministic ECMP hash: pick one of ``n`` equal-cost paths.

    Uses a Knuth multiplicative mix so consecutive flow ids spread
    across paths, as a real switch hash would.
    """
    mixed = ((key ^ salt) * 2654435761) & 0xFFFFFFFF
    return mixed % n


class SwitchStats:
    """Per-switch traffic counters used by the Figure 7/8 analyses."""

    __slots__ = ("packets", "bytes", "drops")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.drops = 0


class Switch(Node):
    """A fat-tree switch: forwarding tables plus a scheme handler hook.

    Link attachment is performed by the topology builder:

    * ToR: ``host_links`` (PIP -> link) and ``up_links`` (to pod spines).
    * Spine: ``down_links`` (rack index -> link to ToR) and ``up_links``
      (to this spine's core group).
    * Core: ``pod_links`` (pod index -> link to the peer spine).

    Attributes:
        switch_id: globally unique integer (also used as the identifier
            stamped into packets on cache hits, paper §3.3).
        layer: hierarchy level.
        pod: pod index (ToR and spine only; -1 for cores).
        rack: rack index (ToR only; for spines this is the spine index
            within its pod, for cores the core index).
    """

    __slots__ = (
        "switch_id",
        "layer",
        "pod",
        "rack",
        "host_links",
        "up_links",
        "down_links",
        "pod_links",
        "handler",
        "stats",
        "attached_pips",
        "failed",
    )

    def __init__(self, name: str, switch_id: int, layer: Layer, pod: int, rack: int) -> None:
        super().__init__(name)
        self.switch_id = switch_id
        self.layer = layer
        self.pod = pod
        self.rack = rack
        self.host_links: dict[int, "Link"] = {}
        self.up_links: list["Link"] = []
        self.down_links: dict[int, "Link"] = {}
        self.pod_links: dict[int, "Link"] = {}
        self.handler: SwitchHandler = NULL_HANDLER
        self.stats = SwitchStats()
        #: Failed switches drop everything; neighbours route around
        #: them (ECMP re-hash over the surviving equal-cost paths).
        self.failed = False
        #: PIPs of directly attached servers (ToRs only) — used for
        #: misdelivery tagging (paper §3.3).
        self.attached_pips: set[int] = set()

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: "Link | None" = None) -> None:
        if self.failed:
            self.stats.drops += 1
            return
        packet.hops += 1
        self.stats.packets += 1
        self.stats.bytes += packet.wire_bytes

        if packet.kind == PacketKind.INVALIDATION:
            self._receive_invalidation(packet, link)
            return

        if packet.route_path is not None:
            # Switch-addressed transit (e.g. the DHT design's detour to
            # a resolver switch, §2.4): follow the precomputed route
            # without per-hop processing until the target is reached.
            if packet.target_switch != self.switch_id:
                self._forward_along_route(packet)
                return
            packet.route_path = None
            packet.target_switch = None

        if not self.handler.on_switch(self, packet, link):
            return
        self.forward(packet)

    def _forward_along_route(self, packet: Packet) -> None:
        route = packet.route_path
        index = packet.route_index + 1
        if route is None or index >= len(route):
            self.stats.drops += 1
            return
        packet.route_index = index
        if not route[index].transmit(packet):
            self.stats.drops += 1

    def _receive_invalidation(self, packet: Packet, link: "Link | None") -> None:
        """Process an invalidation en route (handler hook at every hop)."""
        self.handler.on_switch(self, packet, link)
        if packet.target_switch == self.switch_id:
            return
        route = packet.route_path
        if route is None:
            return
        index = packet.route_index + 1
        if index >= len(route):
            return
        packet.route_index = index
        link = route[index]
        if not link.transmit(packet):
            self.stats.drops += 1

    def forward(self, packet: Packet) -> None:
        """Route ``packet`` one hop toward its outer destination."""
        link = self.next_hop(packet)
        if link is None or not link.transmit(packet):
            self.stats.drops += 1

    def next_hop(self, packet: Packet) -> "Link | None":
        """Select the egress link for ``packet`` (ECMP up, exact down).

        Equal-cost choices skip links whose peer switch has failed
        (liveness known via the routing protocol in real fabrics);
        deterministic down-paths through a failed switch drop.
        """
        dst = packet.outer_dst
        dst_pod = pip_pod(dst)
        layer = self.layer
        if layer == Layer.TOR:
            if dst_pod == self.pod and pip_rack(dst) == self.rack:
                if packet.kind == PacketKind.LEARNING:
                    # Learning packets terminate at the destination ToR
                    # (handled by the scheme hook); reaching here means
                    # the scheme left it unconsumed — drop quietly.
                    return None
                return self.host_links.get(dst)
            return self._ecmp_up(packet, dst)
        if layer == Layer.SPINE:
            if dst_pod == self.pod:
                return self.down_links.get(pip_rack(dst))
            return self._ecmp_up(packet, dst)
        # Core: one link per pod.
        return self.pod_links.get(dst_pod)

    def _ecmp_up(self, packet: Packet, dst: int) -> "Link | None":
        ups = self.up_links
        index = ecmp_index(packet.flow_id ^ dst, self.switch_id, len(ups))
        choice = ups[index]
        peer = choice.dst
        if isinstance(peer, Switch) and peer.failed:
            alive = [link for link in ups
                     if not (isinstance(link.dst, Switch) and link.dst.failed)]
            if not alive:
                return None
            return alive[ecmp_index(packet.flow_id ^ dst, self.switch_id,
                                    len(alive))]
        return choice

    def is_local_rack(self, pip: int) -> bool:
        """True if ``pip`` belongs to this ToR's rack."""
        return (
            self.layer == Layer.TOR
            and pip_pod(pip) == self.pod
            and pip_rack(pip) == self.rack
        )

    def __repr__(self) -> str:
        return (
            f"Switch({self.name} id={self.switch_id} layer={self.layer.name} "
            f"pod={self.pod} idx={self.rack})"
        )
