"""Network nodes: the common node interface and the switch data plane.

A :class:`Switch` implements scheme-agnostic forwarding over a fat-tree
(ToR / spine / core) fabric: ECMP up, deterministic down, host delivery
at ToRs.  All translation-scheme behaviour (cache lookups, learning,
invalidation...) is delegated to a pluggable handler so that SwitchV2P
and every baseline run on the *same* forwarding substrate, mirroring
the paper's methodology of comparing schemes inside one simulator.
"""

from __future__ import annotations

from enum import IntEnum
from heapq import heappush
from typing import TYPE_CHECKING, Protocol

from repro.net.addresses import pip_pod, pip_rack
from repro.net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.topology import Fabric


class Layer(IntEnum):
    """Position of a switch in the fat-tree hierarchy."""

    TOR = 0
    SPINE = 1
    CORE = 2


# Pre-bound enum members for the per-hop fast path (one LOAD_GLOBAL
# instead of LOAD_GLOBAL + LOAD_ATTR at every switch hop).
_TOR = Layer.TOR
_SPINE = Layer.SPINE
_INVALIDATION = PacketKind.INVALIDATION
_LEARNING = PacketKind.LEARNING


class Node:
    """Anything a link can deliver packets to."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def receive(self, packet: Packet, link: Link | None = None) -> None:
        """Deliver ``packet`` arriving over ``link`` (None for injection)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class SwitchHandler(Protocol):
    """Protocol implemented by translation schemes for in-switch hooks.

    ``on_switch`` runs for every packet entering a switch, *before*
    forwarding; it may rewrite the outer header (translation), learn
    mappings, or absorb the packet entirely (returning False).
    """

    def on_switch(self, switch: Switch, packet: Packet,
                  ingress: Link | None) -> bool:
        """Return False to consume the packet instead of forwarding it."""
        ...  # pragma: no cover - protocol


class _NullHandler:
    """Default no-op handler (plain forwarding, no caching)."""

    def on_switch(self, switch: Switch, packet: Packet,
                  ingress: Link | None) -> bool:
        return True


NULL_HANDLER = _NullHandler()


def ecmp_index(key: int, salt: int, n: int) -> int:
    """Deterministic ECMP hash: pick one of ``n`` equal-cost paths.

    Uses a Knuth multiplicative mix so consecutive flow ids spread
    across paths, as a real switch hash would.
    """
    mixed = ((key ^ salt) * 2654435761) & 0xFFFFFFFF
    return mixed % n


class SwitchStats:
    """Per-switch traffic counters used by the Figure 7/8 analyses."""

    __slots__ = ("packets", "bytes", "drops")

    def __init__(self) -> None:
        self.packets = 0
        self.bytes = 0
        self.drops = 0


class Switch(Node):
    """A fat-tree switch: forwarding tables plus a scheme handler hook.

    Link attachment is performed by the topology builder:

    * ToR: ``host_links`` (PIP -> link) and ``up_links`` (to pod spines).
    * Spine: ``down_links`` (rack-indexed array of links to ToRs) and
      ``up_links`` (to this spine's core group).
    * Core: ``pod_links`` (pod-indexed array of links to peer spines).

    ``down_links``/``pod_links`` are flat lists presized by the fabric
    builder (the index domains are bounded by the topology spec, and
    valid PIPs can only encode in-range coordinates), with ``None`` in
    slots the lazy per-pod wiring has not reached yet.

    Attributes:
        switch_id: globally unique integer (also used as the identifier
            stamped into packets on cache hits, paper §3.3).
        layer: hierarchy level.
        pod: pod index (ToR and spine only; -1 for cores).
        rack: rack index (ToR only; for spines this is the spine index
            within its pod, for cores the core index).
    """

    __slots__ = (
        "switch_id",
        "layer",
        "pod",
        "rack",
        "host_links",
        "up_links",
        "down_links",
        "pod_links",
        "handler",
        "stats",
        "attached_pips",
        "fabric",
        "_failed",
        "_slow_ns",
        "_ecmp_memo",
    )

    def __init__(self, name: str, switch_id: int, layer: Layer, pod: int, rack: int) -> None:
        super().__init__(name)
        self.switch_id = switch_id
        self.layer = layer
        self.pod = pod
        self.rack = rack
        self.host_links: dict[int, Link] = {}
        self.up_links: list[Link] = []
        self.down_links: list[Link | None] = []
        self.pod_links: list[Link | None] = []
        self.handler: SwitchHandler = NULL_HANDLER
        self.stats = SwitchStats()
        #: Owning fabric (set at construction by the topology builder);
        #: used to learn whether any faults are active so the fast
        #: no-fault forwarding path stays cheap.
        self.fabric: Fabric | None = None
        self._failed = False
        #: Gray SWITCH_SLOW state: extra per-packet forwarding delay in
        #: ns (0 = healthy; the hot path pays one falsy check for it).
        self._slow_ns = 0
        #: Memoized ECMP choices: (flow_id ^ dst) -> egress link.  Only
        #: written while the fabric is fault-free (the hash is a pure
        #: function of the key then); flushed by the fabric on every
        #: fault transition (see :meth:`Fabric.note_fault`).
        self._ecmp_memo: dict[int, Link] = {}
        #: PIPs of directly attached servers (ToRs only) — used for
        #: misdelivery tagging (paper §3.3).
        self.attached_pips: set[int] = set()

    # ------------------------------------------------------------------
    # failure / recovery (control plane)
    # ------------------------------------------------------------------
    @property
    def failed(self) -> bool:
        """Failed switches drop everything; neighbours route around them."""
        return self._failed

    @failed.setter
    def failed(self, value: bool) -> None:
        # Route every transition through fail()/recover() so assigning
        # the flag directly (legacy tests, ad-hoc scripts) still gets
        # the full semantics: fabric fault accounting and cache flush.
        if value:
            self.fail()
        else:
            self.recover()

    def fail(self) -> None:
        """Take the switch down: SRAM state (caches) is lost immediately."""
        if self._failed:
            return
        self._failed = True
        if self.fabric is not None:
            self.fabric.note_fault(1)
        self._flush_scheme_state()

    def recover(self) -> None:
        """Bring the switch back *cold*: it restarts with empty caches.

        The paper's opportunistic-cache model makes this safe — a
        recovered switch simply re-warms from passing traffic — but it
        must not resurrect pre-failure entries, which may be stale.
        """
        if not self._failed:
            return
        self._failed = False
        if self.fabric is not None:
            self.fabric.note_fault(-1)
        self._flush_scheme_state()

    def _flush_scheme_state(self) -> None:
        reset = getattr(self.handler, "on_switch_reset", None)
        if reset is not None:
            reset(self)

    def set_slowdown(self, extra_ns: int) -> None:
        """Gray failure: hold every forwarded packet ``extra_ns`` (0 heals).

        Unlike :meth:`fail`, the switch stays up — caches keep serving,
        routing is unchanged — so this is *not* a fault-count
        transition.  The hybrid engine must still observe it (an
        analytic walk cannot replicate the hold), hence the explicit
        ``on_fault`` ping that invalidates memoized-clean paths.
        """
        if extra_ns < 0:
            raise ValueError(f"negative slowdown: {extra_ns}")
        self._slow_ns = extra_ns
        fabric = self.fabric
        if fabric is not None and fabric.on_fault is not None:
            fabric.on_fault()

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, link: Link | None = None) -> None:
        # Hot path: this body runs once per switch hop for every packet
        # in the simulation.  ``wire_bytes`` is read through its cache
        # slot (computed at most once per hop, reused by the egress
        # link), and the common forwarding case below inlines
        # :meth:`next_hop` — which remains a public method for probes
        # and scheme code — with the pod/rack bit arithmetic of
        # :mod:`repro.net.addresses` unrolled.
        if self._failed:
            self.stats.drops += 1
            return
        packet.hops += 1
        stats = self.stats
        stats.packets += 1
        stats.bytes += packet._wire_bytes

        kind = packet.kind
        if kind is _INVALIDATION:
            self._receive_invalidation(packet, link)
            return

        if packet.route_path is not None:
            # Switch-addressed transit (e.g. the DHT design's detour to
            # a resolver switch, §2.4): follow the precomputed route
            # without per-hop processing until the target is reached.
            if packet.target_switch != self.switch_id:
                self._forward_along_route(packet)
                return
            packet.route_path = None
            packet.target_switch = None

        if not self.handler.on_switch(self, packet, link):
            return
        slow = self._slow_ns
        if slow:
            # Gray SWITCH_SLOW: the overloaded pipeline holds the packet
            # before egress; routing happens at release time so a fault
            # landing inside the hold is still honoured.
            self.fabric.engine.schedule_after(slow, self.forward, packet)
            return
        # Inlined forward()/next_hop(): ECMP up, exact down, host
        # delivery at ToRs (see next_hop() for the commented version).
        dst = packet.outer_dst
        dst_pod = (dst >> 22) & 0x3FFF
        layer = self.layer
        if layer is _TOR:
            if dst_pod == self.pod and ((dst >> 12) & 0x3FF) == self.rack:
                if kind is _LEARNING:
                    # Unconsumed learning packet: terminates here.
                    stats.drops += 1
                    return
                egress = self.host_links.get(dst)
            else:
                # Inlined _ecmp_up() memo hit (the overwhelmingly
                # common case on a fault-free fabric); misses and
                # faulty fabrics take the full method.
                fabric = self.fabric
                if fabric is None or fabric.fault_count == 0:
                    egress = self._ecmp_memo.get(packet.flow_id ^ dst)
                    if egress is None or not egress.up \
                            or egress.dst._failed:
                        egress = self._ecmp_up(packet, dst)
                else:
                    egress = self._ecmp_up(packet, dst)
        elif layer is _SPINE:
            if dst_pod == self.pod:
                rack = (dst >> 12) & 0x3FF
                downs = self.down_links
                egress = downs[rack] if rack < len(downs) else None
            else:
                fabric = self.fabric
                if fabric is None or fabric.fault_count == 0:
                    egress = self._ecmp_memo.get(packet.flow_id ^ dst)
                    if egress is None or not egress.up \
                            or egress.dst._failed:
                        egress = self._ecmp_up(packet, dst)
                else:
                    egress = self._ecmp_up(packet, dst)
        else:
            pods = self.pod_links
            egress = pods[dst_pod] if dst_pod < len(pods) else None
        if egress is None:
            stats.drops += 1
            return
        # Inlined Link.transmit() (see link.py for the commented
        # version): one method call saved per switch hop.  The wire
        # size is re-read because on_switch may have attached or
        # stripped option words above.
        lstats = egress.stats
        if not egress.up:
            lstats.drops += 1
            stats.drops += 1
            return
        engine = egress.engine
        now = engine._now
        busy = egress._busy_until
        size = packet._wire_bytes
        pending_ns = busy - now
        backlog = int(pending_ns * egress.rate_bps / 8e9) if pending_ns > 0 else 0
        if backlog + size > egress.buffer_bytes:
            lstats.drops += 1
            stats.drops += 1
            return
        start = busy if busy > now else now
        ser_ns = egress._ser_cache.get(size)
        if ser_ns is None:
            ser_ns = int(round(size * 8e9 / egress.rate_bps))
            egress._ser_cache[size] = ser_ns
        finish = start + ser_ns
        egress._busy_until = finish
        lstats.packets += 1
        lstats.bytes += size
        if egress._loss_rng is not None \
                and egress._loss_rng.random() < egress.loss_rate:
            lstats.lost += 1
            return
        heappush(engine._queue, (finish + egress.propagation_ns,
                                 engine._sequence, egress._deliver,
                                 (packet, egress)))
        engine._sequence += 1

    def _forward_along_route(self, packet: Packet) -> None:
        route = packet.route_path
        index = packet.route_index + 1
        if route is None or index >= len(route):
            self.stats.drops += 1
            return
        packet.route_index = index
        if not route[index].transmit(packet):
            self.stats.drops += 1

    def _receive_invalidation(self, packet: Packet, link: Link | None) -> None:
        """Process an invalidation en route (handler hook at every hop)."""
        self.handler.on_switch(self, packet, link)
        if packet.target_switch == self.switch_id:
            return
        route = packet.route_path
        if route is None:
            return
        index = packet.route_index + 1
        if index >= len(route):
            return
        packet.route_index = index
        link = route[index]
        if not link.transmit(packet):
            self.stats.drops += 1

    def forward(self, packet: Packet) -> None:
        """Route ``packet`` one hop toward its outer destination."""
        link = self.next_hop(packet)
        if link is None or not link.transmit(packet):
            self.stats.drops += 1

    def next_hop(self, packet: Packet) -> Link | None:
        """Select the egress link for ``packet`` (ECMP up, exact down).

        Equal-cost choices skip candidates whose *entire* deterministic
        remainder is unusable — a down link, a failed peer, or (when
        faults are active) a failed switch/link further along the
        committed down-path.  In real fabrics this liveness is known
        via the routing protocol; here the look-ahead walks the wired
        link objects directly.  Packets drop only when no equal-cost
        sibling survives (e.g. the destination ToR itself is dead).
        """
        dst = packet.outer_dst
        dst_pod = pip_pod(dst)
        layer = self.layer
        if layer == Layer.TOR:
            if dst_pod == self.pod and pip_rack(dst) == self.rack:
                if packet.kind == PacketKind.LEARNING:
                    # Learning packets terminate at the destination ToR
                    # (handled by the scheme hook); reaching here means
                    # the scheme left it unconsumed — drop quietly.
                    return None
                return self.host_links.get(dst)
            return self._ecmp_up(packet, dst)
        if layer == Layer.SPINE:
            if dst_pod == self.pod:
                return _indexed(self.down_links, pip_rack(dst))
            return self._ecmp_up(packet, dst)
        # Core: one link per pod.
        return _indexed(self.pod_links, dst_pod)

    def _ecmp_up(self, packet: Packet, dst: int) -> Link | None:
        ups = self.up_links
        if not ups:
            return None
        key = packet.flow_id ^ dst
        fabric = self.fabric
        if fabric is None or fabric.fault_count == 0:
            # Memo hit: the stored link was the hash choice for this
            # key under a fault-free fabric, so recomputing would yield
            # the same link.  Liveness is still re-validated (tests and
            # ad-hoc scripts may flip link/switch state directly,
            # without fault accounting); up-link peers are always
            # switches, so ``_failed`` can be read unconditionally.
            memo = self._ecmp_memo
            link = memo.get(key)
            if link is not None and link.up and not link.dst._failed:
                return link
            choice = ups[(((key ^ self.switch_id) * 2654435761)
                          & 0xFFFFFFFF) % len(ups)]
            # With no faults active, _up_path_usable() reduces to the
            # immediate-hop liveness checks — inlined here.
            if choice.up and not choice.dst._failed:
                memo[key] = choice
                return choice
        else:
            choice = ups[(((key ^ self.switch_id) * 2654435761)
                          & 0xFFFFFFFF) % len(ups)]
            if self._up_path_usable(choice, dst):
                return choice
        usable = [link for link in ups if self._up_path_usable(link, dst)]
        if not usable:
            return None
        return usable[ecmp_index(key, self.switch_id, len(usable))]

    def _up_path_usable(self, link: Link, dst: int) -> bool:
        """Is ``link`` a viable equal-cost choice toward ``dst``?

        Checks the immediate hop always; when the fabric reports active
        faults it additionally walks the *deterministic* remainder of
        the path (the down-hops this up-choice commits to), so traffic
        is re-hashed around a failed far-side spine or a cut down-link
        instead of silently dropping on the way down.
        """
        if not link.up:
            return False
        peer = link.dst
        if not isinstance(peer, Switch):
            return True
        if peer._failed:
            return False
        fabric = self.fabric
        if fabric is None or not fabric.faults_active:
            return True
        dst_pod = pip_pod(dst)
        if self.layer == Layer.TOR:
            # peer is a pod spine.
            if dst_pod == self.pod:
                return _down_link_usable(_indexed(peer.down_links,
                                                  pip_rack(dst)))
            # Committing to spine j also commits to core group j and to
            # spine j of the destination pod: need one live core path.
            return any(_core_path_usable(core_link, dst)
                       for core_link in peer.up_links)
        # Spine: peer is a core; its down-path to dst's pod is fixed.
        return _core_down_usable(peer, dst)

    def is_local_rack(self, pip: int) -> bool:
        """True if ``pip`` belongs to this ToR's rack."""
        return (
            self.layer == Layer.TOR
            and pip_pod(pip) == self.pod
            and pip_rack(pip) == self.rack
        )

    def __repr__(self) -> str:
        return (
            f"Switch({self.name} id={self.switch_id} layer={self.layer.name} "
            f"pod={self.pod} idx={self.rack})"
        )


def _indexed(links: list[Link | None], index: int) -> Link | None:
    """Bounds-safe read of a presized port array (None when absent)."""
    return links[index] if 0 <= index < len(links) else None


def _down_link_usable(link: Link | None) -> bool:
    """A deterministic down-link is usable if up and its peer is alive."""
    if link is None or not link.up:
        return False
    peer = link.dst
    return not (isinstance(peer, Switch) and peer._failed)


def _core_down_usable(core: Switch, dst: int) -> bool:
    """Can ``core`` still deliver toward ``dst``'s pod and rack?"""
    pod_link = _indexed(core.pod_links, pip_pod(dst))
    if pod_link is None or not pod_link.up:
        return False
    far_spine = pod_link.dst
    if isinstance(far_spine, Switch):
        if far_spine._failed:
            return False
        return _down_link_usable(_indexed(far_spine.down_links,
                                          pip_rack(dst)))
    return True


def _core_path_usable(core_link: Link, dst: int) -> bool:
    """Spine-to-core candidate: the core and its fixed down-path live?"""
    if not core_link.up:
        return False
    core = core_link.dst
    if not isinstance(core, Switch):
        return True
    if core._failed:
        return False
    return _core_down_usable(core, dst)


