"""Physical network substrate: addresses, packets, links, switches, fabric."""

from repro.net.addresses import (
    UNRESOLVED,
    format_pip,
    format_vip,
    make_pip,
    pip_host,
    pip_pod,
    pip_rack,
    split_pip,
)
from repro.net.link import Link, LinkStats
from repro.net.node import Layer, Node, Switch, ecmp_index
from repro.net.packet import HEADER_BYTES, MSS_BYTES, Packet, PacketKind
from repro.net.probing import ForwardingLoopError, forwarding_path, path_length
from repro.net.topology import Fabric, FatTreeSpec

__all__ = [
    "UNRESOLVED",
    "make_pip",
    "split_pip",
    "pip_pod",
    "pip_rack",
    "pip_host",
    "format_pip",
    "format_vip",
    "Packet",
    "PacketKind",
    "HEADER_BYTES",
    "MSS_BYTES",
    "Link",
    "LinkStats",
    "Node",
    "Switch",
    "Layer",
    "ecmp_index",
    "Fabric",
    "FatTreeSpec",
    "forwarding_path",
    "path_length",
    "ForwardingLoopError",
]
