"""Forwarding-path probes.

Deterministic ECMP means a packet's path is a pure function of its
headers and the fabric state; these helpers walk ``next_hop`` decisions
without transmitting anything, returning the node sequence a packet
*would* take.  Used by the Controller baseline, debugging sessions and
tests that assert on routes.
"""

from __future__ import annotations

from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Node, Switch
from repro.net.packet import Packet, PacketKind

#: Upper bound on walked hops — fat-tree paths are <= 6 switches, so
#: exceeding this means a forwarding loop.
_MAX_HOPS = 16


class ForwardingLoopError(RuntimeError):
    """Raised when a probe revisits a switch (a routing bug)."""


def forwarding_path(network, src_pip: int, outer_dst: int, flow_id: int,
                    resolved: bool = True) -> list[Node]:
    """The switch/host sequence from ``src_pip``'s ToR to ``outer_dst``.

    Args:
        network: the :class:`~repro.vnet.network.VirtualNetwork`.
        src_pip: the sending server's physical address.
        outer_dst: the packet's outer destination (a host or gateway
            PIP).
        flow_id: drives the ECMP hash, exactly as a real packet would.
        resolved: header state of the probe packet (affects nothing in
            base forwarding, but mirrors real packets).

    Returns:
        Nodes visited, starting at the source ToR and ending at the
        destination node (host/gateway) if reachable; the list ends at
        the last reachable switch when forwarding would drop.

    Raises:
        ForwardingLoopError: if a switch repeats on the path.
    """
    probe = Packet(PacketKind.DATA, flow_id=flow_id, seq=0, payload_bytes=0,
                   src_vip=0, dst_vip=0, outer_src=src_pip,
                   outer_dst=outer_dst)
    probe.resolved = resolved
    tor = network.fabric.tors[(pip_pod(src_pip), pip_rack(src_pip))]
    path: list[Node] = [tor]
    seen = {tor.switch_id}
    node: Node = tor
    for _ in range(_MAX_HOPS):
        if not isinstance(node, Switch):
            break
        link = node.next_hop(probe)
        if link is None:
            break
        node = link.dst
        if isinstance(node, Switch):
            if node.switch_id in seen:
                raise ForwardingLoopError(
                    f"loop at {node.name} for outer_dst={outer_dst}")
            seen.add(node.switch_id)
        path.append(node)
    return path


def path_length(network, src_pip: int, outer_dst: int, flow_id: int) -> int:
    """Number of switches on the forwarding path (packet stretch)."""
    return sum(1 for node in forwarding_path(network, src_pip, outer_dst,
                                             flow_id)
               if isinstance(node, Switch))
