"""Bluebird: ToR data-plane route cache + control-plane slow path (paper §5).

Bluebird (NSDI'22) keeps V2P state in ToR switches: hits are resolved
in the data plane; misses are punted to the switch control plane (the
SFE), which knows the full table, forwards the packet itself and
installs the mapping back into the data plane.  Per the paper's setup
we model a 20 Gbps data-to-control channel, 8.5 us control-plane
forwarding latency and 2 ms cache-insertion latency.  The scheme never
uses gateways; its weakness under bursty traffic is the bandwidth-
limited punt channel, which drops packets when saturated.
"""

from __future__ import annotations

from repro.baselines.caching import CachingScheme
from repro.net.node import Layer, Switch
from repro.net.packet import Packet
from repro.sim.engine import msec, usec
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork

DEFAULT_PUNT_BPS = 20e9
DEFAULT_CPU_LATENCY_NS = usec(8.5)
DEFAULT_INSERT_LATENCY_NS = msec(2)
DEFAULT_PUNT_BUFFER_BYTES = 1024 * 1024


class Bluebird(CachingScheme):
    """ToR route caches with a rate-limited control-plane slow path."""

    name = "Bluebird"

    def __init__(
        self,
        total_cache_slots: int,
        punt_bps: float = DEFAULT_PUNT_BPS,
        cpu_latency_ns: int = DEFAULT_CPU_LATENCY_NS,
        insert_latency_ns: int = DEFAULT_INSERT_LATENCY_NS,
        punt_buffer_bytes: int = DEFAULT_PUNT_BUFFER_BYTES,
    ) -> None:
        super().__init__(total_cache_slots)
        self.punt_bps = punt_bps
        self.cpu_latency_ns = cpu_latency_ns
        self.insert_latency_ns = insert_latency_ns
        self.punt_buffer_bytes = punt_buffer_bytes
        self._punt_busy_until: dict[int, int] = {}
        self.punted_packets = 0
        self.punt_drops = 0

    def caching_switch_ids(self, network: VirtualNetwork):
        return [switch.switch_id for switch in network.fabric.switches
                if switch.layer == Layer.TOR]

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._punt_busy_until = {switch_id: 0 for switch_id in self.caches}

    def on_host_send(self, host: Host, packet: Packet) -> None:
        # The sender's ToR resolves everything; no gateway involved.
        # The outer destination stays at the sender until the ToR
        # rewrites it (self-address keeps routing well-defined).
        packet.outer_dst = host.pip
        packet.resolved = False

    def on_switch(self, switch: Switch, packet: Packet, ingress) -> bool:
        if not self.is_traffic(packet) or packet.resolved:
            return True
        if switch.layer != Layer.TOR:
            return True
        if self.try_resolve(switch, packet):
            return True
        return self._punt(switch, packet)

    def _punt(self, switch: Switch, packet: Packet) -> bool:
        """Send a missing packet through the data-to-control channel."""
        assert self.network is not None
        engine = self.network.engine
        now = engine.now
        busy = self._punt_busy_until.get(switch.switch_id, 0)
        backlog_ns = max(0, busy - now)
        backlog_bytes = backlog_ns * self.punt_bps / 8e9
        size = packet.wire_bytes
        if backlog_bytes + size > self.punt_buffer_bytes:
            self.punt_drops += 1
            switch.stats.drops += 1
            return False
        start = busy if busy > now else now
        finish = start + int(round(size * 8e9 / self.punt_bps))
        self._punt_busy_until[switch.switch_id] = finish
        self.punted_packets += 1
        engine.schedule(finish + self.cpu_latency_ns, self._cpu_forward,
                        switch, packet)
        return False

    def _cpu_forward(self, switch: Switch, packet: Packet) -> None:
        """Control plane resolves, forwards, and installs the mapping."""
        assert self.network is not None
        pip = self.network.database.get(packet.dst_vip)
        if pip is None:
            return
        self.resolve(packet, pip)
        switch.forward(packet)
        self.network.engine.schedule_after(
            self.insert_latency_ns, self._install, switch.switch_id, packet.dst_vip)

    def _install(self, switch_id: int, vip: int) -> None:
        """Install the mapping into the route cache after the SFE delay."""
        assert self.network is not None
        pip = self.network.database.get(vip)
        cache = self.caches.get(switch_id)
        if pip is not None and cache is not None:
            cache.insert(vip, pip)
