"""The translation-scheme interface.

A *scheme* decides where V2P mappings live and how packets get
translated: at the sender (Direct/OnDemand), at gateways (NoCache), at
gateway ToRs (GwCache), at every switch greedily (LocalLearning), in
the ToR control plane (Bluebird), by an omniscient controller
(Controller), or collaboratively in the network (SwitchV2P).

All schemes plug into the same three hook points:

* ``on_host_send`` — the sender's hypervisor chooses the outer header;
* ``on_switch`` — every switch runs this before forwarding;
* ``on_misdelivery`` — the old host re-forwards packets for moved VMs.

The base class implements the common gateway-driven behaviour so
subclasses override only what differs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.addresses import UNRESOLVED
from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.link import Link
    from repro.net.node import Switch
    from repro.vnet.hypervisor import Host
    from repro.vnet.network import VirtualNetwork


class TranslationScheme:
    """Base scheme: pure gateway forwarding, follow-me on misdelivery."""

    name = "abstract"

    #: Whether the hybrid-fidelity fluid fast path may adopt flows under
    #: this scheme.  Requires that every piece of per-packet state the
    #: scheme mutates is observable by the fluid scheduler (cache
    #: ``on_mutate`` observers + the dirty counters it snapshots), so
    #: replayed packets provably repeat the probe's effects.  Schemes
    #: with unobservable state keep the default False and hybrid mode
    #: silently degrades to pure packet simulation.
    fluid_compatible = False

    def __init__(self) -> None:
        self.network: VirtualNetwork | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def setup(self, network: VirtualNetwork) -> None:
        """Bind to a network; subclasses build caches and roles here."""
        self.network = network

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def on_host_send(self, host: Host, packet: Packet) -> None:
        """Default: unresolved packets head to a per-flow gateway.

        This is the body of :meth:`send_via_gateway`, inlined: it runs
        once per packet sent, and the extra frame is measurable.
        """
        network = self.network
        gateway = network.gateway_for(packet.flow_id)
        if gateway is None:
            packet.outer_dst = UNRESOLVED
            packet.resolved = False
            network.collector.gateway_unavailable_drops += 1
            return
        packet.outer_dst = gateway.pip
        packet.resolved = False

    def on_switch(self, switch: Switch, packet: Packet,
                  ingress: Link | None) -> bool:
        """Default: plain forwarding, no in-network state."""
        return True

    def on_misdelivery(self, host: Host, packet: Packet) -> None:
        """Default: Andromeda-style follow-me redirection at the old host."""
        new_pip = host.follow_me.get(packet.dst_vip)
        if new_pip is not None:
            packet.outer_dst = new_pip
            packet.resolved = True
            host.reforward(packet)
            return
        # No rule (e.g. VM gone entirely): fall back to the gateway.
        self.send_misdelivered_via_gateway(host, packet)

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def send_via_gateway(self, packet: Packet) -> None:
        """Address ``packet`` to its flow's gateway, unresolved.

        If every gateway has been failed out of the pool the packet is
        left unroutable (``outer_dst`` stays UNRESOLVED); the
        hypervisor hard-drops it and the event is counted, so
        experiments can report availability instead of hanging.
        """
        assert self.network is not None, "scheme not attached to a network"
        gateway = self.network.gateway_for(packet.flow_id)
        if gateway is None:
            packet.outer_dst = UNRESOLVED
            packet.resolved = False
            self.network.collector.gateway_unavailable_drops += 1
            return
        packet.outer_dst = gateway.pip
        packet.resolved = False

    def send_misdelivered_via_gateway(self, host: Host, packet: Packet) -> None:
        """Re-forward a misdelivered packet toward a gateway.

        The stale ``(vip, old_pip)`` pair is carried in-band so caches
        en route can distinguish their entry being stale from having
        already learned the new mapping (paper §3.3).

        The misdelivery tag is reset: each re-forward starts a new
        misdelivery episode, so the ToR re-tags the packet and sends a
        targeted invalidation to ``hit_switch`` — the switch whose
        stale entry just caused *this* bounce.  Without the reset only
        the first episode invalidates, and with two generations of
        stale entries in the fabric (a VM that migrated twice) a packet
        can ping-pong between the two old hosts indefinitely: each old
        host's re-forward is served by a cache holding the *other*
        stale value, which never matches the carried pair.
        """
        packet.carried_mapping = (packet.dst_vip, host.pip)
        packet.misdelivery_tag = False
        self.send_via_gateway(packet)
        host.reforward(packet)

    def resolve(self, packet: Packet, pip: int) -> None:
        """Rewrite the outer destination with a known mapping."""
        packet.outer_dst = pip
        packet.resolved = True

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
