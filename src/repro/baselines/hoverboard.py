"""Hoverboard: Andromeda's hybrid gateway/host design (paper §1, §5).

All traffic initially flows through gateways (the "hoverboard" path);
the control plane watches per-destination traffic and installs host
flow-cache rules for sufficiently hot destinations, after a
controller-speed delay (milliseconds in Andromeda/Zeta).  The paper's
NoCache baseline is Hoverboard without offloading (its traces never
cross the offload threshold), and OnDemand is the immediate-offload
variant; this class provides the general thresholded model so the
hybrid design point is explorable.
"""

from __future__ import annotations

from repro.baselines.base import TranslationScheme
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import msec
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork


class Hoverboard(TranslationScheme):
    """Gateway-first forwarding with thresholded host-rule offload.

    Args:
        offload_threshold: packets from one host to one destination
            that trigger a rule install (Zeta-style flow threshold).
        install_delay_ns: controller reaction time; Andromeda reports
            milliseconds for rule installment.
    """

    name = "Hoverboard"

    def __init__(self, offload_threshold: int = 20,
                 install_delay_ns: int = msec(1)) -> None:
        super().__init__()
        if offload_threshold < 1:
            raise ValueError("offload threshold must be at least 1")
        self.offload_threshold = offload_threshold
        self.install_delay_ns = install_delay_ns
        self._host_rules: dict[int, dict[int, int]] = {}
        self._counts: dict[tuple[int, int], int] = {}
        self._pending: set[tuple[int, int]] = set()
        self.rules_installed = 0

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._host_rules = {host.pip: {} for host in network.hosts}
        self._counts.clear()
        self._pending.clear()

    def on_host_send(self, host: Host, packet: Packet) -> None:
        rules = self._host_rules[host.pip]
        pip = rules.get(packet.dst_vip)
        if pip is not None:
            self.resolve(packet, pip)
            return
        self.send_via_gateway(packet)
        if packet.kind not in (PacketKind.DATA, PacketKind.ACK):
            return
        key = (host.pip, packet.dst_vip)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count >= self.offload_threshold and key not in self._pending:
            self._pending.add(key)
            assert self.network is not None
            self.network.engine.schedule_after(
                self.install_delay_ns, self._install, host.pip, packet.dst_vip)

    def _install(self, host_pip: int, vip: int) -> None:
        assert self.network is not None
        self._pending.discard((host_pip, vip))
        pip = self.network.database.get(vip)
        if pip is not None:
            self._host_rules[host_pip][vip] = pip
            self.rules_installed += 1

    def host_rules(self, host: Host) -> dict[int, int]:
        """The host's installed flow rules (read-only view)."""
        return dict(self._host_rules.get(host.pip, {}))
