"""DhtStore: the in-switch distributed hash table the paper rejected (§2.4).

Before settling on caching, the authors explored storing the *entire*
V2P database across switch memory as a DHT (SEATTLE-style): each VIP's
mapping lives on exactly one resolver switch chosen by hash, kept fresh
by the control plane.  Updates are cheap (one switch per mapping), but:

* every unresolved packet detours through its resolver switch, paying
  extra hops (no "en route" property);
* a resolver failure black-holes its share of the address space until
  the control plane re-replicates (we model the failure window: no
  recovery);
* hot VIPs concentrate load on single switches.

Implementing the rejected design makes §2.4's comparison measurable
(see ``benchmarks/test_ablation_dht.py`` and ``tests/test_dht.py``).
"""

from __future__ import annotations

from repro.baselines.base import TranslationScheme
from repro.net.node import Layer, Switch, ecmp_index
from repro.net.packet import Packet, PacketKind
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork


class DhtStore(TranslationScheme):
    """Whole-database in-switch DHT with per-VIP resolver switches."""

    name = "DhtStore"

    def __init__(self) -> None:
        super().__init__()
        self._switches: list[Switch] = []
        #: Control-plane messages needed per mapping update: exactly one
        #: (the resolver switch) — the design's update-cost advantage.
        self.update_messages = 0
        self.detour_packets = 0

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._switches = list(network.fabric.switches)
        network.database.subscribe(self._on_mapping_update)

    def _on_mapping_update(self, vip: int, old_pip: int, new_pip: int) -> None:
        self.update_messages += 1

    def resolver_of(self, vip: int) -> Switch:
        """The switch storing ``vip``'s mapping."""
        index = ecmp_index(vip, 0x5bd1e995, len(self._switches))
        return self._switches[index]

    # ------------------------------------------------------------------
    def on_host_send(self, host: Host, packet: Packet) -> None:
        # Mark unresolved and address to the host itself; the sender's
        # ToR computes the detour to the resolver switch.
        packet.outer_dst = host.pip
        packet.resolved = False

    def on_switch(self, switch: Switch, packet: Packet, ingress) -> bool:
        if packet.kind not in (PacketKind.DATA, PacketKind.ACK):
            return True
        if packet.resolved:
            return True
        resolver = self.resolver_of(packet.dst_vip)
        if resolver is switch:
            return self._resolve_here(switch, packet)
        if switch.layer != Layer.TOR:
            # Mid-route without a resolver: should not happen (routes
            # are precomputed at the ToR); drop defensively.
            return True
        assert self.network is not None
        if resolver.failed:
            switch.stats.drops += 1
            return False
        route = self.network.fabric.path_from_tor(switch, resolver,
                                                  key=packet.flow_id)
        if not route:
            return self._resolve_here(switch, packet)
        packet.route_path = route
        packet.route_index = 0
        packet.target_switch = resolver.switch_id
        self.detour_packets += 1
        if not route[0].transmit(packet):
            switch.stats.drops += 1
        return False

    def _resolve_here(self, switch: Switch, packet: Packet) -> bool:
        """The resolver switch translates from its (fresh) DHT shard."""
        assert self.network is not None
        pip = self.network.database.get(packet.dst_vip)
        if pip is None:
            switch.stats.drops += 1
            return False
        self.resolve(packet, pip)
        packet.hit_switch = switch.switch_id
        self.network.collector.record_hit(switch.layer,
                                          packet.kind == PacketKind.DATA
                                          and packet.seq == 0)
        return True
