"""Direct: the pure host-driven baseline (paper §5).

Every hypervisor is pre-programmed with all V2P mappings (the NVP-style
preprogrammed model), so packets always travel the shortest path.  It
bounds the best achievable network performance while ignoring the cost
of keeping ~all-hosts replicas up to date — the other end of the
paper's Figure 1 tradeoff.

To make that ignored cost measurable, the scheme counts the
control-plane push fan-out it would have required (one update per host
per mapping change).
"""

from __future__ import annotations

from repro.baselines.base import TranslationScheme
from repro.net.packet import Packet
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork


class Direct(TranslationScheme):
    """Hosts resolve every destination locally from a full replica."""

    name = "Direct"

    #: No in-network state at all — every per-packet effect is a pure
    #: function of the mapping database, and database changes reach the
    #: fluid scheduler through the network's migrate/retire hooks.
    fluid_compatible = True

    def __init__(self) -> None:
        super().__init__()
        #: Updates the control plane would have pushed to hypervisors
        #: (#hosts per mapping change) — the hidden cost of this design.
        self.control_plane_pushes = 0

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        network.database.subscribe(self._on_mapping_update)

    def _on_mapping_update(self, vip: int, old_pip: int, new_pip: int) -> None:
        assert self.network is not None
        self.control_plane_pushes += len(self.network.hosts)

    def on_host_send(self, host: Host, packet: Packet) -> None:
        assert self.network is not None
        pip = self.network.database.get(packet.dst_vip)
        if pip is None:
            self.send_via_gateway(packet)
            return
        self.resolve(packet, pip)
