"""LocalLearning: the strawman local-greedy design (paper §3.1).

Every switch performs destination learning and admits every insertion,
with no topology awareness.  The paper uses it to demonstrate why local
greedy decisions waste cache space: mappings learned on the
gateway-to-destination path mostly sit on switches the sender's packets
never traverse, and ToRs thrash under admit-all pressure.
"""

from __future__ import annotations

from repro.baselines.caching import CachingScheme
from repro.net.packet import Packet


class LocalLearning(CachingScheme):
    """Greedy destination learning with admit-all on every switch."""

    name = "LocalLearning"

    def on_switch(self, switch, packet: Packet, ingress) -> bool:
        if not self.is_traffic(packet):
            return True
        if self.try_resolve(switch, packet):
            return True
        self.learn_destination(switch, packet)
        return True
