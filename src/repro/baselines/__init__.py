"""Baseline V2P translation schemes from the paper's evaluation (§5)."""

from repro.baselines.base import TranslationScheme
from repro.baselines.bluebird import Bluebird
from repro.baselines.caching import CachingScheme
from repro.baselines.controller import Controller
from repro.baselines.dht import DhtStore
from repro.baselines.direct import Direct
from repro.baselines.gwcache import GwCache
from repro.baselines.hoverboard import Hoverboard
from repro.baselines.locallearning import LocalLearning
from repro.baselines.nocache import NoCache
from repro.baselines.ondemand import OnDemand

__all__ = [
    "TranslationScheme",
    "CachingScheme",
    "NoCache",
    "Direct",
    "OnDemand",
    "GwCache",
    "LocalLearning",
    "Bluebird",
    "Controller",
    "Hoverboard",
    "DhtStore",
]
