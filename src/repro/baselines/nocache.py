"""NoCache: the pure gateway-driven baseline (paper §5).

Every packet is forwarded to a per-flow gateway, which performs the
translation and forwards it on — the Hoverboard/Andromeda model without
host offloading.  This baseline normalizes all FCT and first-packet
latency improvement factors in the paper's figures.
"""

from __future__ import annotations

from repro.baselines.base import TranslationScheme


class NoCache(TranslationScheme):
    """Pure gateway forwarding; the behaviour is entirely the base class."""

    name = "NoCache"
