"""Shared machinery for schemes that cache mappings inside switches.

GwCache, LocalLearning and SwitchV2P all place
:class:`~repro.cache.direct_mapped.DirectMappedCache` instances on some
subset of switches, perform lookups for unresolved packets and learn
mappings from passing traffic.  This module centralizes that plumbing —
including the paper's cache-budget convention (one aggregate budget
divided equally across the caching switches) and the misdelivery-tag
semantics every cached lookup must respect (§3.3).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import TYPE_CHECKING

from repro.baselines.base import TranslationScheme
from repro.cache.direct_mapped import DirectMappedCache, InsertResult
from repro.net.packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Switch
    from repro.vnet.network import VirtualNetwork


def is_first_packet(packet: Packet) -> bool:
    """True for the opening data packet of a flow (first-packet metrics)."""
    return packet.kind == PacketKind.DATA and packet.seq == 0


class CachingScheme(TranslationScheme):
    """Base for schemes with in-switch caches.

    Args:
        total_cache_slots: aggregate cache budget (entries), divided
            equally among this scheme's caching switches, per the
            paper's sizing convention (§5 "In-switch memory size").
    """

    fluid_compatible = True

    def __init__(self, total_cache_slots: int) -> None:
        super().__init__()
        if total_cache_slots < 0:
            raise ValueError(f"negative cache budget: {total_cache_slots}")
        self.total_cache_slots = total_cache_slots
        self.caches: dict[int, DirectMappedCache] = {}
        #: ``switch_id -> zero-arg callback`` factory installed by the
        #: fluid scheduler; every cache (including fault-reset rebuilds)
        #: gets its observer attached from it.
        self.cache_observer = None

    # ------------------------------------------------------------------
    # cache construction
    # ------------------------------------------------------------------
    def caching_switch_ids(self, network: VirtualNetwork) -> Iterable[int]:
        """Which switches cache; subclasses narrow this (default: all)."""
        return [switch.switch_id for switch in network.fabric.switches]

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self.prepare(network)
        ids = list(self.caching_switch_ids(network))
        slots = self.slots_by_switch(network, ids)
        self.caches = {
            switch_id: self.make_cache(slots[switch_id],
                                       salt=switch_id * 0x9E3779B1)
            for switch_id in ids
        }
        if self.cache_observer is not None:
            self.set_cache_observer(self.cache_observer)

    def set_cache_observer(self, factory) -> None:
        """Attach mutation observers to every cache (hybrid fidelity).

        ``factory(switch_id)`` returns the zero-arg callback handed to
        each cache's ``attach_observer`` (which swaps the instance to
        its observed subclass).  Caches without the method (alternative
        geometries) are skipped; the fluid scheduler separately refuses
        adoption when any cache lacks it.
        """
        self.cache_observer = factory
        for switch_id, cache in self.caches.items():
            attach = getattr(cache, "attach_observer", None)
            if attach is not None:
                attach(factory(switch_id))

    def make_cache(self, num_slots: int, salt: int) -> DirectMappedCache:
        """Cache constructor; subclasses may swap the geometry."""
        return DirectMappedCache(num_slots, salt=salt)

    def prepare(self, network: VirtualNetwork) -> None:
        """Hook run before cache construction (roles, RNGs, ...)."""

    def slots_by_switch(self, network: VirtualNetwork,
                        ids: list[int]) -> dict[int, int]:
        """Per-switch slot counts; default is the equal split of §5."""
        per_switch = self.total_cache_slots // len(ids) if ids else 0
        return {switch_id: per_switch for switch_id in ids}

    def cache_of(self, switch: Switch) -> DirectMappedCache | None:
        return self.caches.get(switch.switch_id)

    def on_switch_reset(self, switch: Switch) -> None:
        """Fault hook: a failed/recovered switch loses its SRAM state.

        Invoked by :meth:`Switch.fail`/:meth:`Switch.recover`; the
        switch's cache is rebuilt empty with the same geometry and
        fresh stats, so a recovered switch re-warms from scratch
        (cold restart, matching the paper's opportunistic-cache model).
        """
        cache = self.caches.get(switch.switch_id)
        if cache is None:
            return
        fresh = self.make_cache(cache.num_slots, salt=cache.salt)
        if self.cache_observer is not None:
            attach = getattr(fresh, "attach_observer", None)
            if attach is not None:
                attach(self.cache_observer(switch.switch_id))
        self.caches[switch.switch_id] = fresh

    # ------------------------------------------------------------------
    # data-plane building blocks
    # ------------------------------------------------------------------
    #: Sentinel distinguishing "not passed" from "switch has no cache".
    _UNSET_CACHE = object()

    def try_resolve(self, switch: Switch, packet: Packet,
                    cache=_UNSET_CACHE) -> bool:
        """Look up an unresolved packet in ``switch``'s cache.

        Handles the misdelivery-tag protocol: a tagged packet carries
        its stale ``(vip, old_pip)`` pair; a cache holding exactly that
        value invalidates it and reports a miss, while a cache holding
        a *different* (fresher) value may still serve the packet.

        Args:
            cache: hot-path callers that already fetched the switch's
                cache may pass it (or None) to skip the second lookup.

        Returns:
            True if the packet was resolved by this switch.
        """
        if cache is CachingScheme._UNSET_CACHE:
            cache = self.caches.get(switch.switch_id)
        if cache is None or packet.resolved:
            return False
        vip = packet.dst_vip
        if packet._misdelivery_tag and packet._carried_mapping is not None:
            stale_vip, stale_pip = packet._carried_mapping
            if stale_vip == vip and cache.invalidate(vip, stale_pip):
                return False
        pip = cache.lookup(vip)
        if pip is None:
            return False
        if packet._misdelivery_tag and packet._carried_mapping is not None:
            stale_vip, stale_pip = packet._carried_mapping
            if stale_vip == vip and pip == stale_pip:
                # Defensive: a racing insert could re-introduce the
                # stale value between the invalidate and the lookup.
                cache.invalidate(vip, stale_pip)
                return False
        packet.outer_dst = pip
        packet.resolved = True
        packet.hit_switch = switch.switch_id
        self.network.collector.record_hit(
            switch.layer, packet.kind is PacketKind.DATA and packet.seq == 0)
        return True

    def learn_destination(self, switch: Switch, packet: Packet,
                          only_if_clear: bool = False) -> InsertResult | None:
        """Destination learning: cache (dst VIP -> outer dst) if resolved."""
        if not packet.resolved:
            return None
        cache = self.cache_of(switch)
        if cache is None:
            return None
        return cache.insert(packet.dst_vip, packet.outer_dst, only_if_clear)

    def learn_source(self, switch: Switch, packet: Packet,
                     only_if_clear: bool = False) -> InsertResult | None:
        """Source learning: cache (src VIP -> outer src); always valid."""
        cache = self.cache_of(switch)
        if cache is None:
            return None
        return cache.insert(packet.src_vip, packet.outer_src, only_if_clear)

    def is_traffic(self, packet: Packet) -> bool:
        """Data-plane traffic that carries learnable headers."""
        return packet.kind in (PacketKind.DATA, PacketKind.ACK)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_cached_entries(self) -> int:
        return sum(cache.occupancy() for cache in self.caches.values())

    def aggregate_hit_stats(self) -> tuple[int, int]:
        """(lookups, hits) summed over every cache in the scheme."""
        lookups = sum(cache.stats.lookups for cache in self.caches.values())
        hits = sum(cache.stats.hits for cache in self.caches.values())
        return lookups, hits
