"""GwCache: caching only at gateway ToRs, mimicking Sailfish (paper §5).

Sailfish accelerates cloud gateways by moving the V2P table into the
gateway's programmable ToR switch.  Here the gateway-ToR caches learn
mappings dynamically in the data plane (destination learning from
gateway-translated traffic), which is the variant the paper evaluates.
A hit still requires the packet to travel all the way to the gateway
pod — the structural disadvantage SwitchV2P removes (§5.1, "FCT vs.
cache hit rate").
"""

from __future__ import annotations

from repro.baselines.caching import CachingScheme
from repro.net.packet import Packet
from repro.vnet.network import VirtualNetwork


class GwCache(CachingScheme):
    """Destination-learning caches on the gateway ToR switches only."""

    name = "GwCache"

    def caching_switch_ids(self, network: VirtualNetwork):
        return sorted(network.fabric.gateway_tor_ids())

    def on_switch(self, switch, packet: Packet, ingress) -> bool:
        if not self.is_traffic(packet):
            return True
        if self.try_resolve(switch, packet):
            return True
        self.learn_destination(switch, packet)
        return True
