"""Controller: centralized cache allocation via optimization (paper §5, A.1-A.2).

A theoretical baseline: a centralized controller periodically collects
the exact traffic matrix, solves the cache-placement problem — which
V2P mappings to cache on which switches, subject to per-switch capacity
— and installs the result.  The paper formulates it as an ILP (solved
with Z3, often timing out beyond small cases) and concludes it is
impractical; it serves as a sanity upper bound for small caches whose
advantage evaporates as staleness dominates (Appendix A.2).

Two solvers are provided:

* ``"greedy"`` (default): flows sorted by traffic volume greedily claim
  the highest-saving switch on their gateway path with free capacity —
  directly encoding the two ILP insights the paper extracts (§A.1):
  minimize misses, and "move mappings to the traffic".
* ``"milp"``: the exact linearized ILP via scipy's HiGHS backend, for
  small instances (tests validate greedy against it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.caching import CachingScheme
from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Switch
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import usec
from repro.vnet.gateway import Gateway
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork


def upward_path(network: VirtualNetwork, src_pip: int, gateway_pip: int,
                flow_id: int) -> list[Switch]:
    """The exact switch sequence a flow's unresolved packets traverse.

    Replays the fabric's deterministic ECMP decisions without
    transmitting anything, so the controller can reason about real
    paths (the paper assumes advance knowledge of gateway paths, §A.1).
    """
    probe = Packet(PacketKind.DATA, flow_id=flow_id, seq=0, payload_bytes=0,
                   src_vip=0, dst_vip=0, outer_src=src_pip, outer_dst=gateway_pip)
    tor = network.fabric.tors[(pip_pod(src_pip), pip_rack(src_pip))]
    path = [tor]
    node = tor
    for _ in range(10):  # fat-tree paths are short; bound defensively
        link = node.next_hop(probe)
        if link is None:
            break
        nxt = link.dst
        if isinstance(nxt, Gateway):
            break
        if not isinstance(nxt, Switch):
            break
        path.append(nxt)
        node = nxt
    return path


def switch_to_host_hops(switch: Switch, pip: int) -> int:
    """Number of switch hops from ``switch`` down/across to a host."""
    pod, rack = pip_pod(pip), pip_rack(pip)
    if switch.layer.name == "TOR":
        if switch.pod == pod and switch.rack == rack:
            return 1
        if switch.pod == pod:
            return 3  # up to a spine, down to the other ToR
        return 5
    if switch.layer.name == "SPINE":
        if switch.pod == pod:
            return 2
        return 4
    return 3  # core -> spine -> tor -> host


@dataclass
class _FlowStat:
    src_pip: int
    dst_vip: int
    gateway_pip: int
    packets: int = 0


class Controller(CachingScheme):
    """Periodic centralized cache placement (theoretical baseline)."""

    name = "Controller"

    def __init__(self, total_cache_slots: int, period_ns: int = usec(150),
                 hop_cost_ns: int = usec(1), solver: str = "greedy") -> None:
        super().__init__(total_cache_slots)
        if solver not in ("greedy", "milp"):
            raise ValueError(f"unknown solver {solver!r}")
        self.period_ns = period_ns
        self.hop_cost_ns = hop_cost_ns
        self.solver = solver
        self._flow_stats: dict[int, _FlowStat] = {}
        self.invocations = 0

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._flow_stats = {}
        network.engine.schedule(self.period_ns, self._invoke)

    # ------------------------------------------------------------------
    # data plane: default gateway sends, lookup-only switches
    # ------------------------------------------------------------------
    def on_host_send(self, host: Host, packet: Packet) -> None:
        self.send_via_gateway(packet)
        if packet.kind == PacketKind.DATA or packet.kind == PacketKind.ACK:
            stat = self._flow_stats.get(packet.flow_id)
            if stat is None:
                stat = _FlowStat(src_pip=host.pip, dst_vip=packet.dst_vip,
                                 gateway_pip=packet.outer_dst)
                self._flow_stats[packet.flow_id] = stat
            stat.packets += 1

    def on_switch(self, switch, packet: Packet, ingress) -> bool:
        if self.is_traffic(packet):
            self.try_resolve(switch, packet)
        return True

    # ------------------------------------------------------------------
    # periodic allocation
    # ------------------------------------------------------------------
    def _invoke(self) -> None:
        assert self.network is not None
        self.invocations += 1
        placement = self.solve_placement()
        self._install(placement)
        self._flow_stats = {}
        self.network.engine.schedule_after(self.period_ns, self._invoke)

    def _candidate_savings(self):
        """Per-flow candidate placements with their per-packet savings."""
        assert self.network is not None
        network = self.network
        database = network.database
        flows = []
        for flow_id, stat in self._flow_stats.items():
            dst_pip = database.get(stat.dst_vip)
            if dst_pip is None:
                continue
            path = upward_path(network, stat.src_pip, stat.gateway_pip, flow_id)
            gw_tor_hops = len(path)
            gateway_cost = (
                gw_tor_hops * self.hop_cost_ns
                + network.config.gateway_processing_ns
                + switch_to_host_hops(path[-1], dst_pip) * self.hop_cost_ns
            )
            candidates = []
            for depth, switch in enumerate(path, start=1):
                via_cost = (depth * self.hop_cost_ns
                            + switch_to_host_hops(switch, dst_pip)
                            * self.hop_cost_ns)
                saving = gateway_cost - via_cost
                if saving > 0:
                    candidates.append((switch.switch_id, saving))
            if candidates:
                flows.append((stat.dst_vip, dst_pip, stat.packets, candidates))
        return flows

    def solve_placement(self) -> dict[int, list[tuple[int, int]]]:
        """Compute switch_id -> [(vip, pip)] under per-switch capacity."""
        flows = self._candidate_savings()
        if not flows:
            return {}
        if self.solver == "milp":
            return self._solve_milp(flows)
        return self._solve_greedy(flows)

    def _capacity_of(self, switch_id: int) -> int:
        cache = self.caches.get(switch_id)
        return cache.num_slots if cache is not None else 0

    def _solve_greedy(self, flows) -> dict[int, list[tuple[int, int]]]:
        placement: dict[int, list[tuple[int, int]]] = {}
        placed: dict[int, set[int]] = {}
        used: dict[int, int] = {}
        # Highest-volume flows choose first, taking their best candidate.
        for vip, pip, packets, candidates in sorted(
                flows, key=lambda item: -item[2] * max(s for _, s in item[3])):
            best = sorted(candidates, key=lambda c: -c[1])
            for switch_id, _saving in best:
                if vip in placed.get(switch_id, ()):  # already covered here
                    break
                if used.get(switch_id, 0) >= self._capacity_of(switch_id):
                    continue
                placement.setdefault(switch_id, []).append((vip, pip))
                placed.setdefault(switch_id, set()).add(vip)
                used[switch_id] = used.get(switch_id, 0) + 1
                break
        return placement

    def _solve_milp(self, flows) -> dict[int, list[tuple[int, int]]]:
        """Exact linearized ILP via scipy (small instances only)."""
        from scipy.optimize import Bounds, LinearConstraint, milp

        # Variables: one K per (switch, vip) pair that appears, plus one
        # y per (flow, candidate) pair; maximize total saved latency.
        pair_index: dict[tuple[int, int], int] = {}
        pair_pip: dict[tuple[int, int], int] = {}
        y_entries = []  # (flow_idx, pair_idx, weight)
        for f_idx, (vip, pip, packets, candidates) in enumerate(flows):
            for switch_id, saving in candidates:
                key = (switch_id, vip)
                if key not in pair_index:
                    pair_index[key] = len(pair_index)
                    pair_pip[key] = pip
                y_entries.append((f_idx, pair_index[key], packets * saving))
        num_k = len(pair_index)
        num_y = len(y_entries)
        num_vars = num_k + num_y
        objective = np.zeros(num_vars)
        for y_idx, (_f, _p, weight) in enumerate(y_entries):
            objective[num_k + y_idx] = -float(weight)  # milp minimizes

        rows, cols, vals, lower, upper = [], [], [], [], []
        row = 0
        # y <= K  (a flow can only use an installed mapping).
        for y_idx, (_f, pair_idx, _w) in enumerate(y_entries):
            rows += [row, row]
            cols += [num_k + y_idx, pair_idx]
            vals += [1.0, -1.0]
            lower.append(-np.inf)
            upper.append(0.0)
            row += 1
        # Each flow uses at most one placement.
        by_flow: dict[int, list[int]] = {}
        for y_idx, (f_idx, _p, _w) in enumerate(y_entries):
            by_flow.setdefault(f_idx, []).append(y_idx)
        for f_idx, ys in by_flow.items():
            for y_idx in ys:
                rows.append(row)
                cols.append(num_k + y_idx)
                vals.append(1.0)
            lower.append(-np.inf)
            upper.append(1.0)
            row += 1
        # Per-switch capacity.
        by_switch: dict[int, list[int]] = {}
        for (switch_id, _vip), pair_idx in pair_index.items():
            by_switch.setdefault(switch_id, []).append(pair_idx)
        for switch_id, pairs in by_switch.items():
            for pair_idx in pairs:
                rows.append(row)
                cols.append(pair_idx)
                vals.append(1.0)
            lower.append(-np.inf)
            upper.append(float(self._capacity_of(switch_id)))
            row += 1

        from scipy.sparse import coo_matrix
        matrix = coo_matrix((vals, (rows, cols)), shape=(row, num_vars))
        constraint = LinearConstraint(matrix, lower, upper)
        result = milp(
            c=objective,
            integrality=np.ones(num_vars),
            bounds=Bounds(0, 1),
            constraints=[constraint],
        )
        placement: dict[int, list[tuple[int, int]]] = {}
        if result.x is None:
            return placement
        for (switch_id, vip), pair_idx in pair_index.items():
            if result.x[pair_idx] > 0.5:
                placement.setdefault(switch_id, []).append(
                    (vip, pair_pip[(switch_id, vip)]))
        return placement

    def _install(self, placement: dict[int, list[tuple[int, int]]]) -> None:
        """Replace every cache's contents with the computed allocation."""
        for switch_id, cache in self.caches.items():
            cache.clear()
            for vip, pip in placement.get(switch_id, []):
                cache.insert(vip, pip)
