"""OnDemand: host-driven with a first lookup in the gateway (paper §5).

Resembles VL2's on-demand resolution, the Hoverboard model with an
immediate rule-offloading policy, and Achelous' ALM: the first packet
to an unknown destination detours through a gateway (paying the ~40 us
miss penalty), after which the mapping is installed in the sender's
hypervisor and all subsequent packets go direct.  Host caches are
effectively infinite and are *not* proactively updated on migration —
the controller-side rule push takes milliseconds (Zeta/Achelous), so
within the simulated window stale host entries persist and misrouted
packets rely on follow-me rules (paper §5.2).
"""

from __future__ import annotations

from repro.baselines.base import TranslationScheme
from repro.net.packet import Packet
from repro.sim.engine import usec
from repro.vnet.hypervisor import Host
from repro.vnet.network import VirtualNetwork

#: Delay from the miss until the mapping is usable at the host: the
#: gateway round trip (processing plus base RTT), after which the
#: hypervisor's flow-cache rule is active.
DEFAULT_INSTALL_DELAY_NS = usec(52)


class OnDemand(TranslationScheme):
    """Per-host lazy mapping caches filled on first use."""

    name = "OnDemand"

    def __init__(self, install_delay_ns: int = DEFAULT_INSTALL_DELAY_NS) -> None:
        super().__init__()
        self.install_delay_ns = install_delay_ns
        self._host_caches: dict[int, dict[int, int]] = {}
        self._pending: set[tuple[int, int]] = set()
        self.host_cache_installs = 0

    def setup(self, network: VirtualNetwork) -> None:
        super().setup(network)
        self._host_caches = {host.pip: {} for host in network.hosts}
        self._pending.clear()

    def on_host_send(self, host: Host, packet: Packet) -> None:
        cache = self._host_caches[host.pip]
        pip = cache.get(packet.dst_vip)
        if pip is not None:
            self.resolve(packet, pip)
            return
        self.send_via_gateway(packet)
        key = (host.pip, packet.dst_vip)
        if key not in self._pending:
            self._pending.add(key)
            assert self.network is not None
            self.network.engine.schedule_after(
                self.install_delay_ns, self._install, host.pip, packet.dst_vip)

    def _install(self, host_pip: int, vip: int) -> None:
        """Install the mapping as it is known at install time.

        The install models the answer of a gateway round trip, so it
        only succeeds while some gateway is healthy; during a total
        gateway outage the lookup is lost and the next packet to the
        destination retries it.
        """
        assert self.network is not None
        self._pending.discard((host_pip, vip))
        if not any(not gateway.failed for gateway in self.network.gateways):
            return
        pip = self.network.database.get(vip)
        if pip is not None:
            self._host_caches[host_pip][vip] = pip
            self.host_cache_installs += 1

    def cached_mappings(self, host: Host) -> dict[int, int]:
        """The host's current mapping cache (read-only view for tests)."""
        return dict(self._host_caches.get(host.pip, {}))
