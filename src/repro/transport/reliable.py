"""A simplified reliable windowed transport (TCP-like).

The paper's FCT results hinge on how translation detours and drops
interact with a window-based transport: slow start amplifies the
first-RTT latency of short flows, and drops near overloaded gateways
depress throughput.  This implementation models exactly those effects —
IW10 slow start, AIMD-style backoff, duplicate-ACK fast retransmit and
an exponential-backoff RTO — while staying cheap enough to simulate
hundreds of thousands of packets in pure Python.

Reordering tolerance: SwitchV2P can reorder packets when a cache
becomes populated mid-burst (§4).  Modern stacks tolerate large
reordering (Linux allows up to 300 reordered segments; RACK-TLP is
similarly robust), so the default duplicate-ACK threshold is high and
configurable; the reordering a run experienced is still recorded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.metrics.collector import FlowRecord
from repro.net.packet import MSS_BYTES, Packet, PacketKind
from repro.sim.engine import usec
from repro.vnet.hypervisor import Host


@dataclass(frozen=True)
class TransportConfig:
    """Reliable-transport tuning parameters."""

    mss_bytes: int = MSS_BYTES
    initial_cwnd: int = 10
    max_cwnd: int = 128
    dupack_threshold: int = 50
    initial_rto_ns: int = usec(500)
    min_rto_ns: int = usec(100)
    max_rto_ns: int = usec(64_000)
    #: RTO retransmissions of the same hole before the flow is
    #: abandoned and its record marked failed (Linux tcp_retries2-style
    #: give-up).  Without a cap, a sender whose destination — or every
    #: gateway — is dead retransmits forever and experiments never
    #: reach a terminal state.
    max_retransmits: int = 16

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ValueError("mss must be positive")
        if self.initial_cwnd < 1 or self.max_cwnd < self.initial_cwnd:
            raise ValueError("invalid congestion window bounds")
        if self.max_retransmits < 1:
            raise ValueError("max_retransmits must be >= 1")


class ReliableSender:
    """Sender half of one reliable flow."""

    def __init__(self, record: FlowRecord, host: Host, config: TransportConfig,
                 engine) -> None:
        self.record = record
        self.host = host
        self.config = config
        self.engine = engine
        self.total_packets = max(1, math.ceil(record.size_bytes / config.mss_bytes))
        self.snd_una = 0
        self.snd_next = 0
        self.cwnd = float(config.initial_cwnd)
        self.ssthresh = float(config.max_cwnd)
        self.dup_acks = 0
        self.rto_ns = config.initial_rto_ns
        self._timer = None
        self.done = False
        #: Total ACK packets received (not cumulative progress) — the
        #: hybrid-fidelity drain below needs to know when every sent
        #: packet has been acknowledged *individually*, which a
        #: cumulative ACK cannot tell.
        self.acks_received = 0
        #: Hybrid-fidelity hooks, wired by the traffic player when the
        #: network runs with ``fidelity="hybrid"``; all None/False in
        #: pure-packet mode, where every branch below short-circuits.
        self.fluid = None
        self.fluid_receiver = None
        self._fluid_active = False
        self._fluid_wait = False
        self._fluid_attempts = 0
        self._fluid_retry_seq = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._send_window()
        self._arm_timer()

    def _payload_of(self, seq: int) -> int:
        if seq == self.total_packets - 1:
            remainder = self.record.size_bytes - seq * self.config.mss_bytes
            return remainder if remainder > 0 else self.config.mss_bytes
        return self.config.mss_bytes

    def _send_segment(self, seq: int) -> None:
        host = self.host
        host.send(host.new_packet(
            PacketKind.DATA, self.record.flow_id, seq, self._payload_of(seq),
            self.record.src_vip, self.record.dst_vip))

    def _send_window(self) -> None:
        limit = min(self.total_packets, self.snd_una + int(self.cwnd))
        while self.snd_next < limit:
            self._send_segment(self.snd_next)
            self.snd_next += 1

    # ------------------------------------------------------------------
    def on_ack(self, cumulative_seq: int) -> None:
        self.acks_received += 1
        if self.done:
            return
        if self._fluid_active:
            # A stale ACK (a duplicate delivery from a pre-adoption
            # retransmission) arriving while the fluid scheduler owns
            # this flow: the scheduler's analytic state supersedes it.
            return
        config = self.config
        if cumulative_seq > self.snd_una:
            newly_acked = cumulative_seq - self.snd_una
            self.snd_una = cumulative_seq
            self.dup_acks = 0
            self.rto_ns = config.initial_rto_ns
            if self.cwnd < self.ssthresh:
                self.cwnd = min(config.max_cwnd, self.cwnd + newly_acked)
            else:
                self.cwnd = min(config.max_cwnd,
                                self.cwnd + newly_acked / self.cwnd)
            if self.snd_una >= self.total_packets:
                self.done = True
                self.engine.cancel_timer(self._timer)
                self._timer = None
                return
            if self._fluid_wait:
                if (self.snd_una == self.snd_next
                        and self.acks_received == self.snd_next):
                    # Pipe fully drained: every sent packet delivered
                    # and acknowledged exactly once.  Hand the flow to
                    # the fluid scheduler, which either adopts it or
                    # restores + resumes us before returning.
                    self._fluid_wait = False
                    self.engine.cancel_timer(self._timer)
                    self._timer = None
                    self.fluid.adopt_reliable(self)
                # Still draining: skip the window refill so the pipe
                # empties; the armed RTO aborts a stalled wait.
                return
            fluid = self.fluid
            if (fluid is not None
                    and self.record.retransmissions == 0
                    and self.cwnd >= config.max_cwnd
                    and self.snd_una >= self._fluid_retry_seq
                    and self._fluid_attempts < fluid.max_attempts
                    and self.total_packets - self.snd_next
                        >= config.max_cwnd + fluid.min_span):
                # Steady state with a long analytically-advanceable
                # run ahead: stop refilling and drain toward adoption.
                self._fluid_wait = True
                return
            self._send_window()
            self._arm_timer()
            return
        # Duplicate cumulative ACK.
        if self._fluid_wait:
            # Reordering or loss showed up mid-drain: abort the wait
            # and resume normal windowed sending before dup handling.
            self._fluid_wait = False
            self._fluid_attempts += 1
            self._fluid_retry_seq = self.snd_una + 2 * int(self.cwnd)
            self._send_window()
            self._arm_timer()
        self.dup_acks += 1
        if self.dup_acks >= config.dupack_threshold:
            self.dup_acks = 0
            self._enter_recovery()
            self._send_segment(self.snd_una)
            self.record.retransmissions += 1

    def _enter_recovery(self) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = self.ssthresh

    # ------------------------------------------------------------------
    def _arm_timer(self) -> None:
        # Re-arming cancels the previous timer in O(1); the dead entry
        # is discarded in bulk when its wheel bucket is swept instead of
        # churning through the main event heap.
        engine = self.engine
        engine.cancel_timer(self._timer)
        self._timer = engine.schedule_timer(self.rto_ns, self._on_timeout,
                                            self.snd_una)

    def _on_timeout(self, una_at_arm: int) -> None:
        self._timer = None
        if self.done:
            return
        if self.snd_una > una_at_arm:
            # Progress since arming; re-arm fresh.
            self._arm_timer()
            return
        if self._fluid_wait:
            # The pre-adoption drain stalled (a tail ACK was lost):
            # abort the wait and resume windowed sending.  If data was
            # lost too, the next timeout takes the retransmit path.
            self._fluid_wait = False
            self._fluid_attempts += 1
            self._fluid_retry_seq = self.snd_una + 2 * int(self.cwnd)
            self._send_window()
            self._arm_timer()
            return
        if self.record.retransmissions >= self.config.max_retransmits:
            # Give up: the destination (or every gateway on the way to
            # it) is unreachable.  Terminal state — no more timers.  A
            # record the receiver already completed stays completed:
            # only the tail ACKs were lost, and a flow must never be
            # both completed and failed.
            if not self.record.completed:
                self.record.failed = True
                self.record.failure_reason = "max-retransmits"
            self.done = True
            return
        # Retransmission timeout: go back to the hole, collapse cwnd.
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = float(self.config.initial_cwnd)
        self.snd_next = max(self.snd_next, self.snd_una + 1)
        self._send_segment(self.snd_una)
        self.record.retransmissions += 1
        self.rto_ns = min(self.config.max_rto_ns, self.rto_ns * 2)
        self._arm_timer()


class ReliableReceiver:
    """Receiver half of one reliable flow: cumulative ACKs, completion."""

    def __init__(self, record: FlowRecord, config: TransportConfig, engine,
                 collector, total_packets: int,
                 on_complete=None) -> None:
        self.record = record
        self.config = config
        self.engine = engine
        self.collector = collector
        self.total_packets = total_packets
        self.rcv_next = 0
        self._out_of_order: set[int] = set()
        self._max_seen = -1
        self.on_complete = on_complete
        self._completed = False

    def on_data(self, packet: Packet, host: Host) -> None:
        now = self.engine._now
        record = self.record
        if record.first_packet_latency_ns is None:
            record.first_packet_latency_ns = now - record.start_ns
        seq = packet.seq
        if seq < self._max_seen:
            self.collector.reorder_events += 1
        if seq > self._max_seen:
            self._max_seen = seq
        if seq >= self.rcv_next and seq not in self._out_of_order:
            record.bytes_received += packet.payload_bytes
            self._out_of_order.add(seq)
            while self.rcv_next in self._out_of_order:
                self._out_of_order.discard(self.rcv_next)
                self.rcv_next += 1
        # Inlined _send_ack (one ACK per data packet received).
        host.send(host.new_packet(
            PacketKind.ACK, packet.flow_id, self.rcv_next, 0,
            packet.dst_vip, packet.src_vip))
        if not self._completed and self.rcv_next >= self.total_packets:
            self._completed = True
            record.fct_ns = now - record.start_ns
            if self.on_complete is not None:
                self.on_complete(record)

    def _send_ack(self, packet: Packet, host: Host) -> None:
        host.send(host.new_packet(
            PacketKind.ACK, packet.flow_id, self.rcv_next, 0,
            packet.dst_vip, packet.src_vip))
