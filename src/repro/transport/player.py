"""The traffic player: runs flow specs over a virtual network.

The player owns the per-VIP endpoint demultiplexers, creates senders
and receivers, handles RPC response flows, and registers every flow
with the metrics collector.  It is the single entry point experiments
use to inject a trace into a simulation.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.metrics.collector import FlowRecord
from repro.net.packet import Packet, PacketKind
from repro.transport.flow import FlowSpec
from repro.transport.reliable import ReliableReceiver, ReliableSender, TransportConfig
from repro.transport.udp import UdpReceiver, UdpSender
from repro.vnet.network import VirtualNetwork

_DATA = PacketKind.DATA
_ACK = PacketKind.ACK


class _VipDemux:
    """Routes packets arriving for one VIP to per-flow transport state."""

    __slots__ = ("player", "vip", "receivers", "senders")

    def __init__(self, player: TrafficPlayer, vip: int) -> None:
        self.player = player
        self.vip = vip
        self.receivers: dict[int, object] = {}
        self.senders: dict[int, ReliableSender] = {}

    def on_packet(self, packet: Packet) -> None:
        kind = packet.kind
        if kind is _DATA:
            receiver = self.receivers.get(packet.flow_id)
            if receiver is not None:
                # Inlined network.host_of(); resolved per packet on
                # purpose — endpoints move with their VM, so the
                # backing host cannot be cached here.
                network = self.player.network
                host = network.host_by_pip[network.database.lookup(self.vip)]
                receiver.on_data(packet, host)
        elif kind is _ACK:
            sender = self.senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet.seq)


class TrafficPlayer:
    """Injects flows into a :class:`VirtualNetwork` and tracks them."""

    def __init__(self, network: VirtualNetwork,
                 transport_config: TransportConfig | None = None) -> None:
        self.network = network
        self.config = transport_config if transport_config is not None \
            else TransportConfig()
        self._next_flow_id = 1
        self._demux: dict[int, _VipDemux] = {}
        self.flows: list[FlowRecord] = []

    # ------------------------------------------------------------------
    def add_flows(self, specs: Iterable[FlowSpec]) -> list[FlowRecord]:
        """Register flows and schedule their start events."""
        records = []
        for spec in specs:
            records.append(self._add_flow(spec))
        return records

    def _add_flow(self, spec: FlowSpec) -> FlowRecord:
        flow_id = spec.flow_id
        if flow_id is None:
            flow_id = self._next_flow_id
        self._next_flow_id = max(self._next_flow_id, flow_id) + 1
        record = FlowRecord(
            flow_id=flow_id,
            src_vip=spec.src_vip,
            dst_vip=spec.dst_vip,
            size_bytes=spec.size_bytes,
            start_ns=spec.start_ns,
        )
        self.network.collector.register_flow(record)
        self.flows.append(record)
        self.network.engine.schedule(spec.start_ns, self._start_flow, spec, record)
        return record

    # ------------------------------------------------------------------
    def _demux_for(self, vip: int) -> _VipDemux:
        demux = self._demux.get(vip)
        if demux is None:
            demux = _VipDemux(self, vip)
            self._demux[vip] = demux
            self.network.host_of(vip).endpoints[vip] = demux
        return demux

    def _start_flow(self, spec: FlowSpec, record: FlowRecord) -> None:
        src_host = self.network.host_of(spec.src_vip)
        src_demux = self._demux_for(spec.src_vip)
        dst_demux = self._demux_for(spec.dst_vip)
        on_complete = None
        if spec.response_bytes > 0:
            on_complete = self._make_response_starter(spec)
        if spec.transport == "udp":
            sender = UdpSender(record, src_host, self.network.engine,
                               spec.udp_rate_bps, self.config.mss_bytes)
            receiver = UdpReceiver(record, self.network.engine,
                                   self.network.collector, on_complete)
        else:
            sender = ReliableSender(record, src_host, self.config,
                                    self.network.engine)
            receiver = ReliableReceiver(record, self.config, self.network.engine,
                                        self.network.collector,
                                        sender.total_packets, on_complete)
            src_demux.senders[record.flow_id] = sender
        dst_demux.receivers[record.flow_id] = receiver
        fluid = self.network.fluid
        if fluid is not None:
            sender.fluid = fluid
            sender.fluid_receiver = receiver
        sender.start()

    def _make_response_starter(self, request: FlowSpec):
        def start_response(record: FlowRecord) -> None:
            response = FlowSpec(
                src_vip=request.dst_vip,
                dst_vip=request.src_vip,
                size_bytes=request.response_bytes,
                start_ns=self.network.engine.now,
                transport=request.transport,
                udp_rate_bps=request.udp_rate_bps,
            )
            self._add_flow(response)
        return start_response

    # ------------------------------------------------------------------
    # lifecycle hygiene (long-horizon runs)
    # ------------------------------------------------------------------
    def flow_is_quiescent(self, record: FlowRecord) -> bool:
        """Terminal *and* its transport state is safe to drop.

        A completed record can still have a sender draining its final
        ACKs; pruning the receiver then would strand the sender in
        retransmission until give-up.  Quiescent means: the record is
        terminal and the sender (if any) is done.
        """
        if not (record.completed or record.failed):
            return False
        demux = self._demux.get(record.src_vip)
        sender = demux.senders.get(record.flow_id) if demux is not None else None
        return sender is None or sender.done

    def prune_terminal(self) -> int:
        """Drop transport state and records of quiescent flows.

        Long-horizon service runs call this periodically (once per
        metrics window); without it ``flows`` and the per-VIP demux
        tables grow with every flow ever played, defeating the
        bounded-memory design of streaming collection.  Returns the
        number of flows pruned.
        """
        kept: list[FlowRecord] = []
        pruned = 0
        for record in self.flows:
            if not self.flow_is_quiescent(record):
                kept.append(record)
                continue
            src_demux = self._demux.get(record.src_vip)
            if src_demux is not None:
                src_demux.senders.pop(record.flow_id, None)
            dst_demux = self._demux.get(record.dst_vip)
            if dst_demux is not None:
                dst_demux.receivers.pop(record.flow_id, None)
            pruned += 1
        self.flows = kept
        return pruned

    def release_vip(self, vip: int) -> None:
        """Forget the demux of a retired VIP (after its flows drained).

        The host-side endpoint is dropped separately by
        :meth:`~repro.vnet.network.VirtualNetwork.retire_vm`.
        """
        self._demux.pop(vip, None)

    # ------------------------------------------------------------------
    @property
    def all_complete(self) -> bool:
        return all(record.completed for record in self.flows)

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Convenience: run the underlying network simulation."""
        return self.network.run(until=until, max_events=max_events)
