"""Constant-rate UDP senders and byte-counting receivers.

Used by the Microbursts, Video and migration-incast workloads, whose
behaviour under the paper's schemes is dominated by per-packet latency
and misdelivery rather than congestion control.
"""

from __future__ import annotations

import math

from repro.metrics.collector import FlowRecord
from repro.net.packet import MSS_BYTES, Packet, PacketKind
from repro.vnet.hypervisor import Host


class UdpSender:
    """Emits a flow's packets at a fixed rate with no feedback."""

    def __init__(self, record: FlowRecord, host: Host, engine,
                 rate_bps: float, mss_bytes: int = MSS_BYTES) -> None:
        if rate_bps <= 0:
            raise ValueError("UDP rate must be positive")
        self.record = record
        self.host = host
        self.engine = engine
        self.rate_bps = rate_bps
        self.mss_bytes = mss_bytes
        self.total_packets = max(1, math.ceil(record.size_bytes / mss_bytes))
        self.next_seq = 0
        self.gap_ns = max(1, int(round(mss_bytes * 8e9 / rate_bps)))
        #: Hybrid-fidelity hooks, wired by the traffic player when the
        #: network runs with ``fidelity="hybrid"``; None in pure-packet
        #: mode, where the adoption branch below short-circuits.
        self.fluid = None
        self.fluid_receiver = None
        self._fluid_attempts = 0
        self._fluid_retry_seq = 0

    def start(self) -> None:
        self._send_next()

    def _payload_of(self, seq: int) -> int:
        if seq == self.total_packets - 1:
            remainder = self.record.size_bytes - seq * self.mss_bytes
            return remainder if remainder > 0 else self.mss_bytes
        return self.mss_bytes

    def _send_next(self) -> None:
        if self.next_seq >= self.total_packets:
            return
        fluid = self.fluid
        if fluid is not None and fluid.adopt_udp(self):
            # The fluid scheduler took over this tick's send (probe
            # walked in place of it) and owns pacing until escalation.
            return
        host = self.host
        host.send(host.new_packet(
            PacketKind.DATA, self.record.flow_id, self.next_seq,
            self._payload_of(self.next_seq),
            self.record.src_vip, self.record.dst_vip))
        self.next_seq += 1
        if self.next_seq < self.total_packets:
            self.engine.schedule_after(self.gap_ns, self._send_next)


class UdpReceiver:
    """Counts received bytes; completion = all bytes arrived."""

    def __init__(self, record: FlowRecord, engine, collector,
                 on_complete=None) -> None:
        self.record = record
        self.engine = engine
        self.collector = collector
        self.on_complete = on_complete
        self._seen: set[int] = set()
        self._max_seen = -1
        self._completed = False

    def on_data(self, packet: Packet, host: Host) -> None:
        now = self.engine.now
        record = self.record
        if record.first_packet_latency_ns is None:
            record.first_packet_latency_ns = now - record.start_ns
        if packet.seq < self._max_seen:
            self.collector.reorder_events += 1
        if packet.seq > self._max_seen:
            self._max_seen = packet.seq
        if packet.seq not in self._seen:
            self._seen.add(packet.seq)
            record.bytes_received += packet.payload_bytes
        if not self._completed and record.bytes_received >= record.size_bytes:
            self._completed = True
            record.fct_ns = now - record.start_ns
            if self.on_complete is not None:
                self.on_complete(record)
