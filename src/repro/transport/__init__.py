"""Transport layer: reliable windowed transport, UDP, traffic player."""

from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import ReliableReceiver, ReliableSender, TransportConfig
from repro.transport.udp import UdpReceiver, UdpSender

__all__ = [
    "FlowSpec",
    "TrafficPlayer",
    "TransportConfig",
    "ReliableSender",
    "ReliableReceiver",
    "UdpSender",
    "UdpReceiver",
]
