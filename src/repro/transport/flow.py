"""Flow specifications consumed by the traffic player."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlowSpec:
    """One application-level flow to inject into the simulation.

    Attributes:
        src_vip / dst_vip: endpoints in the virtual address space.
        size_bytes: application bytes to transfer.
        start_ns: injection time (absolute simulation time).
        transport: ``"tcp"`` (reliable windowed) or ``"udp"``
            (constant rate, unreliable).
        udp_rate_bps: send rate for UDP flows.
        response_bytes: if positive, the destination sends back a
            response flow of this size when the request completes —
            the RPC pattern of the Alibaba trace (§5 "Datasets").
        flow_id: optional explicit id; the player assigns one if None.
    """

    src_vip: int
    dst_vip: int
    size_bytes: int
    start_ns: int
    transport: str = "tcp"
    udp_rate_bps: float = 1e9
    response_bytes: int = 0
    flow_id: int | None = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {self.size_bytes}")
        if self.start_ns < 0:
            raise ValueError(f"negative start time: {self.start_ns}")
        if self.transport not in ("tcp", "udp"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.transport == "udp" and self.udp_rate_bps <= 0:
            raise ValueError("UDP flows need a positive rate")
