"""Per-figure/table experiment entry points (paper §5).

Each function regenerates one artifact of the paper's evaluation at a
configurable scale.  Bench-scale defaults keep pure-Python runtimes in
seconds; paper-scale parameters are documented in EXPERIMENTS.md.  The
functions return structured rows; the benchmarks render and print them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.experiments.runner import RunResult, run_experiment
from repro.experiments.sweeps import (
    SweepRow,
    cache_size_sweep,
    gateway_count_sweep,
    topology_scale_sweep,
)
from repro.net.node import Layer
from repro.net.topology import FatTreeSpec
from repro.traces.spec import TraceSpec
from repro.transport.reliable import TransportConfig


@dataclass(frozen=True)
class FigureScale:
    """Knobs shrinking the paper's experiments to benchmark scale.

    Paper-scale values: ``num_vms=10240``, ``hadoop_flows=99297``,
    cache ratios from 0.01 to 1500, and the FT8-10K / FT16-400K
    topologies of Table 3.  Bench defaults preserve the paper's
    destination-reuse structure (~10 flows per VM for Hadoop, <1 for
    WebSearch) at ~1/30 the flow count, and the cache ratios are chosen
    so the smallest grants SwitchV2P ~1 entry per switch, like the
    paper's 1% point.
    """

    num_vms: int = 640
    hadoop_flows: int = 6000
    websearch_flows: int = 150
    microburst_bursts: int = 350
    video_streams: int = 32
    alibaba_rpcs: int = 3000
    alibaba_services: int = 80
    alibaba_containers: int = 8
    ratios: tuple[float, ...] = (0.125, 0.5, 2.0, 8.0, 32.0)
    seed: int = 1
    #: Jumbo-frame MSS for byte-heavy traces keeps event counts sane.
    heavy_mss_bytes: int = 9000
    #: Bluebird's data-to-control channel is sized relative to offered
    #: load (the paper's 20 Gbps against ~120 Gbps per ToR, a 1:6
    #: ratio); scaled benches keep the ratio so the punt path saturates
    #: as it does at paper scale.
    bluebird_punt_ratio: float = 1 / 6


FIG5_SCHEMES = ("SwitchV2P", "GwCache", "LocalLearning", "OnDemand",
                "Bluebird", "Direct")


def ft8_spec() -> FatTreeSpec:
    """The FT8-10K fabric of Table 3 (gateways in pods 1,3,6,8)."""
    return FatTreeSpec()


def ft16_spec() -> FatTreeSpec:
    """A bench-scale stand-in for FT16-400K: more pods, more gateways."""
    return FatTreeSpec(
        pods=16,
        racks_per_pod=4,
        servers_per_rack=4,
        spines_per_pod=4,
        num_cores=16,
        gateway_pods=tuple(range(0, 16, 2)),
        gateways_per_pod=4,
    )


def trace_spec_for(name: str, scale: FigureScale) -> TraceSpec:
    """The :class:`TraceSpec` describing a named trace at this scale.

    The spec regenerates exactly the flows :func:`build_trace` returns
    (same named RNG stream per :mod:`repro.sim.randomness`), which is
    what lets parallel sweep jobs carry the spec instead of the flows.
    """
    if name == "hadoop":
        return TraceSpec.create("hadoop", scale.seed,
                                num_vms=scale.num_vms,
                                num_flows=scale.hadoop_flows)
    if name == "websearch":
        return TraceSpec.create("websearch", scale.seed,
                                num_vms=scale.num_vms,
                                num_flows=scale.websearch_flows)
    if name == "microbursts":
        return TraceSpec.create("microbursts", scale.seed,
                                num_vms=scale.num_vms,
                                num_bursts=scale.microburst_bursts)
    if name == "video":
        # Longer streams give the 0.5% learning-packet mechanism time
        # to converge, as in the paper's (much longer) video trace.
        return TraceSpec.create("video", scale.seed,
                                num_vms=scale.num_vms,
                                num_streams=scale.video_streams,
                                duration_ns=20_000_000)
    if name == "alibaba":
        return TraceSpec.create(
            "alibaba", scale.seed,
            num_services=scale.alibaba_services,
            containers_per_service=scale.alibaba_containers,
            num_rpcs=scale.alibaba_rpcs)
    raise ValueError(f"unknown trace {name!r}")


def build_trace(name: str, scale: FigureScale) -> tuple[list, int]:
    """Generate a named trace; returns (flows, num_vms)."""
    spec = trace_spec_for(name, scale)
    return spec.materialize(), spec.num_vms


def bluebird_kwargs(flows, spec: FatTreeSpec, scale: FigureScale) -> dict:
    """Scale Bluebird's punt channel to the trace's offered load.

    At paper scale the 20 Gbps channel faces ~120 Gbps of cold-cache
    traffic per ToR; scaled traces offer far less, so the channel is
    resized to keep the same saturation ratio (see FigureScale).
    """
    total_bytes = sum(flow.size_bytes for flow in flows)
    duration_ns = max((flow.start_ns for flow in flows), default=1) + 1
    num_tors = spec.pods * spec.racks_per_pod
    offered_per_tor_bps = total_bytes * 8e9 / duration_ns / num_tors
    punt = max(20e6, offered_per_tor_bps * scale.bluebird_punt_ratio)
    # The punt buffer absorbs the initial windows of the flows that are
    # concurrently cold; scale it with concurrency like the bandwidth
    # (paper scale: 1 MiB against ~100K flows).
    buffer_bytes = max(16_384, int(1_048_576 * len(flows) / 99_297))
    return {"punt_bps": punt, "punt_buffer_bytes": buffer_bytes}


def _transport_for(trace: str, scale: FigureScale) -> TransportConfig | None:
    if trace in ("websearch", "video"):
        return TransportConfig(mss_bytes=scale.heavy_mss_bytes)
    return None


# ----------------------------------------------------------------------
# Figures 5a-5d and 6: cache-size sweeps per trace
# ----------------------------------------------------------------------
def figure5(trace: str, scale: FigureScale | None = None,
            schemes: tuple[str, ...] = FIG5_SCHEMES,
            workers: int | None = None, cache="auto",
            progress=None) -> list[SweepRow]:
    """Hit rate / FCT / first-packet improvement vs cache size (FT8)."""
    scale = scale or FigureScale()
    tspec = trace_spec_for(trace, scale)
    flows, num_vms = tspec.materialize(), tspec.num_vms
    spec = ft8_spec()
    return cache_size_sweep(
        spec, flows, num_vms, scale.ratios, schemes,
        seed=scale.seed, trace_name=trace,
        transport=_transport_for(trace, scale),
        scheme_kwargs={"Bluebird": bluebird_kwargs(flows, spec, scale)},
        trace_spec=tspec, workers=workers, cache=cache, progress=progress)


def figure6(scale: FigureScale | None = None,
            schemes: tuple[str, ...] = FIG5_SCHEMES,
            workers: int | None = None, cache="auto",
            progress=None) -> list[SweepRow]:
    """The Alibaba sweep on the larger FT16-style topology."""
    scale = scale or FigureScale()
    tspec = trace_spec_for("alibaba", scale)
    flows, num_vms = tspec.materialize(), tspec.num_vms
    spec = ft16_spec()
    return cache_size_sweep(
        spec, flows, num_vms, scale.ratios, schemes,
        seed=scale.seed, trace_name="alibaba",
        scheme_kwargs={"Bluebird": bluebird_kwargs(flows, spec, scale)},
        trace_spec=tspec, workers=workers, cache=cache, progress=progress)


# ----------------------------------------------------------------------
# Figures 7/8: byte heatmaps (Hadoop, 50% cache)
# ----------------------------------------------------------------------
FIG7_SCHEMES = ("NoCache", "LocalLearning", "GwCache", "SwitchV2P", "Direct")


def figure7(scale: FigureScale | None = None,
            cache_ratio: float = 0.5) -> dict[str, RunResult]:
    """Per-pod processed bytes + packet stretch per scheme (Hadoop)."""
    scale = scale or FigureScale()
    flows, num_vms = build_trace("hadoop", scale)
    results = {}
    for scheme in FIG7_SCHEMES:
        results[scheme] = run_experiment(
            ft8_spec(), scheme, flows, num_vms, cache_ratio, scale.seed,
            keep_network=True, trace_name="hadoop")
    return results


def figure8(scale: FigureScale | None = None, cache_ratio: float = 0.5,
            pod: int = 7) -> dict[str, dict[str, int]]:
    """Per-switch bytes inside a gateway pod (paper's pod 8)."""
    results = figure7(scale, cache_ratio)
    return {scheme: result.network.pod_switch_bytes(pod)
            for scheme, result in results.items()}


# ----------------------------------------------------------------------
# Figure 9: gateway-count sweep (Hadoop, 50% cache)
# ----------------------------------------------------------------------
def figure9(scale: FigureScale | None = None, cache_ratio: float = 8.0,
            gateways_per_pod: tuple[int, ...] = (10, 5, 2, 1),
            schemes: tuple[str, ...] = ("SwitchV2P", "GwCache",
                                        "LocalLearning", "NoCache"),
            ) -> list[SweepRow]:
    """FCT / first-packet latency as gateways shrink 40 -> 4."""
    scale = scale or FigureScale()

    def trace_factory(spec: FatTreeSpec):
        flows, _ = build_trace("hadoop", scale)
        return flows

    return gateway_count_sweep(
        ft8_spec(), trace_factory, scale.num_vms, gateways_per_pod, schemes,
        cache_ratio, seed=scale.seed, trace_name="hadoop")


# ----------------------------------------------------------------------
# Figure 10: topology scaling (Hadoop, 50% cache)
# ----------------------------------------------------------------------
def figure10(scale: FigureScale | None = None, cache_ratio: float = 8.0,
             pods_values: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
             schemes: tuple[str, ...] = ("SwitchV2P", "GwCache",
                                         "LocalLearning"),
             ) -> list[SweepRow]:
    """FCT improvement across pod counts at constant server count."""
    scale = scale or FigureScale()

    def trace_factory(spec: FatTreeSpec):
        flows, _ = build_trace("hadoop", scale)
        return flows

    return topology_scale_sweep(
        pods_values, total_servers=128, racks_per_pod=4,
        trace_factory=trace_factory, num_vms=scale.num_vms, schemes=schemes,
        cache_ratio=cache_ratio, seed=scale.seed, trace_name="hadoop")


# ----------------------------------------------------------------------
# Table 5: hit distribution per layer (all traces, 50% cache)
# ----------------------------------------------------------------------
TABLE5_TRACES = ("hadoop", "websearch", "alibaba", "microbursts", "video")


@dataclass
class HitDistributionRow:
    """One Table 5 row: per-layer hit shares, total and first-packet."""

    trace: str
    total: dict[Layer, float] = field(default_factory=dict)
    first_packet: dict[Layer, float] = field(default_factory=dict)


def table5(scale: FigureScale | None = None,
           cache_ratio: float = 0.5) -> list[HitDistributionRow]:
    """Run SwitchV2P per trace and report hit shares by switch layer."""
    scale = scale or FigureScale()
    rows = []
    for trace in TABLE5_TRACES:
        flows, num_vms = build_trace(trace, scale)
        spec = ft16_spec() if trace == "alibaba" else ft8_spec()
        result = run_experiment(
            spec, "SwitchV2P", flows, num_vms, cache_ratio, scale.seed,
            transport=_transport_for(trace, scale), keep_network=True,
            trace_name=trace)
        collector = result.collector
        rows.append(HitDistributionRow(
            trace=trace,
            total=collector.hit_share_by_layer(first_packet=False),
            first_packet=collector.hit_share_by_layer(first_packet=True),
        ))
    return rows


# ----------------------------------------------------------------------
# Appendix A.2: the Controller baseline on WebSearch
# ----------------------------------------------------------------------
def appendix_controller(scale: FigureScale | None = None,
                        periods_us: tuple[int, ...] = (150, 300),
                        workers: int | None = None, cache="auto",
                        progress=None) -> list[SweepRow]:
    """Controller-vs-SwitchV2P on WebSearch across cache sizes."""
    scale = scale or FigureScale()
    tspec = trace_spec_for("websearch", scale)
    flows, num_vms = tspec.materialize(), tspec.num_vms
    schemes = ["SwitchV2P"] + [f"Controller@{p}us" for p in periods_us]
    scheme_kwargs = {
        f"Controller@{p}us": {"period_ns": p * 1000} for p in periods_us
    }
    transport = _transport_for("websearch", scale)
    baseline = run_experiment(ft8_spec(), "NoCache", flows, num_vms, 0.0,
                              scale.seed, transport=transport,
                              trace_name="websearch", cache=cache)
    from repro.experiments.parallel import (
        ExperimentJob,
        parallel_run_experiments,
    )
    from repro.experiments.sweeps import _normalized_row
    jobs, labels = [], []
    for ratio in scale.ratios:
        for scheme in schemes:
            actual = "Controller" if scheme.startswith("Controller") else scheme
            jobs.append(ExperimentJob(
                spec=ft8_spec(), scheme_name=actual, trace=tspec,
                num_vms=num_vms, cache_ratio=ratio, seed=scale.seed,
                transport=transport, trace_name="websearch",
                scheme_kwargs=scheme_kwargs.get(scheme) or {}))
            labels.append((ratio, scheme))
    results = parallel_run_experiments(jobs, workers=workers, cache=cache,
                                       progress=progress)
    return [_normalized_row(replace(result, scheme=scheme), baseline, ratio)
            for (ratio, scheme), result in zip(labels, results)]
