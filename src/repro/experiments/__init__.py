"""Experiment harness: runners, sweeps, per-figure entry points."""

from repro.experiments.faults import (
    CHAOS_SCHEMES,
    ChaosParams,
    ChaosRow,
    chaos_schedule,
    chaos_spec,
    render_chaos_table,
    run_chaos_experiment,
)
from repro.experiments.figures import (
    FigureScale,
    appendix_controller,
    build_trace,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    ft8_spec,
    ft16_spec,
    table5,
)
from repro.experiments.migration import (
    MIGRATION_VARIANTS,
    MigrationResult,
    run_migration_table,
    run_migration_variant,
)
from repro.experiments.parallel import (
    ExperimentJob,
    parallel_run_experiments,
)
from repro.experiments.runner import (
    SCHEME_FACTORIES,
    RunResult,
    build_network,
    make_scheme,
    run_experiment,
    run_flows,
)
from repro.experiments.sweeps import (
    SweepRow,
    cache_size_sweep,
    gateway_count_sweep,
    topology_scale_sweep,
)

__all__ = [
    "RunResult",
    "SweepRow",
    "SCHEME_FACTORIES",
    "make_scheme",
    "build_network",
    "run_flows",
    "run_experiment",
    "ExperimentJob",
    "parallel_run_experiments",
    "cache_size_sweep",
    "gateway_count_sweep",
    "topology_scale_sweep",
    "FigureScale",
    "ft8_spec",
    "ft16_spec",
    "build_trace",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "table5",
    "appendix_controller",
    "MigrationResult",
    "MIGRATION_VARIANTS",
    "run_migration_variant",
    "run_migration_table",
    "ChaosParams",
    "ChaosRow",
    "CHAOS_SCHEMES",
    "chaos_spec",
    "chaos_schedule",
    "run_chaos_experiment",
    "render_chaos_table",
]
