"""Chaos-fuzzing trials: random fault schedules vs. invariant oracles.

Each trial samples a random :class:`~repro.faults.FaultSchedule` from
the live topology (:mod:`repro.faults.fuzz`), runs a workload under it
with the runtime oracles of :mod:`repro.faults.oracles` attached, and
reports any invariant violations.  When a trial fails, the schedule is
delta-debugged down to a minimal reproducing event subset
(:mod:`repro.faults.shrink`) and written out as a JSON reproducer
artifact with a ready-to-paste replay command.

Everything derives from one root seed: the schedules, the workload and
the substrate RNG, so the same ``--seed`` always produces the same
verdicts and a reproducer replays exactly.

The module also carries a registry of *deliberate* bugs
(:data:`BUGS`) that can be injected per run — both to prove the oracles
actually catch the failure classes they claim to (CI's chaos-smoke gate
uses the ``oracle-canary``), and to demo the shrinking pipeline on a
real defect such as a switch that keeps its cache across a power cycle.

Run via ``python -m repro chaos``.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.experiments.faults import _place_tenants, chaos_spec
from repro.experiments.runner import make_scheme
from repro.faults.fuzz import FuzzConfig, generate_schedule
from repro.faults.oracles import DEFAULT_HOP_BOUND, OracleSuite, OracleViolation
from repro.faults.schedule import FaultKind, FaultSchedule
from repro.faults.shrink import ddmin
from repro.sim.engine import msec, usec
from repro.sim.randomness import derive_seed
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig
from repro.vnet.network import NetworkConfig, VirtualNetwork

#: Schemes fuzzed by default: the paper's system and the strongest
#: gateway-centric baseline.  Two architectures double the oracle
#: coverage for the cost of two runs per schedule.
CHAOS_FUZZ_SCHEMES: tuple[str, ...] = ("SwitchV2P", "GwCache")

_ARTIFACT_FORMAT = "repro-chaos-reproducer"
_ARTIFACT_VERSION = 1

_GATEWAY_KINDS = frozenset((FaultKind.GATEWAY_CRASH, FaultKind.GATEWAY_RESTART))


@dataclass(frozen=True)
class ChaosFuzzParams:
    """Workload + transport tuning of one chaos trial.

    The workload is deliberately smaller and the transport deliberately
    more impatient than the scripted chaos experiment's: a trial must
    reach a quiescent horizon (all flows terminal) in well under a
    second of wall clock, because the shrinker re-runs it dozens of
    times.
    """

    num_vms: int = 48
    num_flows: int = 120
    min_flow_bytes: int = 800
    max_flow_bytes: int = 6_000
    arrival_span_ns: int = msec(3)
    cache_ratio: float = 16.0
    hop_bound: int = DEFAULT_HOP_BOUND
    #: Transport give-up tuning: with the RTO capped at 2 ms and six
    #: retransmissions, a flow whose destination is unreachable fails
    #: within ~12 ms, which bounds the liveness horizon.
    max_retransmits: int = 6
    max_rto_ns: int = msec(2)
    #: Gateway failure-detector tuning (only armed when the schedule
    #: contains gateway events).
    probe_interval_ns: int = usec(200)
    miss_threshold: int = 3
    #: Simulation fidelity the trials run under; hybrid trials exercise
    #: the fluid fast path against the same invariant oracles.
    fidelity: str = "packet"
    #: Self-healing mapping plane: when positive, the anti-entropy
    #: audit sweeps switch caches at this period.  0 keeps the
    #: historical lazy-invalidation-only protocol.
    anti_entropy_period_ns: int = 0
    #: When positive, arms the bounded-staleness runtime oracle with
    #: this bound (plus one audit period of slack).  Requires the
    #: audit: without repair the bound is unenforceable.
    staleness_bound_ns: int = 0
    fuzz: FuzzConfig = FuzzConfig()

    def horizon_ns(self, schedule: FaultSchedule) -> int:
        """A horizon leaving every flow time to reach a terminal state.

        Last disruption (or last flow arrival, whichever is later) plus
        a grace period covering a full give-up ladder of RTO-capped
        retransmissions, with slack for detours and failover probes.
        """
        grace_ns = (self.max_retransmits + 2) * self.max_rto_ns + msec(2)
        last_event = schedule.last_event_ns()
        busy_ns = max(self.arrival_span_ns,
                      last_event if last_event is not None else 0)
        if self.anti_entropy_period_ns > 0:
            # Leave the audit at least two full sweeps after the last
            # disruption so the staleness bound is testable.
            grace_ns = max(grace_ns, 2 * self.anti_entropy_period_ns + msec(1))
        return busy_ns + grace_ns


def gray_chaos_params(**overrides) -> ChaosFuzzParams:
    """Trial parameters for a gray-failure campaign.

    Gray fault kinds mixed in (:func:`repro.faults.fuzz.gray_fuzz_config`),
    the anti-entropy audit running at 1 ms, and the bounded-staleness
    oracle armed with a matching bound.  Keyword overrides pass through
    to :class:`ChaosFuzzParams`.
    """
    from repro.faults.fuzz import gray_fuzz_config
    kwargs: dict = dict(fuzz=gray_fuzz_config(),
                        anti_entropy_period_ns=msec(1),
                        staleness_bound_ns=msec(1))
    kwargs.update(overrides)
    return ChaosFuzzParams(**kwargs)


@dataclass(frozen=True)
class TrialOutcome:
    """Verdict of one (schedule, scheme) run."""

    trial: int
    scheme: str
    trial_seed: int
    num_events: int
    violations: tuple[OracleViolation, ...]

    @property
    def failed(self) -> bool:
        return bool(self.violations)


@dataclass
class ChaosFuzzResult:
    """Everything one ``python -m repro chaos`` invocation produced."""

    outcomes: list[TrialOutcome]
    reproducer_path: str | None = None
    shrunk_events: int | None = None

    @property
    def failures(self) -> list[TrialOutcome]:
        return [outcome for outcome in self.outcomes if outcome.failed]

    @property
    def clean(self) -> bool:
        return not self.failures


# ----------------------------------------------------------------------
# deliberate bugs (harness self-tests + shrinking demos)
# ----------------------------------------------------------------------
def _bug_skip_cache_flush(network: VirtualNetwork, suite: OracleSuite) -> None:
    """Switch power cycles no longer flush the scheme's cache state.

    Shadows the scheme's ``on_switch_reset`` with an instance attribute
    of None, which :meth:`Switch._flush_scheme_state` treats as "no
    flush hook".  A failed switch then keeps its SRAM — exactly the
    stale-state resurrection the structural oracle forbids.
    """
    network.scheme.on_switch_reset = None


def _bug_misdelivery_loop(network: VirtualNetwork, suite: OracleSuite) -> None:
    """Misdelivered packets bounce back to the same wrong host forever.

    Replaces the scheme's misdelivery re-forwarding with a rule that
    re-addresses the packet to the very host that just rejected it —
    the classic stale-rule forwarding loop the hop-bound oracle exists
    to catch.
    """
    def bounce(host, packet) -> None:
        packet.outer_dst = host.pip
        packet.resolved = True
        host.reforward(packet)
    network.scheme.on_misdelivery = bounce


def _bug_oracle_canary(network: VirtualNetwork, suite: OracleSuite) -> None:
    """Arm the synthetic always-failing oracle (proves the gate gates)."""
    suite.arm_canary()


def _bug_disabled_audit(network: VirtualNetwork, suite: OracleSuite) -> None:
    """The anti-entropy audit silently stops sweeping.

    Models a wedged control-plane reconciliation job.  Under a gray
    schedule that corrupts or strands a cache entry off the traffic
    path, nothing repairs it any more, so the bounded-staleness oracle
    must trip.  Run with gray trial parameters
    (:func:`gray_chaos_params`); without the audit/oracle armed this
    injector is a no-op and the trial stays green.
    """
    if network.anti_entropy is not None:
        network.anti_entropy.stop()


#: name -> injector(network, suite).  Injectors patch the per-run scheme
#: instance (never the class), so no cleanup is needed.
BUGS = {
    "skip-cache-flush": _bug_skip_cache_flush,
    "misdelivery-loop": _bug_misdelivery_loop,
    "oracle-canary": _bug_oracle_canary,
    "disabled-audit": _bug_disabled_audit,
}


# ----------------------------------------------------------------------
# one trial
# ----------------------------------------------------------------------
def fuzz_flows(params: ChaosFuzzParams, trial_seed: int) -> list[FlowSpec]:
    """The trial workload: short flows between random VM pairs."""
    rng = np.random.default_rng(derive_seed(trial_seed, "flows"))
    flows = []
    for _ in range(params.num_flows):
        src = int(rng.integers(0, params.num_vms))
        dst = int(rng.integers(0, params.num_vms - 1))
        if dst >= src:
            dst += 1
        flows.append(FlowSpec(
            src_vip=src,
            dst_vip=dst,
            size_bytes=int(rng.integers(params.min_flow_bytes,
                                        params.max_flow_bytes + 1)),
            start_ns=int(rng.integers(0, params.arrival_span_ns)),
        ))
    return flows


def _schedule_from(events) -> FaultSchedule:
    """A fresh schedule over ``events`` (the fired log is per-apply)."""
    schedule = FaultSchedule()
    for event in events:
        schedule.add(event)
    return schedule


def run_one_trial(scheme_name: str, events, params: ChaosFuzzParams,
                  trial_seed: int, bug: str | None = None,
                  trial: int = 0) -> TrialOutcome:
    """Run one scheme under one fault-event list with oracles attached.

    Deterministic in all arguments: the substrate RNG, the workload and
    the schedule all derive from ``trial_seed``.  ``events`` may be any
    subset of a generated schedule — this is the function the shrinker
    re-runs.
    """
    spec = chaos_spec()
    schedule = _schedule_from(events)
    scheme = make_scheme(scheme_name, params.num_vms, params.cache_ratio)
    network = VirtualNetwork(
        NetworkConfig(spec=spec, seed=trial_seed, fidelity=params.fidelity),
        scheme)
    _place_tenants(network, spec, params.num_vms)
    suite = OracleSuite(network, hop_bound=params.hop_bound)
    if any(event.kind in _GATEWAY_KINDS for event in schedule.events):
        # Configure the detector before the schedule's own (idempotent)
        # enable call so the trial's probe timings take effect.
        network.enable_gateway_failover(
            probe_interval_ns=params.probe_interval_ns,
            miss_threshold=params.miss_threshold)
    if params.anti_entropy_period_ns > 0:
        network.enable_anti_entropy(params.anti_entropy_period_ns,
                                    params.staleness_bound_ns)
    if params.staleness_bound_ns > 0:
        suite.configure_staleness(
            params.staleness_bound_ns,
            audit_period_ns=params.anti_entropy_period_ns,
            check_interval_ns=max(usec(100),
                                  params.staleness_bound_ns // 4))
    if bug is not None:
        BUGS[bug](network, suite)
    schedule.apply(network)
    suite.watch_schedule(schedule)
    player = TrafficPlayer(network, TransportConfig(
        max_retransmits=params.max_retransmits,
        max_rto_ns=params.max_rto_ns))
    player.add_flows(fuzz_flows(params, trial_seed))
    horizon_ns = params.horizon_ns(schedule)
    network.run(until=horizon_ns)
    suite.finish(horizon_ns)
    return TrialOutcome(trial=trial, scheme=scheme_name,
                        trial_seed=trial_seed,
                        num_events=len(schedule.events),
                        violations=tuple(suite.violations))


# ----------------------------------------------------------------------
# shrinking + reproducer artifacts
# ----------------------------------------------------------------------
def shrink_failure(outcome: TrialOutcome, events, params: ChaosFuzzParams,
                   bug: str | None = None, progress=None) -> list:
    """ddmin the event list to a minimal subset re-tripping the oracle.

    "Still failing" means: re-running the identical trial with the
    candidate events trips at least one violation of the *same oracle*
    as the original failure (not necessarily the same detail string —
    shrinking changes timing).
    """
    target_oracle = outcome.violations[0].oracle
    attempts = 0

    def still_fails(candidate) -> bool:
        nonlocal attempts
        attempts += 1
        if progress is not None:
            progress(attempts, len(candidate))
        result = run_one_trial(outcome.scheme, candidate, params,
                               outcome.trial_seed, bug, outcome.trial)
        return any(v.oracle == target_oracle for v in result.violations)

    return ddmin(list(events), still_fails)


def write_reproducer(path, outcome: TrialOutcome, events,
                     params: ChaosFuzzParams, root_seed: int,
                     bug: str | None, original_events: int,
                     target_oracle: str | None = None) -> Path:
    """Write the JSON artifact ``python -m repro chaos --replay`` reads."""
    path = Path(path)
    violation = outcome.violations[0]
    if target_oracle is not None:
        for candidate in outcome.violations:
            if candidate.oracle == target_oracle:
                violation = candidate
                break
    payload = {
        "format": _ARTIFACT_FORMAT,
        "version": _ARTIFACT_VERSION,
        "scheme": outcome.scheme,
        "root_seed": root_seed,
        "trial": outcome.trial,
        "trial_seed": outcome.trial_seed,
        "bug": bug,
        "oracle": violation.oracle,
        "detail": violation.detail,
        "params": dataclasses.asdict(params),
        "schedule": _schedule_from(events).to_dict(),
        "original_events": original_events,
        "command": f"python -m repro chaos --replay {path}",
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _params_from_dict(data: dict) -> ChaosFuzzParams:
    fields = dict(data)
    fuzz = FuzzConfig(**fields.pop("fuzz"))
    return ChaosFuzzParams(fuzz=fuzz, **fields)


def replay_reproducer(path) -> TrialOutcome:
    """Re-run a saved reproducer artifact exactly as recorded."""
    data = json.loads(Path(path).read_text())
    if data.get("format") != _ARTIFACT_FORMAT:
        raise ValueError(f"{path} is not a chaos reproducer artifact")
    if data.get("version") != _ARTIFACT_VERSION:
        raise ValueError(f"{path} has artifact version {data.get('version')}, "
                         f"this build reads version {_ARTIFACT_VERSION}")
    params = _params_from_dict(data["params"])
    schedule = FaultSchedule.from_dict(data["schedule"])
    return run_one_trial(data["scheme"], schedule.events, params,
                         int(data["trial_seed"]), data.get("bug"),
                         int(data["trial"]))


# ----------------------------------------------------------------------
# the trial loop
# ----------------------------------------------------------------------
def run_chaos_fuzz(trials: int, seed: int,
                   schemes: tuple[str, ...] = CHAOS_FUZZ_SCHEMES,
                   params: ChaosFuzzParams | None = None,
                   bug: str | None = None,
                   artifact_dir=None,
                   shrink: bool = True,
                   progress=None) -> ChaosFuzzResult:
    """Run fuzzed chaos trials; shrink + archive the first failure.

    Each trial derives its own seed from ``seed``, samples one schedule
    and runs it against every scheme.  Scanning stops at the first
    failing run (further trials would re-report the same defect); when
    ``shrink`` is set, the failing schedule is minimized and — if
    ``artifact_dir`` is given — written out as a reproducer artifact.

    Args:
        progress: optional ``progress(done, total, label)`` callback
            fired after every scheme run.
    """
    if params is None:
        params = ChaosFuzzParams()
    spec = chaos_spec()
    result = ChaosFuzzResult(outcomes=[])
    total = trials * len(schemes)
    done = 0
    for trial in range(trials):
        trial_seed = derive_seed(seed, f"chaos-trial-{trial}")
        schedule = generate_schedule(spec, params.num_vms, params.fuzz,
                                     seed=trial_seed)
        events = list(schedule.events)
        for scheme_name in schemes:
            outcome = run_one_trial(scheme_name, events, params, trial_seed,
                                    bug, trial)
            result.outcomes.append(outcome)
            done += 1
            if progress is not None:
                progress(done, total, f"trial {trial}/{scheme_name}: "
                         + ("FAIL" if outcome.failed else "ok"))
            if outcome.failed:
                final = outcome
                shrunk = events
                if shrink:
                    shrunk = shrink_failure(outcome, events, params, bug)
                    # One more run on the minimal events so the artifact
                    # records the violation the replay will reproduce.
                    final = run_one_trial(scheme_name, shrunk, params,
                                          trial_seed, bug, trial)
                result.shrunk_events = len(shrunk)
                if artifact_dir is not None:
                    target = outcome.violations[0].oracle
                    name = (f"chaos-repro-{outcome.scheme}-{target}"
                            f"-trial{trial}.json")
                    result.reproducer_path = str(write_reproducer(
                        Path(artifact_dir) / name, final, shrunk, params,
                        seed, bug, len(events), target_oracle=target))
                return result
    return result
