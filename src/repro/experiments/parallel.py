"""Streaming parallel execution of independent experiment runs.

Cache-size sweeps are embarrassingly parallel: every (scheme, ratio)
point is an independent simulation.  This module fans runs out over a
process pool while preserving determinism — each run's inputs are
explicit and self-contained, so results are bit-identical to sequential
execution regardless of completion order.

Design points of the orchestrator:

* **Cheap payloads** — jobs preferentially carry a
  :class:`~repro.traces.spec.TraceSpec` (generator name + params +
  seed, a few hundred bytes) instead of a materialized
  ``tuple[FlowSpec, ...]``; the worker regenerates the flows locally
  and deterministically (:mod:`repro.sim.randomness`).
* **Result memoization** — before dispatch, every job is looked up in
  the content-addressed run cache
  (:mod:`repro.experiments.runcache`); hits never reach the pool, and
  completed misses are stored by the parent, making sweeps resumable.
* **Streaming dispatch** — jobs are submitted in chunks and collected
  ``imap_unordered``-style as they finish, with deterministic
  reassembly by job index; a ``progress`` callback fires on every
  completion and per-job wall-clock times feed a
  :class:`repro.perf.PhaseTimer` under the ``"jobs"`` phase.

Worker count: pass ``workers=`` explicitly (the CLI threads its
``--workers`` flag through); the ``REPRO_PARALLEL`` environment
variable remains a fallback for harnesses that cannot.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.experiments.runcache import (
    canonical_items,
    job_key,
    kwargs_dict,
    resolve_cache,
)
from repro.experiments.runner import RunResult, run_experiment
from repro.net.topology import FatTreeSpec
from repro.perf import timed_call
from repro.traces.spec import TraceSpec
from repro.transport.flow import FlowSpec
from repro.transport.reliable import TransportConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf import PhaseTimer

#: ``progress(done, total, cached)`` — invoked after every job
#: resolves, whether served from cache (``cached=True``) or simulated.
ProgressFn = Callable[[int, int, bool], None]


@dataclass(frozen=True)
class ExperimentJob:
    """One picklable, hashable experiment description.

    The workload is either ``flows`` (materialized, heavyweight) or
    ``trace`` (a :class:`TraceSpec` the worker materializes locally) —
    exactly one must be set.  ``scheme_kwargs`` accepts a plain dict
    for convenience and is canonicalized to a sorted item tuple on
    construction, so the frozen job is fully hashable and shares its
    normal form with the run-cache key derivation.
    """

    spec: FatTreeSpec
    scheme_name: str
    flows: tuple[FlowSpec, ...] | None = None
    num_vms: int = 0
    cache_ratio: float = 0.0
    seed: int = 0
    transport: TransportConfig | None = None
    horizon_ns: int | None = None
    trace_name: str = ""
    scheme_kwargs: tuple = ()
    trace: TraceSpec | None = None
    #: Simulation fidelity ("packet" or "hybrid"); part of the run-cache
    #: key — hybrid and packet runs of the same point must not collide.
    fidelity: str = "packet"

    def __post_init__(self) -> None:
        if isinstance(self.scheme_kwargs, dict):
            object.__setattr__(self, "scheme_kwargs",
                               canonical_items(self.scheme_kwargs))
        elif not isinstance(self.scheme_kwargs, tuple):
            object.__setattr__(self, "scheme_kwargs",
                               tuple(self.scheme_kwargs))
        if self.flows is not None and not isinstance(self.flows, tuple):
            object.__setattr__(self, "flows", tuple(self.flows))
        if (self.flows is None) == (self.trace is None):
            raise ValueError(
                "ExperimentJob needs exactly one of flows= or trace=")
        if self.num_vms <= 0:
            raise ValueError("ExperimentJob.num_vms must be positive")

    def resolve_flows(self) -> tuple[FlowSpec, ...]:
        """The flow list, regenerating from the trace spec if needed."""
        if self.flows is not None:
            return self.flows
        return tuple(self.trace.materialize())

    def scheme_kwargs_dict(self) -> dict:
        """The canonical kwargs back as a plain dict for the factory."""
        return kwargs_dict(self.scheme_kwargs)


def _execute_job(job: ExperimentJob) -> tuple[RunResult, int]:
    """Run one job; returns (result, wall_ns).

    The inner run bypasses the run cache (``cache=None``): the
    orchestrating parent already resolved hits and is the single
    writer, so workers never race on the store.
    """
    return timed_call(
        run_experiment,
        job.spec, job.scheme_name, job.resolve_flows(), job.num_vms,
        job.cache_ratio, job.seed, job.transport, job.horizon_ns,
        keep_network=False, trace_name=job.trace_name,
        scheme_kwargs=job.scheme_kwargs_dict() or None, cache=None,
        fidelity=job.fidelity)


def _run_chunk(items: list[tuple[int, ExperimentJob]]
               ) -> list[tuple[int, RunResult, int]]:
    """Worker entry point: run a chunk, tagging results by job index."""
    out = []
    for index, job in items:
        result, wall_ns = _execute_job(job)
        out.append((index, result, wall_ns))
    return out


def default_workers() -> int:
    """Worker count from REPRO_PARALLEL (0/unset = sequential).

    A fallback only — callers with an explicit worker count (the CLI's
    ``--workers``) pass it straight through instead of mutating the
    environment.
    """
    value = os.environ.get("REPRO_PARALLEL", "0")
    try:
        return max(0, int(value))
    except ValueError:
        raise ValueError(
            f"REPRO_PARALLEL={value!r} is not an integer") from None


def default_chunksize(pending: int, workers: int) -> int:
    """Jobs per pool task: amortize pickling without starving the pool.

    Aim for ~4 tasks per worker so completion streaming stays granular,
    capped at 8 jobs per task so one straggler chunk cannot serialize a
    large tail.
    """
    return max(1, min(8, -(-pending // (workers * 4))))


def parallel_run_experiments(jobs: Sequence[ExperimentJob],
                             workers: int | None = None, *,
                             chunksize: int | None = None,
                             cache="auto",
                             progress: ProgressFn | None = None,
                             perf: PhaseTimer | None = None,
                             ) -> list[RunResult]:
    """Run jobs, optionally over a process pool, with memoization.

    Results are returned in job order regardless of completion order,
    and are bit-identical to sequential execution (simulations are
    deterministic given their explicit inputs).

    Args:
        workers: process count; ``None`` falls back to
            :func:`default_workers` (the ``REPRO_PARALLEL`` variable),
            and ``0``/``1`` runs inline.
        chunksize: jobs per pool task (default
            :func:`default_chunksize`).
        cache: a :class:`~repro.experiments.runcache.RunCache`,
            ``None`` to disable memoization, or ``"auto"`` (default)
            for the environment-configured store.
        progress: ``progress(done, total, cached)`` per resolved job.
        perf: optional :class:`~repro.perf.PhaseTimer`; each job's
            wall-clock time accumulates under the ``"jobs"`` phase.
    """
    jobs = list(jobs)
    total = len(jobs)
    if workers is None:
        workers = default_workers()
    store = resolve_cache(cache)
    results: list[RunResult | None] = [None] * total
    keys: list[str | None] = [None] * total
    done = 0

    if store is not None:
        for index, job in enumerate(jobs):
            keys[index] = job_key(job)
            hit = store.get(keys[index])
            if hit is not None:
                results[index] = hit
                done += 1
                if progress is not None:
                    progress(done, total, True)

    pending = [index for index in range(total) if results[index] is None]

    def record(index: int, result: RunResult, wall_ns: int) -> None:
        nonlocal done
        results[index] = result
        if perf is not None:
            perf.add("jobs", wall_ns)
        if store is not None:
            store.put(keys[index], result)
        done += 1
        if progress is not None:
            progress(done, total, False)

    if workers <= 1 or len(pending) <= 1:
        for index in pending:
            result, wall_ns = _execute_job(jobs[index])
            record(index, result, wall_ns)
        return results

    if chunksize is None:
        chunksize = default_chunksize(len(pending), workers)
    chunks = [pending[i:i + chunksize]
              for i in range(0, len(pending), chunksize)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(_run_chunk,
                               [(index, jobs[index]) for index in chunk])
                   for chunk in chunks]
        for future in as_completed(futures):
            for index, result, wall_ns in future.result():
                record(index, result, wall_ns)
    return results
