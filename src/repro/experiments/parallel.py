"""Parallel execution of independent experiment runs.

Cache-size sweeps are embarrassingly parallel: every (scheme, ratio)
point is an independent simulation.  This module fans runs out over a
process pool while preserving determinism (each run's seed and inputs
are explicit, so results are identical to sequential execution).

Enabled by passing ``workers`` to :func:`parallel_run_experiments` or
setting the ``REPRO_PARALLEL`` environment variable (number of worker
processes) for the benchmark harness.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.runner import RunResult, run_experiment
from repro.net.topology import FatTreeSpec
from repro.transport.flow import FlowSpec
from repro.transport.reliable import TransportConfig


@dataclass(frozen=True)
class ExperimentJob:
    """One picklable experiment description."""

    spec: FatTreeSpec
    scheme_name: str
    flows: tuple[FlowSpec, ...]
    num_vms: int
    cache_ratio: float
    seed: int = 0
    transport: TransportConfig | None = None
    horizon_ns: int | None = None
    trace_name: str = ""
    scheme_kwargs: dict = field(default_factory=dict)


def _run_job(job: ExperimentJob) -> RunResult:
    return run_experiment(
        job.spec, job.scheme_name, list(job.flows), job.num_vms,
        job.cache_ratio, job.seed, job.transport, job.horizon_ns,
        keep_network=False, trace_name=job.trace_name,
        scheme_kwargs=dict(job.scheme_kwargs) or None)


def default_workers() -> int:
    """Worker count from REPRO_PARALLEL (0/unset = sequential)."""
    value = os.environ.get("REPRO_PARALLEL", "0")
    try:
        return max(0, int(value))
    except ValueError:
        raise ValueError(
            f"REPRO_PARALLEL={value!r} is not an integer") from None


def parallel_run_experiments(jobs: Sequence[ExperimentJob],
                             workers: int | None = None) -> list[RunResult]:
    """Run jobs, in order, optionally over a process pool.

    Results are returned in job order regardless of completion order,
    and are bit-identical to sequential execution (simulations are
    deterministic given their explicit seeds).
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_job, jobs))
