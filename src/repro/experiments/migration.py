"""The VM-migration experiment (paper §5.2, Table 4).

A synthetic incast — many UDP senders on distinct servers targeting one
VM — with the destination migrated to a different rack mid-trace.  The
experiment compares NoCache, OnDemand, and three SwitchV2P variants
(without invalidations, without the timestamp vector, and the full
protocol), reporting gateway load, packet latency, the arrival time of
the last misdelivered packet, misdelivery counts and invalidation
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import SwitchV2PConfig
from repro.experiments.runner import SCHEME_FACTORIES, build_network
from repro.net.topology import FatTreeSpec
from repro.sim.engine import msec
from repro.traces.incast import IncastTraceParams, generate
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig

#: The Table 4 variant ladder: scheme name + SwitchV2P feature config.
MIGRATION_VARIANTS: tuple[tuple[str, str, dict], ...] = (
    ("NoCache", "NoCache", {}),
    ("OnDemand", "OnDemand", {}),
    ("SwitchV2P w/o invalidations", "SwitchV2P",
     {"config": SwitchV2PConfig(enable_invalidation=False)}),
    ("SwitchV2P w/o timestamp vector", "SwitchV2P",
     {"config": SwitchV2PConfig(enable_timestamp_vector=False)}),
    ("SwitchV2P w/ timestamp vector", "SwitchV2P", {}),
)


@dataclass
class MigrationResult:
    """Table 4 row (absolute values; normalize against the NoCache row)."""

    label: str
    gateway_packet_fraction: float
    avg_packet_latency_ns: float
    last_misdelivered_arrival_ns: int | None
    misdelivered_packets: int
    invalidation_packets: int
    packets_sent: int


def run_migration_variant(label: str, scheme_name: str, scheme_kwargs: dict,
                          params: IncastTraceParams,
                          spec: FatTreeSpec | None = None,
                          slots_per_switch: int = 32,
                          seed: int = 0) -> MigrationResult:
    """Run one Table 4 variant and return its absolute metrics.

    The incast's address space is tiny (one destination plus the
    senders), so caches are sized in absolute slots per switch rather
    than relative to the address space.
    """
    if spec is None:
        spec = FatTreeSpec()
    num_vms = params.num_senders + 2
    total_slots = slots_per_switch * spec.num_switches
    scheme = SCHEME_FACTORIES[scheme_name](total_slots, **scheme_kwargs)
    network = build_network(spec, scheme, num_vms, seed)

    # Sender VIPs 1..n land on distinct servers via round-robin
    # placement; VIP 0 is the incast destination.
    sender_vips = list(range(1, params.num_senders + 1))
    rng = network.streams.stream("incast")
    flows = generate(params, rng, sender_vips)

    # Migrate the destination VM to a different rack at the midpoint.
    source_host = network.host_of(params.destination_vip)
    target_host = _host_in_other_rack(network, source_host)
    network.engine.schedule(params.migration_time_ns, network.migrate,
                            params.destination_vip, target_host)

    # Packets are exactly ``packet_bytes`` so the trace totals
    # num_senders * packets_per_sender packets, as in §5.2.
    player = TrafficPlayer(network,
                           TransportConfig(mss_bytes=params.packet_bytes))
    player.add_flows(flows)
    network.run(until=params.duration_ns + msec(2))
    collector = network.collector
    fraction = (collector.gateway_arrivals / collector.packets_sent
                if collector.packets_sent else 0.0)
    return MigrationResult(
        label=label,
        gateway_packet_fraction=fraction,
        avg_packet_latency_ns=collector.average_packet_latency_ns(),
        last_misdelivered_arrival_ns=collector.last_misdelivered_arrival_ns,
        misdelivered_packets=collector.misdeliveries,
        invalidation_packets=collector.invalidation_packets,
        packets_sent=collector.packets_sent,
    )


def run_migration_table(params: IncastTraceParams | None = None,
                        spec: FatTreeSpec | None = None,
                        slots_per_switch: int = 32,
                        seed: int = 0) -> list[MigrationResult]:
    """Run all Table 4 variants in order."""
    if params is None:
        params = IncastTraceParams()
    return [
        run_migration_variant(label, scheme, dict(kwargs), params, spec,
                              slots_per_switch, seed)
        for label, scheme, kwargs in MIGRATION_VARIANTS
    ]


def _host_in_other_rack(network, source_host):
    """Pick a migration target on a different rack than ``source_host``."""
    from repro.net.addresses import pip_pod, pip_rack

    src_key = (pip_pod(source_host.pip), pip_rack(source_host.pip))
    for host in network.hosts:
        if (pip_pod(host.pip), pip_rack(host.pip)) != src_key:
            return host
    raise RuntimeError("topology has a single rack; cannot migrate across racks")
