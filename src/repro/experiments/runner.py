"""Experiment runner: scheme x trace x topology -> metrics.

This is the harness every benchmark and example builds on.  It owns the
paper's conventions: the cache budget is expressed relative to the VIP
address space (§5 "In-switch memory size"), the scheme factory creates
any scheme by name with that budget, and a run drives a flow list to
completion (bounded by a horizon so pathological configurations —
e.g. Bluebird dropping everything — still terminate).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.baselines import (
    Bluebird,
    Controller,
    DhtStore,
    Direct,
    GwCache,
    Hoverboard,
    LocalLearning,
    NoCache,
    OnDemand,
)
from repro.cache.sizing import aggregate_slots
from repro.experiments.runcache import resolve_cache, run_key
from repro.core import UNIFORM, HybridSwitchV2P, SwitchV2P, SwitchV2PConfig
from repro.metrics.collector import Collector
from repro.net.topology import FatTreeSpec
from repro.sim.engine import msec
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig
from repro.vnet.network import NetworkConfig, VirtualNetwork

#: Factories: scheme name -> callable(total_cache_slots, **kwargs).
#: NoCache/Direct/OnDemand ignore the budget (they have no in-switch
#: caches) but accept it so the sweep code can treat schemes uniformly.
SCHEME_FACTORIES: dict[str, Callable] = {
    "NoCache": lambda slots, **kw: NoCache(),
    "Direct": lambda slots, **kw: Direct(),
    "OnDemand": lambda slots, **kw: OnDemand(**kw),
    "GwCache": lambda slots, **kw: GwCache(slots),
    "LocalLearning": lambda slots, **kw: LocalLearning(slots),
    "Bluebird": lambda slots, **kw: Bluebird(slots, **kw),
    "Controller": lambda slots, **kw: Controller(slots, **kw),
    "Hoverboard": lambda slots, **kw: Hoverboard(**kw),
    "DhtStore": lambda slots, **kw: DhtStore(),
    "SwitchV2P": lambda slots, **kw: _make_switchv2p(slots, **kw),
    "HybridSwitchV2P": lambda slots, **kw: HybridSwitchV2P(slots, **kw),
}


def _make_switchv2p(slots: int, config: SwitchV2PConfig | None = None,
                    allocation=UNIFORM, cache_ways: int = 1,
                    **config_kwargs) -> SwitchV2P:
    """Build SwitchV2P from either a config object or loose kwargs."""
    if config is None:
        config = SwitchV2PConfig(**config_kwargs)
    elif config_kwargs:
        raise ValueError("pass either config= or loose config kwargs, not both")
    return SwitchV2P(slots, config, allocation, cache_ways)


def make_scheme(name: str, address_space: int, cache_ratio: float, **kwargs):
    """Instantiate a scheme by name with the paper's budget convention."""
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEME_FACTORIES))
        raise ValueError(f"unknown scheme {name!r}; known: {known}") from None
    return factory(aggregate_slots(address_space, cache_ratio), **kwargs)


class _NullContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


class _NullTimer:
    """Zero-overhead stand-in when no PhaseTimer is supplied."""

    __slots__ = ()
    _ctx = _NullContext()

    def phase(self, name):
        return self._ctx


_NULL_TIMER = _NullTimer()


@dataclass
class RunResult:
    """Summary of one simulation run."""

    scheme: str
    trace: str
    cache_ratio: float
    hit_rate: float
    avg_fct_ns: float
    p50_fct_ns: float
    p99_fct_ns: float
    avg_first_packet_ns: float
    avg_packet_latency_ns: float
    avg_stretch: float
    gateway_arrivals: int
    packets_sent: int
    completion_rate: float
    misdeliveries: int
    drops: int
    learning_packets: int
    invalidation_packets: int
    reorder_events: int
    total_switch_bytes: int
    pod_bytes: list[int] = field(default_factory=list)
    #: Per-flow availability: how many flows the transport gave up on,
    #: and why (``failure_reason`` -> count).
    failed_flows: int = 0
    failure_reasons: dict[str, int] = field(default_factory=dict)
    #: Simulation fidelity the run used and, for hybrid runs, the fluid
    #: scheduler's bookkeeping (all zero in pure-packet mode).
    fidelity: str = "packet"
    fluid_adoptions: int = 0
    fluid_escalations: int = 0
    fluid_rounds: int = 0
    fluid_packets: int = 0
    fluid_escalations_by_reason: dict[str, int] = field(default_factory=dict)
    collector: Collector | None = None
    network: VirtualNetwork | None = None


def build_network(spec: FatTreeSpec, scheme, num_vms: int, seed: int = 0,
                  gateway_processing_ns: int | None = None,
                  fidelity: str = "packet") -> VirtualNetwork:
    """Create a network with ``num_vms`` VMs placed round-robin."""
    kwargs = {}
    if gateway_processing_ns is not None:
        kwargs["gateway_processing_ns"] = gateway_processing_ns
    config = NetworkConfig(spec=spec, seed=seed, fidelity=fidelity, **kwargs)
    network = VirtualNetwork(config, scheme)
    network.place_vms(num_vms)
    return network


def run_flows(network: VirtualNetwork, flows: Sequence[FlowSpec],
              transport: TransportConfig | None = None,
              horizon_ns: int | None = None,
              keep_network: bool = False,
              trace_name: str = "",
              cache_ratio: float = 0.0,
              perf=None,
              warmup_split_ns: int | None = None) -> RunResult:
    """Play ``flows`` on ``network`` and summarize the metrics.

    Args:
        horizon_ns: hard stop (simulated time); defaults to the last
            flow start plus 200 ms, plenty for every workload here
            while bounding retransmission storms of broken configs.
        keep_network: retain the network/collector on the result for
            detailed analysis (pod byte heatmaps etc.).
        perf: optional :class:`repro.perf.PhaseTimer`; when given, the
            setup and event-loop phases are timed (wall clock only —
            the simulation itself is unaffected).
        warmup_split_ns: when given (memory profiling), run the event
            loop in two timed phases — ``run-warmup`` up to this
            simulated time and ``run-steady`` for the remainder —
            instead of one ``run`` phase.  Running the engine in two
            chunks is event-for-event identical to one call, so the
            simulation result is unchanged.
    """
    if perf is None:
        perf = _NULL_TIMER
    with perf.phase("setup"):
        player = TrafficPlayer(network, transport)
        player.add_flows(flows)
        if horizon_ns is None:
            last_start = max((flow.start_ns for flow in flows), default=0)
            horizon_ns = last_start + msec(200)
    if warmup_split_ns is not None and warmup_split_ns < horizon_ns:
        with perf.phase("run-warmup"):
            network.run(until=warmup_split_ns)
        with perf.phase("run-steady"):
            network.run(until=horizon_ns)
    else:
        with perf.phase("run"):
            network.run(until=horizon_ns)
    fluid = network.fluid
    if fluid is not None and perf is not _NULL_TIMER:
        # Fold the scheduler's internal phase clock into the caller's
        # timer; the "run" phase above already includes this time, so
        # profile readers see "fluid" as the in-run share, not extra.
        for name, ns in fluid.perf.phases_ns.items():
            perf.add(name, ns)
    collector = network.collector
    failed = collector.failed_flows()
    failure_reasons: dict[str, int] = {}
    for record in failed:
        reason = record.failure_reason or "unspecified"
        failure_reasons[reason] = failure_reasons.get(reason, 0) + 1
    return RunResult(
        scheme=getattr(network.scheme, "name", type(network.scheme).__name__),
        trace=trace_name,
        cache_ratio=cache_ratio,
        hit_rate=collector.hit_rate,
        avg_fct_ns=collector.average_fct_ns(),
        p50_fct_ns=collector.percentile_fct_ns(50),
        p99_fct_ns=collector.percentile_fct_ns(99),
        avg_first_packet_ns=collector.average_first_packet_latency_ns(),
        avg_packet_latency_ns=collector.average_packet_latency_ns(),
        avg_stretch=collector.average_stretch(),
        gateway_arrivals=collector.gateway_arrivals,
        packets_sent=collector.packets_sent,
        completion_rate=collector.completion_rate,
        misdeliveries=collector.misdeliveries,
        drops=collector.drops,
        learning_packets=collector.learning_packets,
        invalidation_packets=collector.invalidation_packets,
        reorder_events=collector.reorder_events,
        total_switch_bytes=network.total_switch_bytes(),
        pod_bytes=network.pod_bytes(),
        failed_flows=len(failed),
        failure_reasons=failure_reasons,
        fidelity=network.config.fidelity,
        fluid_adoptions=fluid.adoptions if fluid is not None else 0,
        fluid_escalations=fluid.escalations if fluid is not None else 0,
        fluid_rounds=fluid.rounds if fluid is not None else 0,
        fluid_packets=fluid.fluid_packets if fluid is not None else 0,
        fluid_escalations_by_reason=(
            dict(sorted(fluid.escalations_by_reason.items()))
            if fluid is not None else {}),
        collector=collector if keep_network else None,
        network=network if keep_network else None,
    )


def run_experiment(spec: FatTreeSpec, scheme_name: str, flows: Sequence[FlowSpec],
                   num_vms: int, cache_ratio: float, seed: int = 0,
                   transport: TransportConfig | None = None,
                   horizon_ns: int | None = None,
                   keep_network: bool = False,
                   trace_name: str = "",
                   scheme_kwargs: dict | None = None,
                   perf=None,
                   cache="auto",
                   fidelity: str = "packet",
                   warmup_split_ns: int | None = None) -> RunResult:
    """One-call experiment: build scheme + network, play flows, summarize.

    Results are memoized in the content-addressed run cache
    (:mod:`repro.experiments.runcache`): with ``cache="auto"`` (the
    default) an unchanged run is served from disk without simulating.
    Pass ``cache=None`` to force execution, or a
    :class:`~repro.experiments.runcache.RunCache` for an explicit
    store.  Runs that retain live objects (``keep_network=True``) are
    never cached.
    """
    if perf is None:
        perf = _NULL_TIMER
    store = None if keep_network else resolve_cache(cache)
    key = None
    if store is not None:
        with perf.phase("cache"):
            key = run_key(spec, scheme_name, num_vms, cache_ratio, seed,
                          transport=transport, horizon_ns=horizon_ns,
                          trace_name=trace_name, scheme_kwargs=scheme_kwargs,
                          flows=flows, fidelity=fidelity)
            hit = store.get(key)
        if hit is not None:
            return hit
    with perf.phase("build"):
        scheme = make_scheme(scheme_name, num_vms, cache_ratio,
                             **(scheme_kwargs or {}))
        network = build_network(spec, scheme, num_vms, seed,
                                fidelity=fidelity)
    result = run_flows(network, flows, transport, horizon_ns, keep_network,
                       trace_name, cache_ratio, perf=perf,
                       warmup_split_ns=warmup_split_ns)
    if store is not None:
        store.put(key, result)
    return result
