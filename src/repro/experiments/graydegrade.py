"""Graceful-degradation experiment: gray failures vs. the self-healing plane.

The chaos experiment (:mod:`repro.experiments.faults`) exercises
fail-stop faults, which binary probing detects.  Gray failures are the
harder case: a browned-out gateway still answers probes while shedding
half its arrivals, a degraded cable loses packets without ever going
down, and a flipped SRAM bit silently rewrites a cached translation.
Nothing in the fail-stop toolkit notices any of them.

This experiment runs SwitchV2P twice through one gray episode — a
gateway brownout overlapping a degraded ToR-spine cable, plus cache
bit flips that outlive both — in two protocol variants:

* **hardened**: the gray (EWMA) failure detector fails the browned-out
  gateway out of the pool and reinstates it after a dwell, the
  anti-entropy audit repairs the corrupted cache lines within the
  staleness bound, and negative caching keeps known-stale mappings
  from being re-learned.
* **unhardened**: the same schedule with every self-healing knob off —
  binary probing only, no audit, no negative cache.  The brownout is
  invisible to it and the corrupted lines persist, so flows whose
  translations were flipped retransmit into a black hole until the
  transport gives up.

Each variant also runs fault-free so the table reports degradation and
recovery against its own baseline.  Run via ``python -m repro gray`` or
the benchmark ``benchmarks/test_gray_degradation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.faults import _place_tenants, _window_fct_ns, chaos_flows
from repro.experiments.runner import make_scheme
from repro.faults import FaultSchedule
from repro.metrics.reporting import render_table
from repro.metrics.resilience import ResilienceProbe, ResilienceSummary
from repro.net.topology import FatTreeSpec
from repro.sim.engine import msec, usec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig
from repro.vnet.network import NetworkConfig, VirtualNetwork

#: Report order: the self-healing plane on, then off.
GRAY_VARIANTS: tuple[str, ...] = ("hardened", "unhardened")


@dataclass(frozen=True)
class GrayDegradeParams:
    """Workload, gray-episode timing and hardening knobs.

    Defaults are sized like the chaos experiment (seconds per run): a
    4-pod fat tree, a few hundred short flows, one brownout + cable
    degradation window while arrivals are in full swing, and bit flips
    in the middle of it whose damage — unlike the window — does not
    heal on its own.
    """

    num_vms: int = 64
    num_flows: int = 600
    min_flow_bytes: int = 1_500
    max_flow_bytes: int = 12_000
    arrival_span_ns: int = msec(10)
    cache_ratio: float = 16.0
    sample_period_ns: int = usec(250)
    # --- the gray episode --------------------------------------------
    gray_start_ns: int = msec(2)
    gray_end_ns: int = msec(5)
    brownout_drop_rate: float = 0.6
    brownout_extra_ns: int = usec(300)
    degrade_loss_rate: float = 0.25
    degrade_extra_ns: int = usec(50)
    bitflip_ns: int = msec(3)
    #: Bit 20 lands in the PIP's rack field, so a flipped line points
    #: at a rack the fabric does not have: packets black-hole instead
    #: of misdelivering, which sidesteps the protocol's own
    #: misdelivery-tag repair — exactly the damage only the
    #: anti-entropy audit can undo.
    bitflip_bit: int = 20
    flips_per_tor: int = 2
    horizon_ns: int = msec(16)
    # --- detection + self-healing (the hardened variant) -------------
    probe_interval_ns: int = usec(200)
    miss_threshold: int = 3
    gray_loss_threshold: float = 0.2
    gray_latency_threshold_ns: int = usec(120)
    reinstate_dwell_ns: int = usec(400)
    anti_entropy_period_ns: int = msec(1)
    staleness_bound_ns: int = msec(2)
    negative_ttl_ns: int = usec(500)
    seed: int = 0


def gray_spec() -> FatTreeSpec:
    """Same 4-pod, two-gateway fabric as the chaos experiment."""
    return FatTreeSpec(pods=4, racks_per_pod=2, servers_per_rack=2,
                       spines_per_pod=2, num_cores=2,
                       gateway_pods=(0, 3), gateways_per_pod=1)


def gray_schedule(params: GrayDegradeParams,
                  spec: FatTreeSpec | None = None) -> FaultSchedule:
    """The shared gray episode: brownout + degraded cable + bit flips.

    Gateway 0 browns out (sheds arrivals, inflates its latency) over
    the gray window while the pod-1 ToR-0 uplink to spine (1, 0) runs
    lossy and slow; both heal at the window's end.  Midway through,
    every tenant-pod ToR takes ``flips_per_tor`` SRAM bit flips in its
    translation cache — corruption that no scheduled event repairs, so
    any recovery after the window is the protocol's own doing.
    """
    if spec is None:
        spec = gray_spec()
    window_ns = params.gray_end_ns - params.gray_start_ns
    schedule = FaultSchedule()
    schedule.gateway_brownout(0, params.gray_start_ns, window_ns,
                              params.brownout_drop_rate,
                              params.brownout_extra_ns)
    schedule.link_degradation(("tor", 1, 0), ("spine", 1, 0),
                              params.gray_start_ns, window_ns,
                              params.degrade_loss_rate,
                              params.degrade_extra_ns)
    gateway_pods = set(spec.gateway_pods)
    for pod in range(spec.pods):
        if pod in gateway_pods:
            continue
        for rack in range(spec.racks_per_pod):
            for ordinal in range(params.flips_per_tor):
                # Spread the ordinals so repeated flips on one ToR hit
                # distinct occupied lines (modulo occupancy at fire
                # time, so this stays a no-op on cold caches).
                schedule.flip_cache_bit(params.bitflip_ns, "tor", (pod, rack),
                                        entry=ordinal * 3,
                                        bit=params.bitflip_bit)
    return schedule


@dataclass(frozen=True)
class GrayRow:
    """Baseline-vs-gray-episode comparison for one protocol variant."""

    variant: str
    baseline: ResilienceSummary
    faulted: ResilienceSummary
    baseline_fct_ns: float
    faulted_fct_ns: float
    #: Average FCT of flows starting inside the gray window — the
    #: blast radius of the brownout + degradation, before the
    #: persistent bit-flip damage dominates.
    baseline_window_fct_ns: float
    faulted_window_fct_ns: float
    #: Average FCT of flows starting *after* the window heals: the
    #: recovery test.  Brownout and cable damage are gone by then, so
    #: any residue here is the unrepaired bit-flip corruption — senders
    #: retransmitting into black-holed translations.
    baseline_after_fct_ns: float
    faulted_after_fct_ns: float
    gray_detections: int
    gray_reinstatements: int
    audit_repairs: int
    negative_blocks: int
    corrupted_lines: int

    @property
    def availability_drop(self) -> float:
        """Absolute availability lost to the gray episode."""
        return max(0.0, self.baseline.availability - self.faulted.availability)

    @property
    def fct_degradation(self) -> float:
        """Faulted / baseline average FCT (1.0 = unharmed)."""
        return _ratio(self.faulted_fct_ns, self.baseline_fct_ns)

    @property
    def after_fct_degradation(self) -> float:
        """Post-episode FCT degradation — did the plane actually heal?"""
        return _ratio(self.faulted_after_fct_ns, self.baseline_after_fct_ns)


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0 or baseline != baseline:
        return float("nan")
    return value / baseline


def _build_network(params: GrayDegradeParams, hardened: bool,
                   faulted: bool) -> tuple[VirtualNetwork, ResilienceProbe]:
    spec = gray_spec()
    negative_ttl = params.negative_ttl_ns if hardened else 0
    scheme = make_scheme("SwitchV2P", params.num_vms, params.cache_ratio,
                         negative_ttl_ns=negative_ttl)
    network = VirtualNetwork(NetworkConfig(spec=spec, seed=params.seed), scheme)
    _place_tenants(network, spec, params.num_vms)
    probe = ResilienceProbe(network, params.sample_period_ns)
    if faulted:
        # Both variants probe identically; only the hardened one reads
        # the gray (EWMA) signals and gets the anti-entropy audit.  The
        # explicit enable runs before the schedule's own idempotent one
        # so these knobs win.
        gray_kwargs = {}
        if hardened:
            gray_kwargs = {
                "gray_loss_threshold": params.gray_loss_threshold,
                "gray_latency_threshold_ns": params.gray_latency_threshold_ns,
                "reinstate_dwell_ns": params.reinstate_dwell_ns,
            }
        network.enable_gateway_failover(
            probe_interval_ns=params.probe_interval_ns,
            miss_threshold=params.miss_threshold, **gray_kwargs)
        if hardened:
            network.enable_anti_entropy(
                params.anti_entropy_period_ns,
                staleness_bound_ns=params.staleness_bound_ns)
    return network, probe


def _run_once(params: GrayDegradeParams, hardened: bool,
              schedule: FaultSchedule | None):
    network, probe = _build_network(params, hardened, schedule is not None)
    if schedule is not None:
        schedule.apply(network)
    player = TrafficPlayer(network, TransportConfig())
    player.add_flows(chaos_flows(params))
    network.run(until=params.horizon_ns)
    summary = probe.summarize(schedule)
    window_fct = _window_fct_ns(network.collector, params.gray_start_ns,
                                params.gray_end_ns)
    after_fct = _window_fct_ns(network.collector, params.gray_end_ns,
                               params.horizon_ns)
    detector = network.failure_detector
    auditor = network.anti_entropy
    stats = {
        "gray_detections": detector.gray_detections if detector else 0,
        "gray_reinstatements": detector.gray_reinstatements if detector else 0,
        "audit_repairs": auditor.repairs if auditor is not None else 0,
        "negative_blocks": getattr(network.scheme, "negative_blocks", 0),
        "corrupted_lines": len(schedule.corruptions) if schedule else 0,
    }
    return (summary, network.collector.average_fct_ns(), window_fct,
            after_fct, stats)


def run_gray_experiment(params: GrayDegradeParams | None = None,
                        variants: tuple[str, ...] = GRAY_VARIANTS,
                        progress=None) -> list[GrayRow]:
    """Run each variant with and without the shared gray episode.

    Args:
        progress: optional ``progress(done, total, label)`` callback,
            fired after each of the ``2 * len(variants)`` runs.
    """
    if params is None:
        params = GrayDegradeParams()
    rows = []
    total = 2 * len(variants)
    done = 0
    for variant in variants:
        if variant not in GRAY_VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; "
                             f"known: {', '.join(GRAY_VARIANTS)}")
        hardened = variant == "hardened"
        base_summary, base_fct, base_window, base_after, _ = _run_once(
            params, hardened, None)
        done += 1
        if progress is not None:
            progress(done, total, f"{variant}/baseline")
        # A fresh schedule per run: fired/corruption logs are per-application.
        faulted_summary, faulted_fct, faulted_window, faulted_after, stats = \
            _run_once(params, hardened, gray_schedule(params))
        done += 1
        if progress is not None:
            progress(done, total, f"{variant}/gray")
        rows.append(GrayRow(variant=variant, baseline=base_summary,
                            faulted=faulted_summary,
                            baseline_fct_ns=base_fct,
                            faulted_fct_ns=faulted_fct,
                            baseline_window_fct_ns=base_window,
                            faulted_window_fct_ns=faulted_window,
                            baseline_after_fct_ns=base_after,
                            faulted_after_fct_ns=faulted_after,
                            **stats))
    return rows


def render_gray_table(rows: list[GrayRow]) -> str:
    """The committed results table (benchmarks/results)."""
    headers = ["variant", "avail gray", "fct base (us)", "fct gray (us)",
               "fct degr", "in-window fct (us)", "post-window fct (us)",
               "post-window degr", "hit before", "hit during", "hit after",
               "brownout drops", "failed flows",
               "gray detects", "reinstates", "audit repairs", "flipped lines"]
    table_rows = []
    for row in rows:
        table_rows.append([
            row.variant,
            row.faulted.availability,
            row.baseline_fct_ns / 1_000,
            row.faulted_fct_ns / 1_000,
            row.fct_degradation,
            row.faulted_window_fct_ns / 1_000,
            row.faulted_after_fct_ns / 1_000,
            row.after_fct_degradation,
            row.faulted.before.mean_hit_rate,
            row.faulted.during.mean_hit_rate,
            row.faulted.after.mean_hit_rate,
            row.faulted.gateway_brownout_drops,
            row.faulted.failed_flows,
            row.gray_detections,
            row.gray_reinstatements,
            row.audit_repairs,
            row.corrupted_lines,
        ])
    return render_table(headers, table_rows,
                        title="Graceful degradation: gateway brownout + "
                              "degraded cable + cache bit flips "
                              "(identical gray schedule per variant)")
