"""Parameter sweeps: cache size, gateway count, topology scale.

These implement the x-axes of the paper's figures.  Results are
normalized against the NoCache baseline run with identical trace and
topology, exactly as the paper normalizes Figures 5/6/9/10.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.experiments.runner import RunResult, run_experiment
from repro.metrics.reporting import improvement
from repro.net.topology import FatTreeSpec
from repro.transport.flow import FlowSpec
from repro.transport.reliable import TransportConfig


@dataclass
class SweepRow:
    """One (scheme, x-value) point of a figure."""

    scheme: str
    x_value: float
    hit_rate: float
    fct_improvement: float
    first_packet_improvement: float
    result: RunResult

    def as_row(self) -> list:
        return [self.scheme, self.x_value, self.hit_rate,
                self.fct_improvement, self.first_packet_improvement]


def cache_size_sweep(
    spec: FatTreeSpec,
    flows: Sequence[FlowSpec],
    num_vms: int,
    ratios: Sequence[float],
    schemes: Sequence[str],
    seed: int = 0,
    trace_name: str = "",
    transport: TransportConfig | None = None,
    scheme_kwargs: dict[str, dict] | None = None,
    horizon_ns: int | None = None,
    trace_spec=None,
    workers: int | None = None,
    cache="auto",
    progress=None,
    perf=None,
) -> list[SweepRow]:
    """The Figure 5/6 sweep: schemes x aggregate cache sizes.

    The NoCache reference is simulated once (its behaviour does not
    depend on the cache budget) and reused to normalize every point.

    Args:
        trace_spec: optional :class:`~repro.traces.spec.TraceSpec`
            describing the same workload as ``flows``; when given,
            parallel jobs carry the lightweight spec and workers
            regenerate the flows locally instead of unpickling them.
        workers: process count for the grid points (``None`` defers to
            the ``REPRO_PARALLEL`` fallback).
        cache: run-cache handle (``"auto"``/``None``/RunCache); a warm
            cache turns the whole sweep into disk reads.
        progress: ``progress(done, total, cached)`` per grid job.
        perf: optional :class:`~repro.perf.PhaseTimer` accumulating
            per-job wall-clock under the ``"jobs"`` phase.
    """
    from repro.experiments.parallel import (
        ExperimentJob,
        parallel_run_experiments,
    )

    kwargs_by_scheme = scheme_kwargs or {}
    baseline = run_experiment(spec, "NoCache", flows, num_vms, 0.0, seed,
                              transport, horizon_ns, trace_name=trace_name,
                              cache=cache)
    # Schemes without in-switch caches produce identical results at
    # every ratio; simulate them once and replicate the row.
    ratio_independent = {"NoCache": baseline}
    for scheme in schemes:
        if scheme in ("Direct", "OnDemand"):
            ratio_independent[scheme] = run_experiment(
                spec, scheme, flows, num_vms, 0.0, seed, transport,
                horizon_ns, trace_name=trace_name,
                scheme_kwargs=kwargs_by_scheme.get(scheme), cache=cache)

    # The remaining (scheme, ratio) points are independent simulations;
    # they run through the streaming parallel executor (sequential
    # unless `workers` or REPRO_PARALLEL asks otherwise), with cache
    # hits resolved before anything is dispatched.
    flow_tuple = None if trace_spec is not None else tuple(flows)
    jobs: list[ExperimentJob] = []
    grid: list[tuple[float, str]] = []
    for ratio in ratios:
        for scheme in schemes:
            grid.append((ratio, scheme))
            if scheme not in ratio_independent:
                jobs.append(ExperimentJob(
                    spec=spec, scheme_name=scheme, flows=flow_tuple,
                    num_vms=num_vms, cache_ratio=ratio, seed=seed,
                    transport=transport, horizon_ns=horizon_ns,
                    trace_name=trace_name, trace=trace_spec,
                    scheme_kwargs=kwargs_by_scheme.get(scheme) or {}))
    job_results = iter(parallel_run_experiments(
        jobs, workers=workers, cache=cache, progress=progress, perf=perf))
    rows: list[SweepRow] = []
    for ratio, scheme in grid:
        result = ratio_independent.get(scheme)
        if result is None:
            result = next(job_results)
        rows.append(_normalized_row(result, baseline, ratio))
    return rows


def gateway_count_sweep(
    base_spec: FatTreeSpec,
    trace_factory,
    num_vms: int,
    gateways_per_pod_values: Sequence[int],
    schemes: Sequence[str],
    cache_ratio: float,
    seed: int = 0,
    trace_name: str = "",
    horizon_ns: int | None = None,
    cache="auto",
) -> list[SweepRow]:
    """The Figure 9 sweep: vary deployed gateways, fixed cache budget.

    ``trace_factory(spec)`` regenerates the flow list per topology (the
    flows themselves do not depend on gateway count, but regenerating
    keeps the interface uniform with the topology sweep).

    All rows are normalized against NoCache at the *first* (largest)
    gateway deployment, so the degradation of gateway-bound schemes as
    the fleet shrinks is visible — the comparison Figure 9 makes.
    """
    rows: list[SweepRow] = []
    reference: RunResult | None = None
    for per_pod in gateways_per_pod_values:
        spec = FatTreeSpec(
            pods=base_spec.pods,
            racks_per_pod=base_spec.racks_per_pod,
            servers_per_rack=base_spec.servers_per_rack,
            spines_per_pod=base_spec.spines_per_pod,
            num_cores=base_spec.num_cores,
            gateway_pods=base_spec.gateway_pods,
            gateways_per_pod=per_pod,
            host_link_bps=base_spec.host_link_bps,
            fabric_link_bps=base_spec.fabric_link_bps,
            propagation_ns=base_spec.propagation_ns,
            buffer_bytes=base_spec.buffer_bytes,
        )
        flows = trace_factory(spec)
        num_gateways = spec.num_gateways
        baseline = run_experiment(spec, "NoCache", flows, num_vms, 0.0, seed,
                                  horizon_ns=horizon_ns, trace_name=trace_name,
                                  cache=cache)
        if reference is None:
            reference = baseline
        for scheme in schemes:
            if scheme == "NoCache":
                result = baseline
            else:
                result = run_experiment(spec, scheme, flows, num_vms,
                                        cache_ratio, seed,
                                        horizon_ns=horizon_ns,
                                        trace_name=trace_name, cache=cache)
            rows.append(_normalized_row(result, reference, float(num_gateways)))
    return rows


def topology_scale_sweep(
    pods_values: Sequence[int],
    total_servers: int,
    racks_per_pod: int,
    trace_factory,
    num_vms: int,
    schemes: Sequence[str],
    cache_ratio: float,
    seed: int = 0,
    trace_name: str = "",
    horizon_ns: int | None = None,
    cache="auto",
) -> list[SweepRow]:
    """The Figure 10 sweep: scale pods while keeping servers constant."""
    rows: list[SweepRow] = []
    for pods in pods_values:
        servers_per_rack = total_servers // (pods * racks_per_pod)
        if servers_per_rack < 1:
            raise ValueError(
                f"{pods} pods x {racks_per_pod} racks exceeds {total_servers} "
                "servers")
        gateway_pods = tuple(range(0, pods, 2)) if pods > 1 else (0,)
        spec = FatTreeSpec(
            pods=pods,
            racks_per_pod=racks_per_pod,
            servers_per_rack=servers_per_rack,
            gateway_pods=gateway_pods,
            gateways_per_pod=max(1, 40 // max(1, len(gateway_pods))),
        )
        flows = trace_factory(spec)
        baseline = run_experiment(spec, "NoCache", flows, num_vms, 0.0, seed,
                                  horizon_ns=horizon_ns, trace_name=trace_name,
                                  cache=cache)
        for scheme in schemes:
            if scheme == "NoCache":
                result = baseline
            else:
                result = run_experiment(spec, scheme, flows, num_vms,
                                        cache_ratio, seed,
                                        horizon_ns=horizon_ns,
                                        trace_name=trace_name, cache=cache)
            rows.append(_normalized_row(result, baseline, float(pods)))
    return rows


def _normalized_row(result: RunResult, baseline: RunResult,
                    x_value: float) -> SweepRow:
    return SweepRow(
        scheme=result.scheme,
        x_value=x_value,
        hit_rate=result.hit_rate,
        fct_improvement=improvement(result.avg_fct_ns, baseline.avg_fct_ns),
        first_packet_improvement=improvement(result.avg_first_packet_ns,
                                             baseline.avg_first_packet_ns),
        result=result,
    )
