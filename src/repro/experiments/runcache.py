"""Content-addressed, on-disk memoization of experiment runs.

A figure sweep is dozens of independent ``(scheme, ratio, seed)``
simulations, and users re-run the same sweeps constantly — after a doc
edit, to print a table again, to extend a grid by one point.  This
module makes re-execution cheap: every completed
:class:`~repro.experiments.runner.RunResult` is stored on disk under a
key that is a stable hash of the *fully resolved run inputs*, so an
unchanged run is a pure cache hit and a changed point re-simulates only
itself (resumable sweeps).

Key derivation (see :func:`run_key`) covers everything the simulation
can observe:

* the :class:`~repro.net.topology.FatTreeSpec` (every field),
* scheme name + canonicalized scheme kwargs,
* the trace **content** — a digest of the materialized flow list, so a
  :class:`~repro.traces.spec.TraceSpec`-carrying job and a
  flows-carrying job of the same workload share an entry,
* the VM count, cache ratio, seed, transport config and horizon,
* :data:`SCHEMA_VERSION`, a manually bumped constant that must change
  whenever simulated *behaviour* changes (the golden-snapshot test in
  ``tests/test_determinism.py`` is the tripwire for forgetting).

Keying uses only deterministic inputs — never the wall clock, a global
RNG, process ids or dict iteration order — so the same run always maps
to the same entry on any machine.

Storage layout: ``<root>/<key[:2]>/<key>.json``, one JSON document per
entry, written atomically (temp file + ``os.replace``).  Corrupted or
stale-schema entries are treated as misses and deleted.  Environment
switches: ``REPRO_RUNCACHE=0`` disables the default cache entirely and
``REPRO_RUNCACHE_DIR`` relocates it (default:
``$XDG_CACHE_HOME/repro/runcache`` or ``~/.cache/repro/runcache``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from functools import lru_cache
from pathlib import Path
from typing import TYPE_CHECKING

from repro.traces.spec import TraceSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (runner imports us)
    from repro.experiments.runner import RunResult

#: Bump whenever a code change alters simulated behaviour (event
#: ordering, float arithmetic, RNG consumption, new RunResult fields).
#: Old entries then miss and are rebuilt instead of serving stale data.
#: 2: RunResult gained failed_flows / failure_reasons.
#: 3: hybrid-fidelity engine — RunResult gained fidelity + fluid_*
#: fields and run keys carry the fidelity knob.
SCHEMA_VERSION = 3

_ENV_FLAG = "REPRO_RUNCACHE"
_ENV_DIR = "REPRO_RUNCACHE_DIR"
_DISABLED_VALUES = ("0", "off", "no", "false")

#: Fields of RunResult that never serialize (live simulation objects).
_LIVE_FIELDS = ("collector", "network")


# ----------------------------------------------------------------------
# Canonical encoding shared by key derivation and ExperimentJob hygiene
# ----------------------------------------------------------------------
def freeze_value(value):
    """Recursively convert ``value`` into a hashable, canonical form.

    Dicts become sorted ``("__map__", ((k, v), ...))`` tuples and lists
    become tuples; scalars and frozen dataclasses pass through.  The
    result is deterministic regardless of insertion order.
    """
    if isinstance(value, dict):
        return ("__map__", tuple(sorted((str(k), freeze_value(v))
                                        for k, v in value.items())))
    if isinstance(value, (list, tuple)):
        return tuple(freeze_value(v) for v in value)
    return value


def thaw_value(value):
    """Invert :func:`freeze_value` (maps come back as dicts)."""
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == "__map__":
            return {k: thaw_value(v) for k, v in value[1]}
        return tuple(thaw_value(v) for v in value)
    return value


def canonical_items(mapping) -> tuple:
    """A dict (or item sequence) as a sorted, hashable item tuple."""
    if not mapping:
        return ()
    if not isinstance(mapping, dict):
        mapping = dict(mapping)
    return tuple(sorted((str(k), freeze_value(v)) for k, v in mapping.items()))


def kwargs_dict(items) -> dict:
    """Canonical item tuple back to a plain kwargs dict."""
    return {key: thaw_value(value) for key, value in items}


def _encode(value):
    """Canonical JSON-able encoding of run inputs for hashing.

    Floats are encoded via ``repr`` (exact round trip), dataclasses by
    qualified name + sorted fields, containers recursively.  Unknown
    types raise: silently ``str()``-ing an object would make the key
    depend on ``id()``/repr internals.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return ["f", repr(value)]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(f.name for f in dataclasses.fields(value))
        return ["dc", type(value).__qualname__,
                [[name, _encode(getattr(value, name))] for name in fields]]
    if isinstance(value, (list, tuple)):
        return ["seq", [_encode(v) for v in value]]
    if isinstance(value, dict):
        return ["map", [[str(k), _encode(v)]
                        for k, v in sorted(value.items(),
                                           key=lambda kv: str(kv[0]))]]
    # numpy scalars (trace params sometimes carry them) normalize to
    # their Python equivalents; anything else is a keying bug.
    item = getattr(value, "item", None)
    if callable(item):
        return _encode(item())
    raise TypeError(f"cannot canonically encode {type(value).__name__} "
                    f"for run-cache keying: {value!r}")


def _digest(obj) -> str:
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def flows_digest(flows) -> str:
    """Content digest of a materialized flow list."""
    return _digest(["flows", [_encode(flow) for flow in flows]])


@lru_cache(maxsize=32)
def _trace_spec_digest(trace: TraceSpec) -> str:
    """Digest of a TraceSpec's *materialized* flows (memoized).

    Hashing the content rather than the spec makes spec-form and
    flows-form descriptions of the same workload share cache entries.
    """
    return flows_digest(tuple(trace.materialize()))


def run_key(spec, scheme_name: str, num_vms: int, cache_ratio: float,
            seed: int, *, transport=None, horizon_ns: int | None = None,
            trace_name: str = "", scheme_kwargs=None,
            flows=None, trace: TraceSpec | None = None,
            fidelity: str = "packet") -> str:
    """The content address of one experiment run.

    Exactly one of ``flows`` (a materialized list) or ``trace`` (a
    :class:`TraceSpec`) describes the workload.
    """
    if (flows is None) == (trace is None):
        raise ValueError("run_key needs exactly one of flows= or trace=")
    if isinstance(scheme_kwargs, dict) or scheme_kwargs is None:
        kwargs_items = canonical_items(scheme_kwargs or {})
    else:
        kwargs_items = tuple(scheme_kwargs)
    payload = {
        "schema": SCHEMA_VERSION,
        "spec": _encode(spec),
        "scheme": scheme_name,
        "scheme_kwargs": _encode(list(kwargs_items)),
        "num_vms": int(num_vms),
        "cache_ratio": repr(float(cache_ratio)),
        "seed": int(seed),
        "transport": _encode(transport),
        "horizon_ns": None if horizon_ns is None else int(horizon_ns),
        "trace_name": trace_name,
        "fidelity": fidelity,
        "flows": (_trace_spec_digest(trace) if trace is not None
                  else flows_digest(tuple(flows))),
    }
    return _digest(payload)


def job_key(job) -> str:
    """The run key of an :class:`~repro.experiments.parallel.ExperimentJob`."""
    return run_key(job.spec, job.scheme_name, job.num_vms, job.cache_ratio,
                   job.seed, transport=job.transport,
                   horizon_ns=job.horizon_ns, trace_name=job.trace_name,
                   scheme_kwargs=job.scheme_kwargs, flows=job.flows,
                   trace=job.trace, fidelity=job.fidelity)


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------
@dataclasses.dataclass
class CacheStats:
    """Counters for one :class:`RunCache` instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalid: int = 0


class RunCache:
    """A content-addressed store of serialized RunResults."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> RunResult | None:
        """Look up ``key``; corrupted/stale entries count as misses."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        result = None
        try:
            result = _decode_result(json.loads(text), key)
        except (ValueError, KeyError, TypeError):
            result = None
        if result is None:
            # Corrupt, truncated, or written by an older schema: drop
            # the entry so it is rebuilt rather than retried forever.
            self.stats.invalid += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> bool:
        """Store ``result`` atomically; refuses live-object results."""
        if result.collector is not None or result.network is not None:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(_encode_result(result, key), sort_keys=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        return True

    def entries(self) -> list[Path]:
        """All entry files currently in the store."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/*.json"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _scalar(value):
    """JSON-ready scalar (numpy ints/floats normalize to Python)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(f"non-scalar RunResult field value: {value!r}")


def _encode_result(result, key: str) -> dict:
    payload = {}
    for field in dataclasses.fields(result):
        if field.name in _LIVE_FIELDS:
            continue
        value = getattr(result, field.name)
        if field.name == "pod_bytes":
            payload[field.name] = [int(b) for b in value]
        elif field.name in ("failure_reasons", "fluid_escalations_by_reason"):
            payload[field.name] = {str(k): int(v) for k, v in value.items()}
        else:
            payload[field.name] = _scalar(value)
    return {"schema": SCHEMA_VERSION, "key": key, "result": payload}


def _decode_result(payload: dict, key: str) -> RunResult | None:
    from repro.experiments.runner import RunResult

    if payload.get("schema") != SCHEMA_VERSION or payload.get("key") != key:
        return None
    data = payload["result"]
    expected = {f.name for f in dataclasses.fields(RunResult)} - set(_LIVE_FIELDS)
    if not isinstance(data, dict) or set(data) != expected:
        return None
    return RunResult(**data)


# ----------------------------------------------------------------------
# Default-cache resolution (environment controlled)
# ----------------------------------------------------------------------
_instances: dict[str, RunCache] = {}


def runcache_enabled() -> bool:
    """Whether the environment permits the default cache."""
    return os.environ.get(_ENV_FLAG, "1").strip().lower() not in _DISABLED_VALUES


def default_cache_dir() -> Path:
    """Default store location (overridable via ``REPRO_RUNCACHE_DIR``)."""
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "runcache"


def default_cache() -> RunCache | None:
    """The environment-configured cache, or None when disabled.

    Re-reads the environment on every call (tests repoint the
    directory freely) but reuses RunCache instances per root so hit
    counters accumulate across calls within a process.
    """
    if not runcache_enabled():
        return None
    root = str(default_cache_dir())
    instance = _instances.get(root)
    if instance is None:
        instance = _instances[root] = RunCache(root)
    return instance


def resolve_cache(cache) -> RunCache | None:
    """Normalize a ``cache`` argument: RunCache, None, or ``"auto"``."""
    if cache is None or cache is False:
        return None
    if isinstance(cache, RunCache):
        return cache
    if cache == "auto":
        return default_cache()
    raise TypeError(f"cache must be a RunCache, None, or 'auto'; got {cache!r}")
