"""The chaos (fault-injection) experiment: resilience under failures.

The paper's robustness claim is architectural: because SwitchV2P
resolves mappings *in the network*, on the packets' existing paths, a
gateway outage that is catastrophic for gateway-centric designs barely
touches traffic that is already served from switch caches.  This
experiment makes that claim measurable.  Every scheme runs the same
workload twice — once undisturbed, once under an identical
:class:`~repro.faults.FaultSchedule` (a gateway crash with hypervisor
failover, then a spine fail + recover) — and reports the *degradation*:
faulted vs. baseline availability and FCT, the windowed hit-rate dip,
and the time for the hit rate to recover after repair.

Run via ``python -m repro faults`` or the benchmark
``benchmarks/test_faults_resilience.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import make_scheme
from repro.faults import FaultSchedule
from repro.metrics.reporting import render_table
from repro.metrics.resilience import ResilienceProbe, ResilienceSummary
from repro.net.topology import FatTreeSpec
from repro.sim.engine import msec, usec
from repro.sim.randomness import derive_seed
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig
from repro.vnet.network import NetworkConfig, VirtualNetwork

#: Schemes compared, in report order.  SwitchV2P against the strongest
#: gateway-centric baseline (GwCache) and the host-centric one
#: (OnDemand), per the paper's resilience discussion.
CHAOS_SCHEMES: tuple[str, ...] = ("SwitchV2P", "GwCache", "OnDemand")


@dataclass(frozen=True)
class ChaosParams:
    """Workload + fault timing for the chaos experiment.

    Defaults are sized to run in seconds: a 4-pod fat tree with two
    gateways, a few hundred short TCP flows, one gateway outage while
    the flows are in full swing, then a spine fail + recover after the
    gateway is back (so the two disruptions are separable in the
    windowed timelines).
    """

    num_vms: int = 64
    num_flows: int = 600
    min_flow_bytes: int = 1_500
    max_flow_bytes: int = 12_000
    arrival_span_ns: int = msec(10)
    cache_ratio: float = 16.0
    sample_period_ns: int = usec(250)
    gateway_crash_ns: int = msec(2)
    gateway_restart_ns: int = msec(5)
    spine_fail_ns: int = msec(6.5)
    spine_recover_ns: int = msec(8)
    horizon_ns: int = msec(16)
    #: Failure-detection tuning.  Real detectors take several probe
    #: periods to declare a gateway dead; during that window packets
    #: hashed to the crashed gateway black-hole and only the transport
    #: (RTO) or an in-network cache hit saves the flow — exactly the
    #: window where schemes differ.
    probe_interval_ns: int = usec(200)
    miss_threshold: int = 3
    seed: int = 0


def chaos_spec() -> FatTreeSpec:
    """A small 4-pod fabric with one gateway in each of two pods.

    Two gateways make gateway failover meaningful (one crash halves
    the fleet instead of erasing it), and the 2x2x2 pods keep a full
    three-scheme, two-run-each comparison inside a few seconds.
    """
    return FatTreeSpec(pods=4, racks_per_pod=2, servers_per_rack=2,
                       spines_per_pod=2, num_cores=2,
                       gateway_pods=(0, 3), gateways_per_pod=1)


def chaos_schedule(params: ChaosParams,
                   spec: FatTreeSpec | None = None) -> FaultSchedule:
    """The shared fault script: a gateway-rack outage, then a spine outage.

    The first fault is a rack power loss in gateway pod 0: the gateway
    *and* the ToR above it go down together, then both come back.
    Until the hypervisor-side detector (enabled automatically by
    ``apply``) fails the gateway out of the pool, packets hashed to it
    black-hole unless an in-network cache resolves them first — the
    window where the schemes' architectures diverge (Sailfish-style
    gateway-ToR caches die *with* the rack; fabric-wide caches do not).
    After the rack is back, spine (1, 0) — a non-gateway pod, so its
    cache serves tenant traffic — fails and recovers, demonstrating
    cold-restart cache flush and down-path rerouting.
    """
    if spec is None:
        spec = chaos_spec()
    gateway_outage_ns = params.gateway_restart_ns - params.gateway_crash_ns
    schedule = FaultSchedule()
    schedule.gateway_outage(0, params.gateway_crash_ns, gateway_outage_ns)
    schedule.switch_outage("tor", (spec.gateway_pods[0], spec.gateway_rack),
                           params.gateway_crash_ns, gateway_outage_ns)
    schedule.switch_outage("spine", (1, 0), params.spine_fail_ns,
                           params.spine_recover_ns - params.spine_fail_ns)
    return schedule


def chaos_flows(params: ChaosParams) -> list[FlowSpec]:
    """Short TCP flows between random VM pairs, arrivals over the span."""
    # The raw experiment seed is never used directly: deriving a named
    # stream keeps this draw independent of any other consumer of the
    # same root seed (W401 provenance discipline).
    rng = np.random.default_rng(derive_seed(params.seed, "chaos-flows"))
    flows = []
    for _ in range(params.num_flows):
        src = int(rng.integers(0, params.num_vms))
        dst = int(rng.integers(0, params.num_vms - 1))
        if dst >= src:
            dst += 1
        flows.append(FlowSpec(
            src_vip=src,
            dst_vip=dst,
            size_bytes=int(rng.integers(params.min_flow_bytes,
                                        params.max_flow_bytes + 1)),
            start_ns=int(rng.integers(0, params.arrival_span_ns)),
        ))
    return flows


@dataclass(frozen=True)
class ChaosRow:
    """Baseline-vs-faulted comparison for one scheme."""

    scheme: str
    baseline: ResilienceSummary
    faulted: ResilienceSummary
    baseline_fct_ns: float
    faulted_fct_ns: float
    #: Average FCT of flows *starting during the gateway outage* — the
    #: per-scheme blast radius of the gateway failure, isolated from
    #: the later spine outage.
    baseline_window_fct_ns: float
    faulted_window_fct_ns: float
    gateway_failovers: int

    @property
    def availability_drop(self) -> float:
        """Absolute availability lost to the faults (lower is better)."""
        return max(0.0, self.baseline.availability - self.faulted.availability)

    @property
    def fct_degradation(self) -> float:
        """Faulted / baseline average FCT (lower is better, 1.0 = none)."""
        return _ratio(self.faulted_fct_ns, self.baseline_fct_ns)

    @property
    def gateway_window_degradation(self) -> float:
        """FCT degradation of flows born during the gateway outage."""
        return _ratio(self.faulted_window_fct_ns, self.baseline_window_fct_ns)

    @property
    def gateway_window_added_ns(self) -> float:
        """Average FCT *added* by the gateway outage (faulted - baseline).

        The absolute harm per affected flow — the headline resilience
        comparison, since the ratio form rewards a scheme for having a
        slow baseline.
        """
        return self.faulted_window_fct_ns - self.baseline_window_fct_ns


def _ratio(value: float, baseline: float) -> float:
    if baseline <= 0 or baseline != baseline:
        return float("nan")
    return value / baseline


def _window_fct_ns(collector, start_lo_ns: int, start_hi_ns: int) -> float:
    """Mean FCT of completed flows whose start falls in the window."""
    fcts = [flow.fct_ns for flow in collector.flows.values()
            if flow.fct_ns is not None
            and start_lo_ns <= flow.start_ns < start_hi_ns]
    if not fcts:
        return float("nan")
    return sum(fcts) / len(fcts)


def _place_tenants(network, spec: FatTreeSpec, num_vms: int) -> None:
    """Round-robin VMs over servers *outside* the gateway racks.

    The chaos schedule powers off a gateway rack; keeping tenants out
    of those racks (as the paper's dedicated gateway ToRs do) means the
    rack outage severs only the translation path, so the measured
    degradation is the schemes' — not collateral endpoint loss shared
    equally by all of them.
    """
    from repro.net.addresses import pip_pod, pip_rack

    gateway_racks = {(pod, spec.gateway_rack) for pod in spec.gateway_pods}
    tenant_hosts = [host for host in network.hosts
                    if (pip_pod(host.pip), pip_rack(host.pip)) not in gateway_racks]
    for vip in range(num_vms):
        network.place_vm(vip, tenant_hosts[vip % len(tenant_hosts)])


def _run_once(scheme_name: str, params: ChaosParams,
              schedule: FaultSchedule | None):
    """One run of one scheme; returns (summary, avg_fct, failovers)."""
    spec = chaos_spec()
    scheme = make_scheme(scheme_name, params.num_vms, params.cache_ratio)
    network = VirtualNetwork(NetworkConfig(spec=spec, seed=params.seed), scheme)
    _place_tenants(network, spec, params.num_vms)
    probe = ResilienceProbe(network, params.sample_period_ns)
    if schedule is not None:
        # Configure the detector before the schedule's own (idempotent)
        # enable call so the chaos timing parameters take effect.
        network.enable_gateway_failover(
            probe_interval_ns=params.probe_interval_ns,
            miss_threshold=params.miss_threshold)
        schedule.apply(network)
    player = TrafficPlayer(network, TransportConfig())
    player.add_flows(chaos_flows(params))
    network.run(until=params.horizon_ns)
    summary = probe.summarize(schedule)
    window_fct = _window_fct_ns(network.collector, params.gateway_crash_ns,
                                params.gateway_restart_ns)
    return (summary, network.collector.average_fct_ns(), window_fct,
            network.gateway_failovers)


def run_chaos_experiment(params: ChaosParams | None = None,
                         schemes: tuple[str, ...] = CHAOS_SCHEMES,
                         progress=None) -> list[ChaosRow]:
    """Run every scheme with and without the shared fault schedule.

    Args:
        progress: optional ``progress(done, total, label)`` callback,
            fired after each of the ``2 * len(schemes)`` runs (labels
            like ``"SwitchV2P/baseline"``, ``"SwitchV2P/faulted"``);
            the CLI uses it to show sweep progress.
    """
    if params is None:
        params = ChaosParams()
    rows = []
    total = 2 * len(schemes)
    done = 0
    for name in schemes:
        base_summary, base_fct, base_window, _ = _run_once(name, params, None)
        done += 1
        if progress is not None:
            progress(done, total, f"{name}/baseline")
        # A fresh schedule per run: the fired-event log is per-application.
        faulted_summary, faulted_fct, faulted_window, failovers = _run_once(
            name, params, chaos_schedule(params))
        done += 1
        if progress is not None:
            progress(done, total, f"{name}/faulted")
        rows.append(ChaosRow(scheme=name, baseline=base_summary,
                             faulted=faulted_summary,
                             baseline_fct_ns=base_fct,
                             faulted_fct_ns=faulted_fct,
                             baseline_window_fct_ns=base_window,
                             faulted_window_fct_ns=faulted_window,
                             gateway_failovers=failovers))
    return rows


def render_chaos_table(rows: list[ChaosRow]) -> str:
    """The committed results table (benchmarks/results)."""
    headers = ["scheme", "avail base", "avail faulted", "avail drop",
               "fct base (us)", "fct faulted (us)", "fct degr",
               "gw-window added (us)", "gw-window fct degr",
               "hit before", "hit during", "hit after",
               "recover (us)", "gw drops", "failed flows"]
    table_rows = []
    for row in rows:
        recover = row.faulted.time_to_recover_ns
        table_rows.append([
            row.scheme,
            row.baseline.availability,
            row.faulted.availability,
            row.availability_drop,
            row.baseline_fct_ns / 1_000,
            row.faulted_fct_ns / 1_000,
            row.fct_degradation,
            row.gateway_window_added_ns / 1_000,
            row.gateway_window_degradation,
            row.faulted.before.mean_hit_rate,
            row.faulted.during.mean_hit_rate,
            row.faulted.after.mean_hit_rate,
            recover / 1_000 if recover is not None else "never",
            row.faulted.gateway_crash_drops
            + row.faulted.gateway_unavailable_drops,
            row.faulted.failed_flows,
        ])
    return render_table(headers, table_rows,
                        title="Chaos experiment: gateway + spine outages "
                              "(identical fault schedule per scheme)")
