"""Analytical Tofino resource model for the P4 prototype (Table 6).

The paper validates feasibility by prototyping SwitchV2P in P4 for
Intel Tofino and reporting average per-stage resource utilization.  We
cannot run P4 Studio here, so this module reproduces Table 6 with an
explicit accounting model of the prototype's design:

* the cache is three register arrays (keys, values, access bits), so
  SRAM and hash-bit usage grow linearly with the per-switch entry
  count — the only resources the paper notes scale with cache size;
* everything else (match crossbars for header fields, the stateful
  meter ALUs driving the three register arrays, gateway/branch logic,
  VLIW instructions, TCAM for role/port tables) is fixed protocol
  logic, independent of cache size.

The fixed terms and the two slopes are calibrated so the paper's 50%
configuration (5,120 entries per switch for the 10K-VIP experiments)
reproduces Table 6 exactly; other cache sizes then follow the model.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Entries per switch in the paper's Table 6 configuration: 50% of the
#: 10K VIP address space per switch.
TABLE6_ENTRIES_PER_SWITCH = 5_120

#: Cache entry width in register bits: 32-bit key + 32-bit value + the
#: access bit.
ENTRY_BITS = 32 + 32 + 1


@dataclass(frozen=True)
class ResourceModel:
    """One pipeline resource: fixed protocol cost + per-entry slope."""

    name: str
    base_percent: float
    per_entry_percent: float = 0.0

    def utilization(self, entries_per_switch: int) -> float:
        return self.base_percent + self.per_entry_percent * entries_per_switch


#: Calibrated to Table 6 at 5,120 entries/switch.  SRAM: 0.9 of the
#: 3.9% is cache storage at that size; hash bits: 1.2 of 4.7%.
TOFINO_RESOURCES: tuple[ResourceModel, ...] = (
    ResourceModel("Match Crossbar", 7.2),
    ResourceModel("Meter ALU", 17.5),
    ResourceModel("Gateway", 25.0),
    ResourceModel("SRAM", 3.0, 0.9 / TABLE6_ENTRIES_PER_SWITCH),
    ResourceModel("TCAM", 1.7),
    ResourceModel("VLIW Instruction", 10.0),
    ResourceModel("Hash Bits", 3.5, 1.2 / TABLE6_ENTRIES_PER_SWITCH),
)


def estimate_utilization(entries_per_switch: int) -> dict[str, float]:
    """Average per-stage utilization (%) for a given cache size.

    Raises:
        ValueError: on a negative entry count.
    """
    if entries_per_switch < 0:
        raise ValueError(f"negative entry count: {entries_per_switch}")
    return {res.name: res.utilization(entries_per_switch)
            for res in TOFINO_RESOURCES}


def fits_pipeline(entries_per_switch: int, headroom_percent: float = 100.0) -> bool:
    """Whether the design fits (every resource under ``headroom_percent``)."""
    return all(util <= headroom_percent
               for util in estimate_utilization(entries_per_switch).values())


def max_entries(headroom_percent: float = 100.0) -> int:
    """Largest per-switch cache before some resource exceeds headroom.

    Only SRAM and hash bits scale, so the bound comes from whichever
    hits the ceiling first; with Table 6's slopes this lands in the
    hundreds of thousands of entries, consistent with Bluebird's
    observation that a switch can hold ~192K entries.
    """
    best = None
    for res in TOFINO_RESOURCES:
        if res.per_entry_percent <= 0:
            continue
        limit = int((headroom_percent - res.base_percent) / res.per_entry_percent)
        best = limit if best is None else min(best, limit)
    if best is None:
        raise RuntimeError("no scaling resource found")
    return best


def register_bits(entries_per_switch: int) -> int:
    """Raw register bits consumed by the three cache arrays."""
    if entries_per_switch < 0:
        raise ValueError(f"negative entry count: {entries_per_switch}")
    return entries_per_switch * ENTRY_BITS
