"""Hardware feasibility models (Tofino pipeline accounting, Table 6)."""

from repro.hw.pipeline import (
    SWITCHV2P_OPERATIONS,
    Pipeline,
    PipelineError,
    RegisterArray,
    build_switchv2p_pipeline,
    max_entries_per_stage,
    validate_feasibility,
)
from repro.hw.tofino import (
    ENTRY_BITS,
    TABLE6_ENTRIES_PER_SWITCH,
    TOFINO_RESOURCES,
    ResourceModel,
    estimate_utilization,
    fits_pipeline,
    max_entries,
    register_bits,
)

__all__ = [
    "ResourceModel",
    "TOFINO_RESOURCES",
    "TABLE6_ENTRIES_PER_SWITCH",
    "ENTRY_BITS",
    "estimate_utilization",
    "fits_pipeline",
    "max_entries",
    "register_bits",
    "Pipeline",
    "PipelineError",
    "RegisterArray",
    "SWITCHV2P_OPERATIONS",
    "build_switchv2p_pipeline",
    "validate_feasibility",
    "max_entries_per_stage",
]
