"""Behavioral model of the SwitchV2P Tofino pipeline (paper §3.4).

The paper validates feasibility with a P4 prototype: the cache is three
register arrays (keys, values, access bits), and the implementation
"does not require packet recirculation, mirroring, or multicast",
except that mirroring generates invalidation and learning packets.
This module makes those claims checkable: it lays the prototype's
tables and register arrays onto a Tofino-like staged pipeline and
executes packet *operation descriptors* through it, enforcing the
architectural constraints a real RMT switch imposes:

* a register array lives entirely in one stage;
* a packet performs at most one read-modify-write per array;
* stage order is one-directional — an operation sequence that needs an
  earlier stage after a later one would require recirculation;
* per-stage stateful-ALU and SRAM budgets are bounded.

`build_switchv2p_pipeline` encodes the actual protocol datapath (tag
check -> spill pickup -> key lookup -> value access -> access bit ->
promotion/learning decisions) and the tests verify every SwitchV2P
operation completes in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Tofino-1-like envelope: 12 match-action stages, 4 stateful ALUs per
#: stage, ~128 KB of register-usable SRAM per stage per pipe.
DEFAULT_STAGES = 12
DEFAULT_ALUS_PER_STAGE = 4
DEFAULT_REGISTER_KB_PER_STAGE = 128


class PipelineError(ValueError):
    """Raised when a layout or an execution violates RMT constraints."""


@dataclass(frozen=True)
class RegisterArray:
    """A stateful register array pinned to one pipeline stage."""

    name: str
    stage: int
    entries: int
    bits_per_entry: int

    @property
    def kilobytes(self) -> float:
        return self.entries * self.bits_per_entry / 8 / 1024


@dataclass
class Pipeline:
    """A staged pipeline holding register arrays under Tofino limits."""

    stages: int = DEFAULT_STAGES
    alus_per_stage: int = DEFAULT_ALUS_PER_STAGE
    register_kb_per_stage: float = DEFAULT_REGISTER_KB_PER_STAGE
    arrays: dict[str, RegisterArray] = field(default_factory=dict)

    def add_array(self, array: RegisterArray) -> None:
        if array.name in self.arrays:
            raise PipelineError(f"duplicate array {array.name!r}")
        if not 0 <= array.stage < self.stages:
            raise PipelineError(
                f"array {array.name!r} placed on stage {array.stage}, "
                f"pipeline has {self.stages}")
        self.arrays[array.name] = array
        self._check_stage(array.stage)

    def _check_stage(self, stage: int) -> None:
        residents = [a for a in self.arrays.values() if a.stage == stage]
        if len(residents) > self.alus_per_stage:
            raise PipelineError(
                f"stage {stage} hosts {len(residents)} register arrays, "
                f"limit is {self.alus_per_stage} stateful ALUs")
        total_kb = sum(a.kilobytes for a in residents)
        if total_kb > self.register_kb_per_stage:
            raise PipelineError(
                f"stage {stage} register SRAM {total_kb:.1f} KB exceeds "
                f"{self.register_kb_per_stage} KB")

    # ------------------------------------------------------------------
    def execute(self, accesses: list[str]) -> list[tuple[int, str]]:
        """Run one packet's register-access sequence through the pipe.

        Args:
            accesses: array names in the order the program touches them.

        Returns:
            The ``(stage, array)`` trace.

        Raises:
            PipelineError: if an array is touched twice (one RMW per
                array per pass) or out of stage order (would require
                recirculation).
        """
        trace: list[tuple[int, str]] = []
        current_stage = -1
        touched: set[str] = set()
        for name in accesses:
            array = self.arrays.get(name)
            if array is None:
                raise PipelineError(f"unknown register array {name!r}")
            if name in touched:
                raise PipelineError(
                    f"array {name!r} accessed twice in one pass "
                    "(registers allow one read-modify-write per packet)")
            if array.stage < current_stage:
                raise PipelineError(
                    f"array {name!r} on stage {array.stage} needed after "
                    f"stage {current_stage}: requires recirculation")
            touched.add(name)
            current_stage = array.stage
            trace.append((array.stage, name))
        return trace


# ----------------------------------------------------------------------
# The SwitchV2P prototype layout
# ----------------------------------------------------------------------
#: Register-access sequences for each protocol operation.  Every list
#: must execute in a single pipeline pass (asserted by tests) — the
#: paper's "no recirculation" claim.  Learning/invalidation *packet
#: generation* is not listed: it uses the mirroring engine (§3.4).
SWITCHV2P_OPERATIONS: dict[str, list[str]] = {
    # Unresolved packet: check the line, read value, update A bit.
    "lookup_hit": ["cache_keys", "cache_values", "cache_abits"],
    "lookup_miss": ["cache_keys", "cache_abits"],
    # Learning writes key+value and clears the A bit.
    "destination_learn": ["cache_keys", "cache_values", "cache_abits"],
    "source_learn": ["cache_keys", "cache_values", "cache_abits"],
    # Spill pickup behaves like a learn on the carried entry.
    "spill_pickup": ["cache_keys", "cache_values", "cache_abits"],
    # Promotion admission at cores: conditional learn.
    "promotion_admit": ["cache_keys", "cache_values", "cache_abits"],
    # Invalidation: compare key, clear it.
    "invalidate": ["cache_keys", "cache_abits"],
    # ToR timestamp vector check before generating an invalidation.
    "timestamp_gate": ["timestamp_vector"],
}


def build_switchv2p_pipeline(entries_per_switch: int,
                             num_switches_in_topology: int = 80) -> Pipeline:
    """Lay the SwitchV2P prototype onto a Tofino-like pipeline.

    The three cache arrays occupy consecutive stages (the value and
    access-bit arrays must come at or after the key compare); the
    timestamp vector (one 32-bit slot per switch in the topology, §3.3)
    sits in a later stage, after the role/tag logic has decided whether
    an invalidation is needed.
    """
    if entries_per_switch < 0:
        raise PipelineError("negative cache size")
    pipeline = Pipeline()
    pipeline.add_array(RegisterArray("cache_keys", stage=2,
                                     entries=entries_per_switch,
                                     bits_per_entry=32))
    pipeline.add_array(RegisterArray("cache_values", stage=3,
                                     entries=entries_per_switch,
                                     bits_per_entry=32))
    pipeline.add_array(RegisterArray("cache_abits", stage=4,
                                     entries=entries_per_switch,
                                     bits_per_entry=1))
    pipeline.add_array(RegisterArray("timestamp_vector", stage=5,
                                     entries=num_switches_in_topology,
                                     bits_per_entry=32))
    return pipeline


def validate_feasibility(entries_per_switch: int,
                         num_switches_in_topology: int = 80) -> dict[str, list]:
    """Check every SwitchV2P operation fits in one pipeline pass.

    Returns:
        Operation name -> (stage, array) trace.

    Raises:
        PipelineError: if the configuration does not fit.
    """
    pipeline = build_switchv2p_pipeline(entries_per_switch,
                                        num_switches_in_topology)
    return {operation: pipeline.execute(accesses)
            for operation, accesses in SWITCHV2P_OPERATIONS.items()}


def max_entries_per_stage(register_kb_per_stage: float = DEFAULT_REGISTER_KB_PER_STAGE,
                          bits_per_entry: int = 32) -> int:
    """Entries one stage can hold — bounds the per-switch cache size."""
    return int(register_kb_per_stage * 1024 * 8 // bits_per_entry)
