"""Tests for fat-tree construction, wiring, and switch-path computation."""

import pytest

from repro.net.addresses import make_pip
from repro.net.node import Layer, Node
from repro.net.topology import Fabric, FatTreeSpec
from repro.sim.engine import Engine

from conftest import tiny_spec


class Stub(Node):
    def receive(self, packet, link=None):
        pass


def build(spec=None):
    return Fabric(Engine(), spec if spec is not None else tiny_spec())


def test_ft8_matches_table3_counts():
    spec = FatTreeSpec()  # the paper's FT8-10K
    fabric = Fabric(Engine(), spec)
    assert len(fabric.tors) == 32
    assert len(fabric.spines) == 32
    assert len(fabric.cores) == 16
    assert len(fabric.switches) == 80
    assert spec.num_servers == 128
    assert spec.num_gateways == 40


def test_switch_ids_unique_and_indexed():
    fabric = build()
    ids = [switch.switch_id for switch in fabric.switches]
    assert len(ids) == len(set(ids))
    for switch in fabric.switches:
        assert fabric.switch_by_id[switch.switch_id] is switch


def test_tor_spine_full_mesh():
    fabric = build()
    spec = fabric.spec
    for (pod, rack), tor in fabric.tors.items():
        assert len(tor.up_links) == spec.spines_per_pod
    for (pod, j), spine in fabric.spines.items():
        assert set(spine.down_links) == set(range(spec.racks_per_pod))


def test_core_groups_connect_every_pod():
    fabric = build()
    spec = fabric.spec
    for core in fabric.cores:
        assert set(core.pod_links) == set(range(spec.pods))
    group = spec.num_cores // spec.spines_per_pod
    for (pod, j), spine in fabric.spines.items():
        assert len(spine.up_links) == group


def test_host_attachment():
    fabric = build()
    host = Stub("h")
    pip, uplink = fabric.attach_host(host, 0, 1, 0)
    assert pip == make_pip(0, 1, 0)
    tor = fabric.tor_of(0, 1)
    assert pip in tor.host_links
    assert pip in tor.attached_pips
    assert uplink.dst is tor


def test_duplicate_host_slot_rejected():
    fabric = build()
    fabric.attach_host(Stub("a"), 0, 0, 0)
    with pytest.raises(ValueError):
        fabric.attach_host(Stub("b"), 0, 0, 0)


def test_gateway_role_sets():
    fabric = build()
    spec = fabric.spec
    gw_tors = fabric.gateway_tor_ids()
    assert gw_tors == {fabric.tor_of(1, spec.gateway_rack).switch_id}
    gw_spines = fabric.gateway_spine_ids()
    assert gw_spines == {fabric.spines[(1, j)].switch_id
                         for j in range(spec.spines_per_pod)}


def _walk(path, start):
    node = start
    for link in path:
        assert link.src is node, "path links must chain"
        node = link.dst
    return node


@pytest.mark.parametrize("target_kind", ["tor_same_pod", "tor_other_pod",
                                         "spine_same_pod", "spine_other_pod",
                                         "core"])
def test_path_from_tor_reaches_target(target_kind):
    fabric = build()
    tor = fabric.tor_of(0, 0)
    targets = {
        "tor_same_pod": fabric.tor_of(0, 1),
        "tor_other_pod": fabric.tor_of(1, 0),
        "spine_same_pod": fabric.spines[(0, 1)],
        "spine_other_pod": fabric.spines[(1, 0)],
        "core": fabric.cores[1],
    }
    target = targets[target_kind]
    path = fabric.path_from_tor(tor, target, key=12345)
    assert path, "nonempty path expected"
    assert _walk(path, tor) is target


def test_path_to_self_is_empty():
    fabric = build()
    tor = fabric.tor_of(0, 0)
    assert fabric.path_from_tor(tor, tor, key=1) == []


def test_path_from_non_tor_rejected():
    fabric = build()
    with pytest.raises(ValueError):
        fabric.path_from_tor(fabric.cores[0], fabric.tor_of(0, 0), key=1)


def test_spec_validation():
    with pytest.raises(ValueError):
        FatTreeSpec(pods=0)
    with pytest.raises(ValueError):
        FatTreeSpec(num_cores=5, spines_per_pod=4)
    with pytest.raises(ValueError):
        FatTreeSpec(pods=4, gateway_pods=(7,))


def test_spec_derived_quantities():
    spec = tiny_spec()
    assert spec.num_servers == 8
    assert spec.num_switches == 2 * (2 + 2) + 2
    assert spec.gateway_rack == 1
