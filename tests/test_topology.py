"""Tests for fat-tree construction, wiring, and switch-path computation."""

import pytest

from repro.net.addresses import make_pip
from repro.net.node import Layer, Node
from repro.net.topology import Fabric, FatTreeSpec
from repro.sim.engine import Engine

from conftest import tiny_spec


class Stub(Node):
    def receive(self, packet, link=None):
        pass


def build(spec=None):
    return Fabric(Engine(), spec if spec is not None else tiny_spec())


def test_ft8_matches_table3_counts():
    spec = FatTreeSpec()  # the paper's FT8-10K
    fabric = Fabric(Engine(), spec)
    assert len(fabric.tors) == 32
    assert len(fabric.spines) == 32
    assert len(fabric.cores) == 16
    assert len(fabric.switches) == 80
    assert spec.num_servers == 128
    assert spec.num_gateways == 40


def test_switch_ids_unique_and_indexed():
    fabric = build()
    ids = [switch.switch_id for switch in fabric.switches]
    assert len(ids) == len(set(ids))
    for switch in fabric.switches:
        assert fabric.switch_by_id[switch.switch_id] is switch


def test_tor_spine_full_mesh():
    fabric = build()
    fabric.ensure_wired()
    spec = fabric.spec
    for (pod, rack), tor in fabric.tors.items():
        assert len(tor.up_links) == spec.spines_per_pod
    for (pod, j), spine in fabric.spines.items():
        assert len(spine.down_links) == spec.racks_per_pod
        for rack, link in enumerate(spine.down_links):
            assert link.dst is fabric.tor_of(pod, rack)


def test_core_groups_connect_every_pod():
    fabric = build()
    fabric.ensure_wired()
    spec = fabric.spec
    for core in fabric.cores:
        assert len(core.pod_links) == spec.pods
        assert all(link is not None for link in core.pod_links)
    group = spec.num_cores // spec.spines_per_pod
    for (pod, j), spine in fabric.spines.items():
        assert len(spine.up_links) == group


def test_host_attachment():
    fabric = build()
    host = Stub("h")
    pip, uplink = fabric.attach_host(host, 0, 1, 0)
    assert pip == make_pip(0, 1, 0)
    tor = fabric.tor_of(0, 1)
    assert pip in tor.host_links
    assert pip in tor.attached_pips
    assert uplink.dst is tor


def test_duplicate_host_slot_rejected():
    fabric = build()
    fabric.attach_host(Stub("a"), 0, 0, 0)
    with pytest.raises(ValueError):
        fabric.attach_host(Stub("b"), 0, 0, 0)


def test_gateway_role_sets():
    fabric = build()
    spec = fabric.spec
    gw_tors = fabric.gateway_tor_ids()
    assert gw_tors == {fabric.tor_of(1, spec.gateway_rack).switch_id}
    gw_spines = fabric.gateway_spine_ids()
    assert gw_spines == {fabric.spines[(1, j)].switch_id
                         for j in range(spec.spines_per_pod)}


def _walk(path, start):
    node = start
    for link in path:
        assert link.src is node, "path links must chain"
        node = link.dst
    return node


@pytest.mark.parametrize("target_kind", ["tor_same_pod", "tor_other_pod",
                                         "spine_same_pod", "spine_other_pod",
                                         "core"])
def test_path_from_tor_reaches_target(target_kind):
    fabric = build()
    tor = fabric.tor_of(0, 0)
    targets = {
        "tor_same_pod": fabric.tor_of(0, 1),
        "tor_other_pod": fabric.tor_of(1, 0),
        "spine_same_pod": fabric.spines[(0, 1)],
        "spine_other_pod": fabric.spines[(1, 0)],
        "core": fabric.cores[1],
    }
    target = targets[target_kind]
    path = fabric.path_from_tor(tor, target, key=12345)
    assert path, "nonempty path expected"
    assert _walk(path, tor) is target


def test_path_to_self_is_empty():
    fabric = build()
    tor = fabric.tor_of(0, 0)
    assert fabric.path_from_tor(tor, tor, key=1) == []


def test_path_from_non_tor_rejected():
    fabric = build()
    with pytest.raises(ValueError):
        fabric.path_from_tor(fabric.cores[0], fabric.tor_of(0, 0), key=1)


def test_spec_validation():
    with pytest.raises(ValueError):
        FatTreeSpec(pods=0)
    with pytest.raises(ValueError):
        FatTreeSpec(num_cores=5, spines_per_pod=4)
    with pytest.raises(ValueError):
        FatTreeSpec(pods=4, gateway_pods=(7,))


def test_spec_derived_quantities():
    spec = tiny_spec()
    assert spec.num_servers == 8
    assert spec.num_switches == 2 * (2 + 2) + 2
    assert spec.gateway_rack == 1


def ft32_spec():
    """The k=32-class fabric the scale benchmarks run on."""
    return FatTreeSpec(pods=32, racks_per_pod=16, servers_per_rack=16,
                       spines_per_pod=16, num_cores=256,
                       gateway_pods=tuple(range(0, 32, 2)),
                       gateways_per_pod=4)


def test_ft32_structural_invariants():
    spec = ft32_spec()
    assert spec.num_servers == 8192
    assert spec.num_switches == 1280
    fabric = Fabric(Engine(), spec)
    assert len(fabric.tors) == 32 * 16
    assert len(fabric.spines) == 32 * 16
    assert len(fabric.cores) == 256
    assert len(fabric.switches) == 1280
    # Lazy wiring: construction allocates no cables at all.
    assert fabric._switch_links == {}
    assert all(not tor.up_links for tor in fabric.tors.values())
    # Attaching one host wires exactly its pod: the full ToR<->spine
    # mesh plus each spine's core group, both directions.
    fabric.attach_host(Stub("h"), 3, 5, 0)
    assert fabric._wired_pods == {3}
    group = spec.num_cores // spec.spines_per_pod
    cables = (spec.racks_per_pod * spec.spines_per_pod
              + spec.spines_per_pod * group)
    assert len(fabric._switch_links) == 2 * cables
    for rack in range(spec.racks_per_pod):
        assert len(fabric.tor_of(3, rack).up_links) == spec.spines_per_pod
    for j in range(spec.spines_per_pod):
        spine = fabric.spines[(3, j)]
        assert len(spine.up_links) == group  # ECMP group size
        assert all(link is not None for link in spine.down_links)
    for core in fabric.cores:
        assert core.pod_links[3] is not None
        assert all(core.pod_links[pod] is None
                   for pod in range(spec.pods) if pod != 3)
    # Pod symmetry: every further pod adds an identical cable count.
    fabric.attach_host(Stub("g"), 17, 0, 2)
    assert fabric._wired_pods == {3, 17}
    assert len(fabric._switch_links) == 4 * cables


@pytest.mark.parametrize("spec_factory", [tiny_spec, FatTreeSpec])
def test_lazy_build_matches_eager_golden_shapes(spec_factory):
    """Lazily-wired fabrics converge to the eager golden shape."""
    eager = Fabric(Engine(), spec_factory())
    eager.ensure_wired()
    lazy = Fabric(Engine(), spec_factory())
    # Touch pods out of order through the public entry points first so
    # the final shape cannot depend on wiring order.
    lazy.link_between(lazy.tor_of(1, 0), lazy.spines[(1, 1)])
    lazy.attach_host(Stub("h"), 0, 0, 0)
    lazy.ensure_wired()
    assert set(lazy._switch_links) == set(eager._switch_links)
    for (a, b), link in lazy._switch_links.items():
        assert link.src.switch_id == a
        assert link.dst.switch_id == b
        twin = eager._switch_links[(a, b)]
        assert (link.src.name, link.dst.name) == (twin.src.name,
                                                  twin.dst.name)
    for key, tor in lazy.tors.items():
        assert len(tor.up_links) == len(eager.tors[key].up_links)
    for key, spine in lazy.spines.items():
        golden = eager.spines[key]
        assert [link.dst.name for link in spine.down_links] == \
            [link.dst.name for link in golden.down_links]
        assert [link.dst.name for link in spine.up_links] == \
            [link.dst.name for link in golden.up_links]
    for core, golden in zip(lazy.cores, eager.cores):
        assert [None if link is None else link.dst.name
                for link in core.pod_links] == \
            [None if link is None else link.dst.name
             for link in golden.pod_links]
