"""Self-healing mapping plane tests: gray detection, audit, staleness.

Covers the gray (EWMA) half of the gateway failure detector — brownout
detection, hysteresis reinstatement, dwell gating against flapping —
the :class:`repro.core.AntiEntropyAuditor` cache-vs-database sweep, the
negative cache's re-install hold-down, per-VIP generation stamps, the
``corrupt_entry`` fault-injection contract of both cache classes, and
the bounded-staleness runtime oracle end to end.
"""

import pytest

from repro.baselines import NoCache
from repro.cache.direct_mapped import DirectMappedCache
from repro.cache.set_associative import SetAssociativeCache
from repro.core import AntiEntropyAuditor, SwitchV2P, SwitchV2PConfig
from repro.faults import FaultSchedule, OracleSuite
from repro.sim.engine import msec, usec
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.vnet.mapping import MappingDatabase

from conftest import small_network


def steady_flows(count=8, dst=5, span_ns=usec(200)):
    return [FlowSpec(src_vip=0, dst_vip=dst, size_bytes=5_000,
                     start_ns=i * span_ns) for i in range(count)]


# ----------------------------------------------------------------------
# gray (EWMA) gateway detection
# ----------------------------------------------------------------------
def _gray_network(**detector_kwargs):
    network = small_network(NoCache(), num_vms=8)
    detector_kwargs.setdefault("probe_interval_ns", usec(100))
    detector = network.enable_gateway_failover(**detector_kwargs)
    return network, network.gateways[0], detector


def test_gray_detector_fails_out_browned_gateway():
    network, gateway, detector = _gray_network(gray_loss_threshold=0.2)
    network.engine.schedule(usec(50), network.set_gateway_brownout,
                            gateway, 0.6, 0)
    network.run(until=msec(1))
    # The gateway never crashed, so the binary detector saw nothing;
    # only the shed-rate EWMA failed it out of the pool.
    assert detector.detections == 0
    assert detector.gray_detections == 1
    assert gateway not in network.live_gateways
    # Heal the brownout: the EWMA decays below half the threshold and
    # (dwell 0) the gateway is reinstated.
    network.engine.schedule(msec(1) + usec(10), network.set_gateway_brownout,
                            gateway, 0.0, 0)
    network.run(until=msec(3))
    assert detector.gray_reinstatements == 1
    assert gateway in network.live_gateways


def test_gray_detector_latency_threshold():
    network, gateway, detector = _gray_network(
        gray_latency_threshold_ns=gateway_latency_threshold())
    network.engine.schedule(usec(50), network.set_gateway_brownout,
                            gateway, 0.0, usec(300))
    network.run(until=msec(1))
    assert detector.gray_detections == 1
    assert gateway not in network.live_gateways
    network.engine.schedule(msec(1) + usec(10), network.set_gateway_brownout,
                            gateway, 0.0, 0)
    network.run(until=msec(3))
    assert detector.gray_reinstatements == 1
    assert gateway in network.live_gateways


def gateway_latency_threshold():
    """Threshold above the healthy 40us service time, below 40+300us."""
    return usec(140)


def test_gray_reinstatement_waits_for_dwell():
    network, gateway, detector = _gray_network(
        gray_loss_threshold=0.2, reinstate_dwell_ns=msec(1))
    network.engine.schedule(usec(50), network.set_gateway_brownout,
                            gateway, 0.6, 0)
    network.engine.schedule(msec(1), network.set_gateway_brownout,
                            gateway, 0.0, 0)
    # By 2 ms the EWMA is long below half the threshold, but the dwell
    # clock (1 ms since the last over-threshold sample) has not run out.
    network.run(until=msec(2))
    assert detector.gray_detections == 1
    assert detector.gray_reinstatements == 0
    assert gateway not in network.live_gateways
    network.run(until=msec(4))
    assert detector.gray_reinstatements == 1
    assert gateway in network.live_gateways


def test_gray_flapping_gateway_does_not_thrash_pool():
    """A brownout oscillating faster than the EWMA can clear must fail
    the gateway out exactly once and never bounce it back mid-flap."""
    network, gateway, detector = _gray_network(
        gray_loss_threshold=0.2, reinstate_dwell_ns=msec(1))
    # Toggle the brownout every 150us for 3ms: 10 on/off cycles.
    for cycle in range(10):
        network.engine.schedule(usec(50) + cycle * usec(300),
                                network.set_gateway_brownout, gateway, 0.6, 0)
        network.engine.schedule(usec(200) + cycle * usec(300),
                                network.set_gateway_brownout, gateway, 0.0, 0)
    network.run(until=usec(50) + 10 * usec(300))
    assert detector.gray_detections == 1
    assert detector.gray_reinstatements == 0
    assert gateway not in network.live_gateways
    # Sustained health after the flapping: reinstated exactly once.
    network.run(until=msec(6))
    assert detector.gray_reinstatements == 1
    assert gateway in network.live_gateways


def test_binary_dwell_blocks_flap_miss_resets():
    """Regression: a gateway crash-flapping faster than the miss
    threshold accumulates must still be detected when the dwell stops
    healthy probes from resetting the miss count."""
    def run_flaps(dwell_ns):
        network = small_network(NoCache(), num_vms=8)
        detector = network.enable_gateway_failover(
            probe_interval_ns=usec(100), backoff_base_ns=usec(100),
            miss_threshold=3, reinstate_dwell_ns=dwell_ns)
        gateway = network.gateways[0]
        # Down 300us, up 100us, repeatedly: a healthy probe always
        # lands before three consecutive misses accumulate.
        for cycle in range(5):
            network.engine.schedule(usec(50) + cycle * usec(400),
                                    gateway.fail)
            network.engine.schedule(usec(350) + cycle * usec(400),
                                    gateway.recover)
        network.run(until=msec(2))
        return network, detector, gateway

    network, detector, gateway = run_flaps(dwell_ns=msec(1))
    assert detector.detections == 1
    assert gateway not in network.live_gateways
    # Without the dwell, every brief recovery resets the miss count and
    # the flapping gateway is never failed over — the thrash this
    # hysteresis exists to prevent.
    _, blind, _ = run_flaps(dwell_ns=0)
    assert blind.detections == 0
    # After the flapping stops for good, the dwell detector reinstates.
    network.engine.schedule(network.engine.now + usec(10), gateway.recover)
    network.run(until=msec(5))
    assert detector.reinstatements == 1
    assert gateway in network.live_gateways


def test_detector_gray_kwargs_validated():
    network = small_network(NoCache(), num_vms=8)
    with pytest.raises(ValueError):
        network.enable_gateway_failover(gray_loss_threshold=1.5)
    other = small_network(NoCache(), num_vms=8)
    with pytest.raises(ValueError):
        other.enable_gateway_failover(reinstate_dwell_ns=-1)
    third = small_network(NoCache(), num_vms=8)
    with pytest.raises(ValueError):
        third.enable_gateway_failover(ewma_alpha=0.0)


# ----------------------------------------------------------------------
# corrupt_entry: the fault-injection contract of both cache classes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make_cache", [
    lambda: DirectMappedCache(64),
    lambda: SetAssociativeCache(64, ways=4),
], ids=["direct-mapped", "set-associative"])
def test_corrupt_entry_contract(make_cache):
    cache = make_cache()
    assert cache.corrupt_entry(0, 5) is None  # empty: logged no-op
    cache.insert(3, 0b1000)
    vip, old_pip, new_pip = cache.corrupt_entry(0, 1)
    assert (vip, old_pip, new_pip) == (3, 0b1000, 0b1010)
    assert cache.peek(3) == new_pip
    # The ordinal wraps modulo occupancy, so any schedule stays valid.
    vip2, old2, new2 = cache.corrupt_entry(7, 1)
    assert vip2 == 3 and old2 == new_pip and new2 == old_pip


@pytest.mark.parametrize("make_cache", [
    lambda: DirectMappedCache(64),
    lambda: SetAssociativeCache(64, ways=4),
], ids=["direct-mapped", "set-associative"])
def test_corrupt_entry_fires_mutation_observer(make_cache):
    cache = make_cache()
    cache.insert(3, 99)
    fired = []
    cache.on_mutate = lambda: fired.append(True)
    cache.corrupt_entry(0, 0)
    assert fired  # the hybrid engine must see silent state changes


# ----------------------------------------------------------------------
# anti-entropy audit
# ----------------------------------------------------------------------
def _warm_network():
    scheme = SwitchV2P(total_cache_slots=400)
    network = small_network(scheme, num_vms=8)
    player = TrafficPlayer(network)
    player.add_flows(steady_flows(4))
    network.run(until=msec(5))
    victim = next(switch for switch in network.fabric.switches
                  if scheme.cache_of(switch) is not None
                  and scheme.cache_of(switch).occupancy() > 0)
    return network, scheme, victim


def test_audit_once_repairs_only_divergent_entries():
    network, scheme, victim = _warm_network()
    cache = scheme.cache_of(victim)
    auditor = AntiEntropyAuditor(network, usec(500))
    assert auditor.audit_once() == 0  # coherent caches: nothing to do
    vip, _old, bad_pip = cache.corrupt_entry(0, 20)
    assert auditor.audit_once() == 1
    assert cache.peek(vip) != bad_pip  # invalidated, not resurrected
    assert auditor.repairs == 1
    assert auditor.entries_checked > 0


def test_periodic_audit_repairs_within_one_period():
    network, scheme, victim = _warm_network()
    cache = scheme.cache_of(victim)
    auditor = network.enable_anti_entropy(usec(500),
                                          staleness_bound_ns=usec(500))
    vip, _old, bad_pip = cache.corrupt_entry(0, 20)
    network.engine.run(until=network.engine.now + usec(600))
    assert auditor.sweeps >= 1
    assert auditor.repairs >= 1
    assert cache.peek(vip) != bad_pip
    # Idempotent: a second enable returns the running auditor.
    assert network.enable_anti_entropy(usec(500)) is auditor


def test_audit_validation_and_stop():
    network, _scheme, _victim = _warm_network()
    with pytest.raises(ValueError):
        AntiEntropyAuditor(network, 0)
    with pytest.raises(ValueError):
        # A sweep cannot promise a bound tighter than its own period.
        AntiEntropyAuditor(network, usec(500), staleness_bound_ns=usec(100))
    auditor = AntiEntropyAuditor(network, usec(500))
    auditor.start()
    auditor.stop()
    sweeps = auditor.sweeps
    network.engine.run(until=network.engine.now + msec(2))
    assert auditor.sweeps == sweeps  # stopped means stopped


# ----------------------------------------------------------------------
# negative caching and generation stamps
# ----------------------------------------------------------------------
def test_negative_cache_blocks_and_expires():
    scheme = SwitchV2P(total_cache_slots=400,
                       config=SwitchV2PConfig(negative_ttl_ns=usec(500)))
    network = small_network(scheme, num_vms=8)
    # The hold-down window reads the live clock, which the fluid fast
    # path cannot replay: enabling the feature opts out of fluid.
    assert scheme.fluid_compatible is False
    scheme._note_negative(3, 12345)
    assert scheme._negative_blocks(3, 12345)
    assert scheme.negative_blocks == 1
    assert not scheme._negative_blocks(3, 54321)  # other PIPs unaffected
    network.engine.schedule(usec(600), lambda: None)
    network.engine.run(until=usec(600))
    assert not scheme._negative_blocks(3, 12345)  # expired
    assert (3, 12345) not in scheme._negative  # and pruned


def test_negative_ttl_off_keeps_fluid_compatibility():
    scheme = SwitchV2P(total_cache_slots=400)
    assert scheme.fluid_compatible
    scheme._note_negative(3, 12345)  # no TTL: a no-op
    assert not scheme._negative


def test_mapping_generation_stamps():
    db = MappingDatabase()
    assert db.generation(5) == 0
    db.set(5, 111)
    assert db.generation(5) == 1
    db.set(5, 222)  # migration: same VIP, new PIP
    assert db.generation(5) == 2
    db.remove(5)  # retirement also advances the generation
    assert db.generation(5) == 3
    assert db.generation(6) == 0  # untouched VIPs stay at zero


# ----------------------------------------------------------------------
# the bounded-staleness oracle end to end
# ----------------------------------------------------------------------
def _staleness_run(with_audit):
    scheme = SwitchV2P(total_cache_slots=400)
    network = small_network(scheme, num_vms=8)
    suite = OracleSuite(network)
    player = TrafficPlayer(network)
    player.add_flows(steady_flows(4))
    # Corrupt a warmed ToR line at 4ms; nothing in the schedule ever
    # heals it, so only the audit can.  Bit 20 lands in the rack field,
    # making the PIP point at a nonexistent rack.
    schedule = FaultSchedule().flip_cache_bit(msec(4), "tor", (0, 0),
                                              entry=0, bit=20)
    schedule.apply(network)
    suite.watch_schedule(schedule)
    if with_audit:
        network.enable_anti_entropy(usec(500), staleness_bound_ns=msec(1))
    suite.configure_staleness(msec(1), audit_period_ns=usec(500),
                              check_interval_ns=usec(250))
    network.run(until=msec(8))
    suite.finish(msec(8))
    assert schedule.corruptions, "the flip must have hit a live line"
    return suite.violations


def test_staleness_oracle_trips_without_audit():
    violations = _staleness_run(with_audit=False)
    assert any(v.oracle == "bounded-staleness" for v in violations)
    # The injected corruption itself is exempt from the coherence
    # oracle (it is in schedule.corruptions); only its persistence
    # past the bound is a violation.
    assert not any(v.oracle == "cache-coherence" for v in violations)


def test_staleness_oracle_clean_with_audit():
    assert _staleness_run(with_audit=True) == []
