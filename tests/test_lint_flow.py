"""Tests for the whole-program flow layer (``repro.analysis.flow``).

Four groups:

* unit tests for call-graph construction and the dataflow summaries;
* the flow result cache (hit, invalidation-by-edit, kill switch);
* CLI modes (``--rule``, ``--changed``, ``--no-flow-cache``);
* mutation guards over the *real* repository sources — deleting a field
  from the run-cache key derivation, removing a cache escalation hook,
  or dropping the GC re-enable must each produce a W-finding.  These
  are the acceptance criteria the W-rules exist to enforce.
"""
from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

import repro.analysis.engine as engine_mod
from repro.analysis import LintConfig, lint_source
from repro.analysis.config import load_config
from repro.analysis.context import ModuleContext
from repro.analysis.engine import lint_paths, run_project_rules
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.dataflow import summarize_project
from repro.analysis.flow.project import ProjectContext
from repro.analysis.registry import get_rule

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def _project(config: LintConfig | None = None,
             **sources: str) -> ProjectContext:
    """Build a project from ``dotted_name=source`` keyword modules."""
    config = config or LintConfig()
    modules = []
    for dotted, source in sources.items():
        rel = Path("src", *dotted.split("."), "x").parent.with_suffix(".py")
        modules.append(ModuleContext.from_source(
            source, rel, config, module_name=dotted))
    return ProjectContext.build(modules, config)


def _repo_modules(config: LintConfig,
                  *relpaths: str,
                  edits: dict[str, tuple[str, str]] | None = None,
                  ) -> list[ModuleContext]:
    """Real repo modules, optionally with one in-memory edit applied."""
    modules = []
    for rel in relpaths:
        source = (SRC / rel).read_text(encoding="utf-8")
        if edits and rel in edits:
            old, new = edits[rel]
            assert old in source, f"edit anchor vanished from {rel}"
            source = source.replace(old, new)
        modules.append(ModuleContext.from_source(
            source, Path("src") / rel, config))
    return modules


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
def test_callgraph_resolves_imports():
    project = _project(
        util="def helper():\n    return 1\n",
        entry="from util import helper\n\ndef go():\n    return helper()\n")
    graph = CallGraph(project)
    assert graph.callees["entry.go"] == {"util.helper"}
    assert graph.callers["util.helper"] == {"entry.go"}


def test_callgraph_self_dispatch_through_base():
    project = _project(mod=(
        "class Base:\n"
        "    def ping(self):\n"
        "        return 1\n\n"
        "class Child(Base):\n"
        "    def run(self):\n"
        "        return self.ping()\n"))
    graph = CallGraph(project)
    assert graph.callees["mod.Child.run"] == {"mod.Base.ping"}


def test_callgraph_duck_typed_fallback_fans_out():
    project = _project(mod=(
        "class A:\n"
        "    def insert(self, k, v):\n"
        "        return 1\n\n"
        "class B:\n"
        "    def insert(self, k, v):\n"
        "        return 2\n\n"
        "def drive(cache):\n"
        "    cache.insert(1, 2)\n"))
    graph = CallGraph(project)
    assert graph.callees["mod.drive"] == {"mod.A.insert", "mod.B.insert"}


def test_callgraph_class_construction_edges_to_init():
    project = _project(mod=(
        "class Widget:\n"
        "    def __init__(self):\n"
        "        self.x = 1\n\n"
        "def make():\n"
        "    return Widget()\n"))
    graph = CallGraph(project)
    assert graph.callees["mod.make"] == {"mod.Widget.__init__"}


def test_reachability_crosses_modules():
    project = _project(
        a="from b import middle\n\ndef top():\n    middle()\n",
        b="from c import leaf\n\ndef middle():\n    leaf()\n",
        c="def leaf():\n    pass\n\ndef unrelated():\n    pass\n")
    graph = CallGraph(project)
    reached = graph.reachable_from(["a.top"])
    assert reached == {"a.top", "b.middle", "c.leaf"}


# ----------------------------------------------------------------------
# dataflow summaries
# ----------------------------------------------------------------------
def test_state_returning_helper_fixpoint():
    # ``entries = self._set_of(k)`` must mark later mutations through
    # ``entries`` as _sets mutations — only a summary fixpoint sees it.
    project = _project(**{"repro.fake_cache": (
        "class Cache:\n"
        "    def _set_of(self, k):\n"
        "        return self._sets[k]\n\n"
        "    def drop(self, k):\n"
        "        entries = self._set_of(k)\n"
        "        entries.pop(k, None)\n")})
    graph = CallGraph(project)
    summaries = summarize_project(project, graph)
    helper = summaries["repro.fake_cache.Cache._set_of"]
    assert helper.returns_state_attr == "_sets"
    drop = summaries["repro.fake_cache.Cache.drop"]
    assert [site.detail for site in drop.mutation_sites] == ["_sets"]


def test_aliased_observer_call_counts_as_notify():
    project = _project(**{"repro.fake_hook": (
        "class Cache:\n"
        "    def insert(self, k, v):\n"
        "        self._keys[k] = v\n"
        "        cb = self.on_mutate\n"
        "        if cb is not None:\n"
        "            cb()\n")})
    graph = CallGraph(project)
    summaries = summarize_project(project, graph)
    summary = summaries["repro.fake_hook.Cache.insert"]
    assert summary.mutation_sites and summary.notifies


def test_rng_taint_propagates_through_helper_return():
    project = _project(**{"repro.fake_rng": (
        "import numpy as np\n\n"
        "def make():\n"
        "    return np.random.default_rng()\n\n"
        "def use(n):\n"
        "    rng = make()\n"
        "    return consume(rng, n)\n\n"
        "def consume(rng, n):\n"
        "    return rng.integers(0, n)\n")})
    graph = CallGraph(project)
    summaries = summarize_project(project, graph)
    assert summaries["repro.fake_rng.make"].returns_rng is not None
    assert summaries["repro.fake_rng.use"].rng_flow_sites


def test_rng_rules_ignore_code_outside_sim_packages():
    project = _project(**{"bench.tool": (
        "import numpy as np\n\n"
        "def make():\n"
        "    return np.random.default_rng()\n")})
    graph = CallGraph(project)
    summaries = summarize_project(project, graph)
    assert summaries["bench.tool.make"].rng_sites == []


# ----------------------------------------------------------------------
# mutation guards over the real repository sources
# ----------------------------------------------------------------------
def test_dropping_fidelity_from_job_key_is_caught():
    config = load_config(REPO_ROOT / "pyproject.toml")
    paths = ("repro/experiments/parallel.py", "repro/experiments/runcache.py")
    clean = run_project_rules(
        _repo_modules(config, *paths), [get_rule("W403")], config)
    assert [f.message for f in clean if not f.suppressed] == []
    broken = run_project_rules(
        _repo_modules(config, *paths, edits={
            "repro/experiments/runcache.py": (
                "trace=job.trace, fidelity=job.fidelity)",
                "trace=job.trace)")}),
        [get_rule("W403")], config)
    assert len(broken) == 1
    assert "fidelity" in broken[0].message


def test_removing_cache_escalation_hook_is_caught():
    # Treat the observed cache's own mutators as roots so this stays a
    # two-file project instead of a full-tree walk.  The unobserved
    # base class is escalation-exempt by design (attach_observer swaps
    # instances to the observed subclass before any fluid adoption);
    # the observed overrides are what W402 must hold to the contract.
    config = replace(
        load_config(REPO_ROOT / "pyproject.toml"),
        flow_entry_points=(
            "repro.cache.set_associative._ObservedSetAssociativeCache"
            ".insert",
            "repro.cache.set_associative._ObservedSetAssociativeCache"
            ".invalidate",
            "repro.cache.set_associative._ObservedSetAssociativeCache"
            ".lookup"))
    path = "repro/cache/set_associative.py"
    clean = run_project_rules(
        _repo_modules(config, path), [get_rule("W402")], config)
    assert [f.message for f in clean if not f.suppressed] == []
    hook = ("        cb = self.on_mutate\n"
            "        if cb is not None:\n"
            "            cb()\n")
    source = (SRC / path).read_text(encoding="utf-8")
    assert source.count(hook) >= 2
    broken = run_project_rules(
        _repo_modules(config, path, edits={path: (hook, "")}),
        [get_rule("W402")], config)
    assert broken, "removing on_mutate firing must trip W402"
    assert all("escalation" in f.message or "observer" in f.message
               for f in broken)


def test_removing_gc_reenable_is_caught():
    config = load_config(REPO_ROOT / "pyproject.toml")
    path = "repro/sim/engine.py"
    clean = run_project_rules(
        _repo_modules(config, path), [get_rule("W404")], config)
    assert [f.message for f in clean if not f.suppressed] == []
    broken = run_project_rules(
        _repo_modules(config, path,
                      edits={path: ("gc.enable()", "pass")}),
        [get_rule("W404")], config)
    assert len(broken) == 1
    assert "gc.disable" in broken[0].message


def test_repo_is_clean_and_cold_pass_is_fast():
    config = load_config(REPO_ROOT / "pyproject.toml")
    start = time.perf_counter()
    result = lint_paths(None, config, root=REPO_ROOT, use_flow_cache=False)
    elapsed = time.perf_counter() - start
    assert result.ok, [f.message for f in result.unsuppressed]
    assert result.files_checked > 100
    # The whole-program pass must stay cheap enough to hard-gate CI
    # (observed ~3 s; the bound leaves slack for loaded runners).
    assert elapsed < 60.0, f"cold whole-program lint took {elapsed:.1f}s"


# ----------------------------------------------------------------------
# suppressions on project rules
# ----------------------------------------------------------------------
def test_w_rule_suppression_comment_is_honored():
    source = ("import numpy as np\n\n"
              "def make():\n"
              "    return np.random.default_rng()"
              "  # repro-lint: disable=W401\n")
    findings = lint_source(source, Path("x.py"), LintConfig(),
                           module_name="repro.fixtures.supw",
                           rules=[get_rule("W401")])
    assert len(findings) == 1
    assert findings[0].suppressed


# ----------------------------------------------------------------------
# flow result cache
# ----------------------------------------------------------------------
def test_flow_cache_hit_and_invalidation(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(cache_dir))
    monkeypatch.delenv("REPRO_LINT_CACHE", raising=False)
    proj = tmp_path / "proj"
    proj.mkdir()
    mod = proj / "m.py"
    mod.write_text("import gc\n\ndef f():\n    gc.disable()\n")
    config = LintConfig(select=("W404",))

    first = lint_paths([str(proj)], config, root=tmp_path)
    assert not first.ok
    assert len(list(cache_dir.glob("*.json"))) == 1

    # Second identical run must be served from the cache: make the
    # recompute path explode to prove it is not taken.
    def boom(*args, **kwargs):
        raise AssertionError("cache miss on unchanged sources")

    with monkeypatch.context() as context:
        context.setattr(engine_mod, "run_project_rules", boom)
        second = lint_paths([str(proj)], config, root=tmp_path)
    assert [f.as_dict() for f in second.findings] == \
        [f.as_dict() for f in first.findings]

    # Any source edit changes the key, forcing a live recompute.
    mod.write_text("import gc\n\ndef f():\n    gc.disable()\n"
                   "    gc.enable()\n")
    third = lint_paths([str(proj)], config, root=tmp_path)
    assert third.ok


def test_flow_cache_kill_switch(tmp_path, monkeypatch):
    cache_dir = tmp_path / "cache"
    monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(cache_dir))
    monkeypatch.setenv("REPRO_LINT_CACHE", "0")
    proj = tmp_path / "proj"
    proj.mkdir()
    (proj / "m.py").write_text("import gc\n\ndef f():\n    gc.disable()\n")
    lint_paths([str(proj)], LintConfig(select=("W404",)), root=tmp_path)
    assert not cache_dir.exists()


# ----------------------------------------------------------------------
# CLI: --rule, --changed, --no-flow-cache
# ----------------------------------------------------------------------
FIXTURES = Path(__file__).resolve().parent / "data" / "lint_fixtures"


def _run_cli(*argv: str, cwd: Path = REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_LINT_CACHE"] = "0"
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *argv],
        cwd=cwd, env=env, capture_output=True, text=True, check=False)


def test_cli_rule_filter_scopes_the_run():
    bad = str(FIXTURES / "bad_d102.py")
    only_flow = _run_cli(bad, "--rule", "W401")
    assert only_flow.returncode == 0, only_flow.stdout + only_flow.stderr
    only_d102 = _run_cli(bad, "--rule", "D102")
    assert only_d102.returncode == 1
    assert "D102" in only_d102.stdout


def test_cli_no_flow_cache_flag_accepted():
    proc = _run_cli(str(FIXTURES / "good_w401.py"), "--no-flow-cache",
                    "--rule", "W401")
    assert proc.returncode == 0, proc.stdout + proc.stderr


@pytest.mark.skipif(shutil.which("git") is None, reason="needs git")
def test_cli_changed_reports_only_touched_files(tmp_path):
    def git(*argv: str) -> None:
        subprocess.run(["git", "-c", "user.email=t@t", "-c", "user.name=t",
                        *argv], cwd=tmp_path, check=True,
                       capture_output=True)

    bad_source = "import random\nrandom.random()\n"
    (tmp_path / "old.py").write_text(bad_source)
    git("init", "-q")
    git("add", "old.py")
    git("commit", "-qm", "seed")
    (tmp_path / "new.py").write_text(bad_source)

    full = _run_cli("old.py", "new.py", "--format", "json", cwd=tmp_path)
    payload = json.loads(full.stdout)
    assert {f["path"] for f in payload["findings"]} == {"old.py", "new.py"}

    scoped = _run_cli("old.py", "new.py", "--changed", "--format", "json",
                      cwd=tmp_path)
    assert scoped.returncode == 1
    payload = json.loads(scoped.stdout)
    assert {f["path"] for f in payload["findings"]} == {"new.py"}
