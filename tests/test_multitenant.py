"""Tests for multi-tenant SwitchV2P (paper §4, "Multitenancy support")."""

import pytest

from repro.cache.direct_mapped import DirectMappedCache
from repro.core import MultiTenantSwitchV2P, PartitionedCache, TenantRegistry
from repro.sim.engine import msec, usec
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer

from conftest import small_network


def make_registry():
    registry = TenantRegistry()
    registry.add_tenant(1, 4)  # VIPs 0-3
    registry.add_tenant(2, 4)  # VIPs 4-7
    return registry


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_block_allocation():
    registry = make_registry()
    assert registry.tenant_of(0) == 1
    assert registry.tenant_of(3) == 1
    assert registry.tenant_of(4) == 2
    assert registry.tenant_of(7) == 2
    assert registry.tenant_of(8) is None
    assert registry.total_vips == 8


def test_registry_rejects_duplicates_and_empty_blocks():
    registry = make_registry()
    with pytest.raises(ValueError):
        registry.add_tenant(1, 4)
    with pytest.raises(ValueError):
        registry.add_tenant(3, 0)


# ----------------------------------------------------------------------
# partitioned cache
# ----------------------------------------------------------------------
def test_partitioned_cache_routes_by_tenant():
    registry = make_registry()
    cache = PartitionedCache(registry, {1: 4, 2: 4})
    cache.insert(0, 100)  # tenant 1
    cache.insert(4, 200)  # tenant 2
    assert cache.lookup(0) == 100
    assert cache.lookup(4) == 200
    assert cache.partitions[1].peek(0) == 100
    assert cache.partitions[2].peek(0) is None


def test_partitioned_cache_isolates_tenants():
    """One tenant filling its partition cannot evict another's entries."""
    registry = TenantRegistry()
    registry.add_tenant(1, 100)   # VIPs 0-99
    registry.add_tenant(2, 100)   # VIPs 100-199
    cache = PartitionedCache(registry, {1: 2, 2: 2})
    cache.insert(150, 7)
    for vip in range(0, 50):  # tenant 1 hammers its own partition
        cache.insert(vip, vip)
    assert cache.peek(150) == 7


def test_disabled_tenant_misses_and_rejects():
    registry = make_registry()
    cache = PartitionedCache(registry, {1: 4})  # tenant 2 not enabled
    assert not cache.insert(4, 200).admitted
    assert cache.lookup(4) is None
    assert cache.stats.rejections == 1


def test_unallocated_vip_behaves_like_disabled():
    registry = make_registry()
    cache = PartitionedCache(registry, {1: 4, 2: 4})
    assert cache.lookup(99) is None
    assert not cache.insert(99, 1).admitted
    assert not cache.invalidate(99)


def test_runtime_partition_management():
    registry = make_registry()
    cache = PartitionedCache(registry, {1: 4})
    cache.add_partition(2, 4)
    assert cache.insert(4, 200).admitted
    cache.remove_partition(2)
    assert cache.lookup(4) is None
    with pytest.raises(ValueError):
        cache.add_partition(1, 4)


def test_partitioned_cache_aggregate_interface():
    registry = make_registry()
    cache = PartitionedCache(registry, {1: 4, 2: 4})
    cache.insert(0, 1)
    cache.insert(4, 2)
    assert cache.num_slots == 8
    assert cache.occupancy() == 2
    assert len(cache) == 2
    assert len(cache.entries()) == 2
    cache.clear()
    assert cache.occupancy() == 0


# ----------------------------------------------------------------------
# multi-tenant scheme end to end
# ----------------------------------------------------------------------
def run_two_tenant_network(enabled_tenants):
    registry = make_registry()
    scheme = MultiTenantSwitchV2P(total_cache_slots=400, registry=registry,
                                  enabled_tenants=enabled_tenants)
    network = small_network(scheme, num_vms=8)
    player = TrafficPlayer(network)
    flows = []
    for i in range(6):
        # Tenant 1 traffic: VIPs 0-3; tenant 2 traffic: VIPs 4-7.
        flows.append(FlowSpec(src_vip=0, dst_vip=2, size_bytes=2_000,
                              start_ns=i * usec(150)))
        flows.append(FlowSpec(src_vip=4, dst_vip=6, size_bytes=2_000,
                              start_ns=i * usec(150) + usec(40)))
    player.add_flows(flows)
    network.run(until=msec(20))
    return scheme, network


def test_both_tenants_enabled_both_hit():
    scheme, network = run_two_tenant_network(enabled_tenants=None)
    stats = scheme.tenant_hit_stats()
    assert stats[1][1] > 0  # tenant 1 hits
    assert stats[2][1] > 0  # tenant 2 hits


def test_policy_disables_one_tenant():
    scheme, network = run_two_tenant_network(enabled_tenants={1})
    stats = scheme.tenant_hit_stats()
    assert stats[1][1] > 0
    assert 2 not in stats  # tenant 2 has no partitions at all
    # Tenant 2 still communicates correctly (via gateways).
    assert network.collector.completion_rate == 1.0


def test_tenant_shares_bias_memory():
    registry = make_registry()
    scheme = MultiTenantSwitchV2P(total_cache_slots=400, registry=registry,
                                  tenant_shares={1: 3.0, 2: 1.0})
    network = small_network(scheme, num_vms=8)
    cache = next(iter(scheme.caches.values()))
    assert cache.partitions[1].num_slots > cache.partitions[2].num_slots
