"""Tests for the adaptive per-tenant enablement policy (paper §4)."""

import pytest

from repro.core import (
    AdaptiveTenantPolicy,
    GatewayLoadMonitor,
    MultiTenantSwitchV2P,
    TenantRegistry,
)
from repro.sim.engine import msec, usec
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer

from conftest import small_network


def build(enabled_tenants=frozenset()):
    registry = TenantRegistry()
    registry.add_tenant(1, 4)
    registry.add_tenant(2, 4)
    scheme = MultiTenantSwitchV2P(total_cache_slots=400, registry=registry,
                                  enabled_tenants=set(enabled_tenants))
    network = small_network(scheme, num_vms=8)
    monitor = GatewayLoadMonitor(network, registry, window_ns=usec(500))
    return registry, scheme, network, monitor


def test_monitor_counts_per_tenant_gateway_load():
    registry, scheme, network, monitor = build()
    player = TrafficPlayer(network)
    player.add_flows([FlowSpec(src_vip=0, dst_vip=2, size_bytes=3_000,
                               start_ns=i * usec(50)) for i in range(6)])
    network.run(until=msec(5))
    assert monitor.window_counts(1) > 0
    assert monitor.window_counts(2) == 0
    # The chained observer must not break collector counting.
    assert network.collector.gateway_arrivals > 0


def test_policy_enables_hot_tenant():
    registry, scheme, network, monitor = build()
    policy = AdaptiveTenantPolicy(scheme, monitor, enable_threshold=5,
                                  disable_threshold=0, slots_per_switch=8,
                                  period_ns=usec(200))
    policy.start()
    player = TrafficPlayer(network)
    player.add_flows([FlowSpec(src_vip=0, dst_vip=2, size_bytes=3_000,
                               start_ns=i * usec(60)) for i in range(20)])
    network.run(until=msec(10))
    assert 1 in policy.enabled
    assert policy.enable_events >= 1
    # Partitions actually exist on the switches now.
    cache = next(iter(scheme.caches.values()))
    assert 1 in cache.partitions
    assert 2 not in cache.partitions


def test_policy_disables_idle_tenant():
    registry, scheme, network, monitor = build(enabled_tenants={1, 2})
    policy = AdaptiveTenantPolicy(scheme, monitor, enable_threshold=10**9,
                                  disable_threshold=0, slots_per_switch=8,
                                  period_ns=usec(200))
    policy.start()
    network.run(until=msec(2))
    # No traffic at all: both tenants drop below the disable threshold.
    assert policy.disable_events >= 2
    cache = next(iter(scheme.caches.values()))
    assert not cache.partitions


def test_policy_validation():
    registry, scheme, network, monitor = build()
    with pytest.raises(ValueError):
        AdaptiveTenantPolicy(scheme, monitor, enable_threshold=1,
                             disable_threshold=2, slots_per_switch=4,
                             period_ns=usec(100))
    with pytest.raises(ValueError):
        AdaptiveTenantPolicy(scheme, monitor, enable_threshold=2,
                             disable_threshold=1, slots_per_switch=4,
                             period_ns=0)
    with pytest.raises(ValueError):
        GatewayLoadMonitor(network, registry, window_ns=0)


def test_enabled_tenant_starts_hitting_after_policy_flip():
    registry, scheme, network, monitor = build()
    policy = AdaptiveTenantPolicy(scheme, monitor, enable_threshold=3,
                                  disable_threshold=0, slots_per_switch=8,
                                  period_ns=usec(150))
    policy.start()
    player = TrafficPlayer(network)
    player.add_flows([FlowSpec(src_vip=0, dst_vip=2, size_bytes=3_000,
                               start_ns=i * usec(120)) for i in range(25)])
    network.run(until=msec(20))
    lookups, hits = scheme.tenant_hit_stats().get(1, (0, 0))
    assert hits > 0
