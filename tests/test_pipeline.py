"""Tests for the P4 pipeline feasibility model (paper §3.4)."""

import pytest

from repro.hw.pipeline import (
    SWITCHV2P_OPERATIONS,
    Pipeline,
    PipelineError,
    RegisterArray,
    build_switchv2p_pipeline,
    max_entries_per_stage,
    validate_feasibility,
)


def test_every_operation_fits_in_one_pass():
    """The paper's claim: no recirculation for any protocol operation."""
    traces = validate_feasibility(entries_per_switch=5_120)
    assert set(traces) == set(SWITCHV2P_OPERATIONS)
    for operation, trace in traces.items():
        stages = [stage for stage, _array in trace]
        assert stages == sorted(stages), operation


def test_three_register_arrays_plus_timestamp_vector():
    pipeline = build_switchv2p_pipeline(1024, num_switches_in_topology=80)
    assert set(pipeline.arrays) == {"cache_keys", "cache_values",
                                    "cache_abits", "timestamp_vector"}
    assert pipeline.arrays["timestamp_vector"].entries == 80


def test_double_access_requires_recirculation():
    pipeline = build_switchv2p_pipeline(64)
    with pytest.raises(PipelineError, match="twice"):
        pipeline.execute(["cache_keys", "cache_keys"])


def test_backwards_stage_order_rejected():
    pipeline = build_switchv2p_pipeline(64)
    with pytest.raises(PipelineError, match="recirculation"):
        pipeline.execute(["cache_values", "cache_keys"])


def test_unknown_array_rejected():
    pipeline = build_switchv2p_pipeline(64)
    with pytest.raises(PipelineError, match="unknown"):
        pipeline.execute(["bloom_filter"])


def test_stage_sram_budget_enforced():
    pipeline = Pipeline(register_kb_per_stage=1.0)
    with pytest.raises(PipelineError, match="SRAM"):
        pipeline.add_array(RegisterArray("big", stage=0, entries=10_000,
                                         bits_per_entry=32))


def test_stateful_alu_budget_enforced():
    pipeline = Pipeline(alus_per_stage=1)
    pipeline.add_array(RegisterArray("a", stage=0, entries=8,
                                     bits_per_entry=32))
    with pytest.raises(PipelineError, match="ALU"):
        pipeline.add_array(RegisterArray("b", stage=0, entries=8,
                                         bits_per_entry=32))


def test_stage_bounds_enforced():
    pipeline = Pipeline(stages=4)
    with pytest.raises(PipelineError, match="stage"):
        pipeline.add_array(RegisterArray("far", stage=9, entries=8,
                                         bits_per_entry=32))


def test_duplicate_array_rejected():
    pipeline = Pipeline()
    pipeline.add_array(RegisterArray("x", stage=0, entries=8,
                                     bits_per_entry=32))
    with pytest.raises(PipelineError, match="duplicate"):
        pipeline.add_array(RegisterArray("x", stage=1, entries=8,
                                         bits_per_entry=32))


def test_oversized_cache_rejected_at_build():
    too_big = max_entries_per_stage() + 1
    with pytest.raises(PipelineError):
        validate_feasibility(entries_per_switch=too_big)


def test_bluebird_scale_fits():
    """192K x 32-bit entries need multiple stages in reality; our single
    -stage budget bounds the per-stage share — the Bluebird figure
    divided over a few stages fits comfortably."""
    per_stage = max_entries_per_stage()
    assert per_stage * 8 > 192_000  # 8 stages could hold the full table


def test_negative_entries_rejected():
    with pytest.raises(PipelineError):
        build_switchv2p_pipeline(-1)
