"""Chaos-fuzzer tests: schedule generation, oracles, shrinking, replay.

Covers the randomized :func:`repro.faults.fuzz.generate_schedule`
sampler (determinism, recovery pairing), serialization round-trips,
the :class:`repro.faults.oracles.OracleSuite` runtime invariants, the
ddmin shrinker, and the end-to-end ``python -m repro chaos`` pipeline:
injected bug -> tripped oracle -> minimal schedule -> reproducer
artifact -> replay re-trips the same oracle.
"""

import json

import pytest

from repro.baselines import NoCache
from repro.core import SwitchV2P
from repro.experiments.chaosfuzz import (
    BUGS,
    ChaosFuzzParams,
    fuzz_flows,
    gray_chaos_params,
    replay_reproducer,
    run_chaos_fuzz,
    run_one_trial,
)
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    FuzzConfig,
    OracleSuite,
    ddmin,
    generate_schedule,
)
from repro.faults.fuzz import gray_fuzz_config
from repro.sim.engine import msec, usec
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer
from repro.transport.reliable import TransportConfig

from conftest import small_network, tiny_spec

#: Reduced workload so a trial (and the shrinker's dozens of re-runs)
#: stays fast; the chaos_spec topology itself is fixed.
SMALL_PARAMS = ChaosFuzzParams(num_vms=16, num_flows=24)

#: Recovery event kinds (a LINK_LOSS with rate 0 also clears a fault).
_RECOVERY_KINDS = (FaultKind.SWITCH_RECOVER, FaultKind.LINK_UP,
                   FaultKind.GATEWAY_RESTART)


# ----------------------------------------------------------------------
# schedule serialization
# ----------------------------------------------------------------------
def one_of_each_schedule() -> FaultSchedule:
    return (FaultSchedule()
            .switch_outage("spine", (0, 1), usec(100), usec(500))
            .link_outage(("tor", 0, 0), ("spine", 0, 0), usec(200), usec(300))
            .link_loss(usec(250), ("tor", 0, 1), ("spine", 0, 1), 0.25)
            .gateway_outage(0, usec(300), usec(400))
            .migrate_vm(usec(350), vip=3, pod=0, rack=1, host_index=0)
            # gray kinds: every serialized field must survive the trip
            .link_degradation(("tor", 0, 0), ("spine", 0, 1),
                              usec(400), usec(200), 0.125, usec(5))
            .flap_link(usec(450), ("tor", 0, 1), ("spine", 0, 0),
                       period_ns=usec(60), count=3)
            .switch_slowdown("core", 0, usec(500), usec(100), usec(7))
            .gateway_brownout(0, usec(550), usec(150), 0.5, usec(9))
            .flip_cache_bit(usec(600), "tor", (0, 0), entry=2, bit=20))


def test_schedule_json_round_trip():
    schedule = one_of_each_schedule()
    assert {e.kind for e in schedule.events} >= {
        FaultKind.LINK_DEGRADE, FaultKind.LINK_FLAP, FaultKind.SWITCH_SLOW,
        FaultKind.GATEWAY_BROWNOUT, FaultKind.CACHE_BITFLIP}
    restored = FaultSchedule.from_json(schedule.to_json())
    assert restored.events == schedule.events
    # Locators come back as tuples, not JSON lists.
    assert all(isinstance(e.target, tuple) for e in restored.events)
    # And the round trip is a fixed point.
    assert restored.to_json() == schedule.to_json()


def test_schedule_dict_round_trip_preserves_loss_rate():
    schedule = FaultSchedule().link_loss(
        usec(5), ("tor", 0, 0), ("spine", 0, 0), 0.125)
    restored = FaultSchedule.from_dict(schedule.to_dict())
    assert restored.events[0].loss_rate == 0.125
    assert restored.events[0].kind is FaultKind.LINK_LOSS


def test_schedule_from_dict_rejects_unknown_fields_loudly():
    # Reproducers are hand-editable: a typoed knob must fail loudly,
    # never be silently dropped into a subtly different replay.
    data = one_of_each_schedule().to_dict()
    data["events"][0]["bitflip_bit"] = 7
    with pytest.raises(ValueError, match=r"events\[0\].*unknown field"):
        FaultSchedule.from_dict(data)
    with pytest.raises(ValueError, match="unknown FaultKind"):
        FaultSchedule.from_dict({"events": [
            {"at_ns": 0, "kind": "cache-bitflipp", "target": ["tor", 0, 0]}]})
    # A locator that cannot address the kind's object is also loud.
    with pytest.raises(ValueError, match="malformed switch locator"):
        FaultSchedule.from_dict({"events": [
            {"at_ns": 0, "kind": "cache-bitflip", "target": ["gateway", 0]}]})


def test_last_event_ns_counts_migrations():
    schedule = (FaultSchedule()
                .switch_outage("core", 0, usec(10), usec(20))
                .migrate_vm(usec(90), vip=0, pod=0, rack=0, host_index=0))
    assert schedule.last_event_ns() == usec(90)
    assert schedule.last_recovery_ns() == usec(30)
    assert FaultSchedule().last_event_ns() is None


# ----------------------------------------------------------------------
# VM_MIGRATE events
# ----------------------------------------------------------------------
def test_vm_migrate_event_fires():
    network = small_network(NoCache(), num_vms=8)
    old_host = network.host_of(0)
    target = next(h for h in network.hosts if h is not old_host)
    from repro.net.addresses import pip_host, pip_pod, pip_rack
    schedule = FaultSchedule().migrate_vm(
        usec(10), vip=0, pod=pip_pod(target.pip), rack=pip_rack(target.pip),
        host_index=pip_host(target.pip))
    schedule.apply(network)
    network.run(until=usec(50))
    assert network.host_of(0) is target
    assert 0 in old_host.follow_me
    assert any("vm-migrate" in label for _, label in schedule.fired)


def test_vm_migrate_unknown_target_is_logged_noop():
    network = small_network(NoCache(), num_vms=8)
    before = {vip: network.database.get(vip) for vip in range(8)}
    schedule = (FaultSchedule()
                .migrate_vm(usec(10), vip=999, pod=0, rack=0, host_index=0)
                .migrate_vm(usec(20), vip=0, pod=7, rack=9, host_index=9))
    schedule.apply(network)
    network.run(until=usec(50))
    assert {vip: network.database.get(vip) for vip in range(8)} == before
    assert len(schedule.fired) == 2
    assert all("skipped" in label for _, label in schedule.fired)


# ----------------------------------------------------------------------
# the fuzzer
# ----------------------------------------------------------------------
def test_generate_schedule_is_deterministic():
    spec = tiny_spec()
    a = generate_schedule(spec, num_vms=8, seed=7)
    b = generate_schedule(spec, num_vms=8, seed=7)
    assert a.to_json() == b.to_json()
    c = generate_schedule(spec, num_vms=8, seed=8)
    assert c.to_json() != a.to_json()


def test_generate_schedule_events_sorted_and_in_window():
    config = FuzzConfig(mean_events=10)
    schedule = generate_schedule(tiny_spec(), num_vms=8, config=config, seed=3)
    times = [e.at_ns for e in schedule.events]
    assert times == sorted(times)
    faults = [e for e in schedule.events if e.kind not in _RECOVERY_KINDS]
    assert all(0 <= e.at_ns < config.window_ns for e in faults
               if not (e.kind is FaultKind.LINK_LOSS and e.loss_rate == 0.0))


@pytest.mark.parametrize("seed", [1, 2, 3, 4])
def test_generate_schedule_ensures_eventual_recovery(seed):
    """With ensure_recovery, no target is left permanently degraded."""
    schedule = generate_schedule(tiny_spec(), num_vms=8,
                                 config=FuzzConfig(mean_events=10), seed=seed)
    by_target = {}
    for event in schedule.events:
        if event.kind is FaultKind.VM_MIGRATE:
            continue  # churn, not a fault: nothing to recover
        by_target.setdefault(event.target, []).append(event)
    for target, events in by_target.items():
        last_ns = max(e.at_ns for e in events)
        healed = [e for e in events if e.at_ns == last_ns
                  and (e.kind in _RECOVERY_KINDS
                       or (e.kind is FaultKind.LINK_LOSS
                           and e.loss_rate == 0.0))]
        assert healed, f"{target} ends degraded: {events}"


def test_generate_schedule_respects_kind_weights():
    config = FuzzConfig(mean_events=12, switch_weight=0.0, link_weight=0.0,
                        loss_weight=0.0, gateway_weight=0.0,
                        migrate_weight=1.0)
    schedule = generate_schedule(tiny_spec(), num_vms=8, config=config, seed=5)
    assert schedule.events
    assert all(e.kind is FaultKind.VM_MIGRATE for e in schedule.events)


def test_gray_fuzz_config_mixes_gray_kinds_deterministically():
    config = gray_fuzz_config(mean_events=24)
    a = generate_schedule(tiny_spec(), num_vms=8, config=config, seed=4)
    b = generate_schedule(tiny_spec(), num_vms=8, config=config, seed=4)
    assert a.to_json() == b.to_json()
    gray = {FaultKind.LINK_DEGRADE, FaultKind.LINK_FLAP,
            FaultKind.SWITCH_SLOW, FaultKind.GATEWAY_BROWNOUT,
            FaultKind.CACHE_BITFLIP}
    assert {e.kind for e in a.events} & gray
    # The stock config never emits gray kinds: existing seeds replay
    # byte-identically.
    stock = generate_schedule(tiny_spec(), num_vms=8,
                              config=FuzzConfig(mean_events=24), seed=4)
    assert not {e.kind for e in stock.events} & gray


def test_fuzz_config_validation():
    with pytest.raises(ValueError):
        FuzzConfig(burstiness=1.5)
    with pytest.raises(ValueError):
        FuzzConfig(min_outage_ns=0)
    with pytest.raises(ValueError):
        FuzzConfig(switch_weight=0, link_weight=0, loss_weight=0,
                   gateway_weight=0, migrate_weight=0)
    with pytest.raises(ValueError):
        FuzzConfig(max_loss_rate=0.01)


def test_fuzz_flows_deterministic_and_never_self_addressed():
    flows_a = fuzz_flows(SMALL_PARAMS, trial_seed=9)
    flows_b = fuzz_flows(SMALL_PARAMS, trial_seed=9)
    assert flows_a == flows_b
    assert len(flows_a) == SMALL_PARAMS.num_flows
    for flow in flows_a:
        assert flow.src_vip != flow.dst_vip
        assert 0 <= flow.dst_vip < SMALL_PARAMS.num_vms
        assert (SMALL_PARAMS.min_flow_bytes <= flow.size_bytes
                <= SMALL_PARAMS.max_flow_bytes)


# ----------------------------------------------------------------------
# ddmin shrinker
# ----------------------------------------------------------------------
def test_ddmin_finds_single_culprit():
    assert ddmin(list(range(16)), lambda s: 11 in s) == [11]


def test_ddmin_finds_interacting_pair():
    result = ddmin(list(range(8)), lambda s: {2, 5} <= set(s))
    assert sorted(result) == [2, 5]


def test_ddmin_rejects_passing_input():
    with pytest.raises(ValueError):
        ddmin([1, 2, 3], lambda s: False)


def test_ddmin_keeps_full_set_when_all_needed():
    items = [1, 2, 3, 4]
    assert sorted(ddmin(items, lambda s: len(s) == 4)) == items


# ----------------------------------------------------------------------
# oracle suite
# ----------------------------------------------------------------------
def test_oracles_clean_on_healthy_run():
    network = small_network(SwitchV2P(200), num_vms=8)
    suite = OracleSuite(network)
    player = TrafficPlayer(network, TransportConfig())
    records = player.add_flows([
        FlowSpec(src_vip=0, dst_vip=5, size_bytes=4_000, start_ns=0),
        FlowSpec(src_vip=2, dst_vip=7, size_bytes=4_000, start_ns=usec(20)),
    ])
    network.run(until=msec(20))
    suite.finish(msec(20))
    assert suite.violations == []
    assert all(r.completed for r in records)


def test_canary_oracle_always_trips():
    network = small_network(NoCache(), num_vms=8)
    suite = OracleSuite(network)
    suite.arm_canary()
    network.run(until=usec(10))
    suite.finish(usec(10))
    assert [v.oracle for v in suite.violations] == ["canary"]
    # finish() is idempotent: a second call must not double-report.
    suite.finish(usec(10))
    assert len(suite.violations) == 1


def test_liveness_oracle_flags_hung_flow():
    network = small_network(NoCache(), num_vms=8)
    suite = OracleSuite(network)
    player = TrafficPlayer(network, TransportConfig())
    player.add_flows([FlowSpec(src_vip=0, dst_vip=5, size_bytes=50_000,
                               start_ns=0)])
    # Cut the run mid-flow: the flow is neither completed nor failed.
    network.run(until=usec(5))
    suite.finish(usec(5))
    assert any(v.oracle == "liveness" for v in suite.violations)


def test_terminal_reason_oracle_flags_bare_failure():
    network = small_network(NoCache(), num_vms=8)
    suite = OracleSuite(network)
    from repro.metrics.collector import FlowRecord
    record = FlowRecord(flow_id=1, src_vip=0, dst_vip=5, size_bytes=100,
                        start_ns=0)
    record.failed = True  # no failure_reason: a harness bug
    network.collector.register_flow(record)
    suite.finish(usec(1))
    assert any(v.oracle == "terminal-reason" for v in suite.violations)


def test_structural_oracle_sweeps_after_each_event():
    network = small_network(SwitchV2P(200), num_vms=8)
    suite = OracleSuite(network)
    # Sabotage: the scheme stops flushing SRAM on power cycles, so the
    # post-event sweep must see a failed switch with a warm cache.
    network.scheme.on_switch_reset = None
    cache = network.scheme.cache_of(network.fabric.spines[(0, 0)])
    cache.insert(0, network.database.get(0))
    schedule = FaultSchedule().switch_outage("spine", (0, 0),
                                             usec(10), usec(50))
    schedule.apply(network)
    suite.watch_schedule(schedule)
    network.run(until=usec(100))
    assert any(v.oracle == "structural" and "SRAM" in v.detail
               for v in suite.violations)


def test_violation_cap_bounds_the_report():
    network = small_network(NoCache(), num_vms=8)
    suite = OracleSuite(network, max_violations=3)
    for i in range(10):
        suite._report("canary", i, f"violation {i}")
    assert len(suite.violations) == 3


# ----------------------------------------------------------------------
# the colocated-sender misdelivery corner (regression)
# ----------------------------------------------------------------------
def test_colocated_sender_does_not_loop_after_migration():
    """A sender sharing the migrated VM's old host must not loop.

    The packet's outer source equals the attached server's PIP, so the
    ToR's "came back from the wrong host" source check never fires; the
    in-band carried mapping is the only misdelivery signal.  Before the
    carried-mapping tag fix the stale ToR entry re-rewrote the packet to
    the old host on every pass, bouncing it until the hop bound.
    """
    # 16 VMs round-robin on 8 hosts: vips 0 and 8 share host 0.
    network = small_network(SwitchV2P(400), num_vms=16)
    suite = OracleSuite(network)
    player = TrafficPlayer(network, TransportConfig(max_retransmits=6,
                                                    max_rto_ns=msec(2)))
    old_host = network.host_of(0)
    assert network.host_of(8) is old_host
    # Warm the old host's ToR with vip 0 -> old_host from remote traffic.
    warm = player.add_flows([FlowSpec(src_vip=4, dst_vip=0,
                                      size_bytes=4_000, start_ns=0)])
    network.run(until=msec(3))
    assert warm[0].completed
    # Migrate vip 0 off the shared host, then send from the colocated
    # neighbour: the first packet hits the ToR's now-stale entry.
    target = next(h for h in network.hosts
                  if h is not old_host and 0 not in h.vms)
    network.migrate(0, target)
    records = player.add_flows([FlowSpec(src_vip=8, dst_vip=0,
                                         size_bytes=4_000, start_ns=msec(3))])
    network.run(until=msec(20))
    suite.finish(msec(20))
    assert records[0].completed
    assert suite.violations == []


# ----------------------------------------------------------------------
# trials, bugs, shrinking, reproducers
# ----------------------------------------------------------------------
def test_run_one_trial_clean_without_faults():
    outcome = run_one_trial("SwitchV2P", [], SMALL_PARAMS, trial_seed=3)
    assert not outcome.failed
    assert outcome.num_events == 0


def test_run_one_trial_is_deterministic():
    schedule = generate_schedule(tiny_spec(), 0, seed=2)  # spec-agnostic kinds
    events = [e for e in schedule.events if e.kind in
              (FaultKind.GATEWAY_CRASH, FaultKind.GATEWAY_RESTART)]
    a = run_one_trial("GwCache", events, SMALL_PARAMS, trial_seed=11)
    b = run_one_trial("GwCache", events, SMALL_PARAMS, trial_seed=11)
    assert a == b


def test_bug_canary_fails_the_trial():
    outcome = run_one_trial("SwitchV2P", [], SMALL_PARAMS, trial_seed=3,
                            bug="oracle-canary")
    assert outcome.failed
    assert outcome.violations[0].oracle == "canary"


def test_bug_skip_cache_flush_trips_structural_oracle():
    events = (FaultSchedule()
              .switch_outage("tor", (0, 0), msec(2), usec(500))).events
    outcome = run_one_trial("SwitchV2P", events, SMALL_PARAMS, trial_seed=3,
                            bug="skip-cache-flush")
    assert any(v.oracle == "structural" and "SRAM" in v.detail
               for v in outcome.violations)
    # The identical trial without the bug is clean: the oracle fires on
    # the injected defect, not on fault injection itself.
    clean = run_one_trial("SwitchV2P", events, SMALL_PARAMS, trial_seed=3)
    assert not clean.failed


def test_bug_misdelivery_loop_trips_hop_bound():
    config = FuzzConfig(mean_events=8, switch_weight=0, link_weight=0,
                        loss_weight=0, gateway_weight=0, migrate_weight=1)
    from repro.experiments.faults import chaos_spec
    schedule = generate_schedule(chaos_spec(), SMALL_PARAMS.num_vms,
                                 config=config, seed=21)
    outcome = run_one_trial("SwitchV2P", schedule.events, SMALL_PARAMS,
                            trial_seed=21, bug="misdelivery-loop")
    assert any(v.oracle == "forwarding-loop" for v in outcome.violations)


def test_shrink_and_replay_round_trip(tmp_path):
    """End-to-end: bug -> failing trial -> minimal schedule -> replay."""
    result = run_chaos_fuzz(trials=4, seed=6, schemes=("SwitchV2P",),
                            params=SMALL_PARAMS, bug="skip-cache-flush",
                            artifact_dir=tmp_path)
    assert result.failures, "the injected bug must trip an oracle"
    assert result.shrunk_events is not None
    assert result.shrunk_events <= 5
    assert result.reproducer_path is not None
    payload = json.loads(open(result.reproducer_path).read())
    target_oracle = payload["oracle"]
    assert payload["format"] == "repro-chaos-reproducer"
    assert len(payload["schedule"]["events"]) == result.shrunk_events
    assert "--replay" in payload["command"]
    replayed = replay_reproducer(result.reproducer_path)
    assert any(v.oracle == target_oracle for v in replayed.violations)


def test_bug_disabled_audit_trips_bounded_staleness(tmp_path):
    """Stopping the anti-entropy audit breaks the staleness promise.

    Gray-weighted trials with the audit on are clean; the identical
    batch with the audit silently stopped leaves an injected bit flip
    unrepaired past the bound, and the minimized schedule replays.
    Seed 3 is the one ``benchmarks/gray_smoke.py`` uses: one of its
    first six trials lands a flip on an occupied, off-path cache line.
    """
    params = gray_chaos_params(num_vms=16, num_flows=24)
    result = run_chaos_fuzz(trials=6, seed=3, schemes=("SwitchV2P",),
                            params=params, bug="disabled-audit",
                            artifact_dir=tmp_path)
    assert result.failures
    oracle = result.failures[0].violations[0].oracle
    assert oracle == "bounded-staleness"
    assert result.shrunk_events is not None
    assert result.shrunk_events <= 5
    replayed = replay_reproducer(result.reproducer_path)
    assert any(v.oracle == "bounded-staleness" for v in replayed.violations)


def test_chaos_fuzz_stock_trials_are_clean():
    result = run_chaos_fuzz(trials=2, seed=1, schemes=("SwitchV2P", "GwCache"),
                            params=SMALL_PARAMS)
    assert result.clean
    assert len(result.outcomes) == 4
    assert result.reproducer_path is None


def test_replay_rejects_foreign_artifacts(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="not a chaos reproducer"):
        replay_reproducer(path)
    path.write_text(json.dumps({"format": "repro-chaos-reproducer",
                                "version": 99}))
    with pytest.raises(ValueError, match="version"):
        replay_reproducer(path)


def test_bug_registry_names_are_stable():
    # CI and EXPERIMENTS.md reference these by name.
    assert set(BUGS) == {"skip-cache-flush", "misdelivery-loop",
                         "oracle-canary", "disabled-audit"}
