"""Equivalence relations between schemes at parameter extremes.

The paper positions NoCache and OnDemand as special cases of the
hybrid (Hoverboard) design: no offloading, and immediate offloading.
These tests pin those relationships in code.
"""

from repro.baselines import Hoverboard, NoCache, OnDemand
from repro.core import SwitchV2P, SwitchV2PConfig
from repro.sim.engine import msec, usec
from repro.transport.flow import FlowSpec
from repro.transport.player import TrafficPlayer

from conftest import small_network


def run(scheme, seed=0):
    network = small_network(scheme, num_vms=8, seed=seed)
    player = TrafficPlayer(network)
    flows = [FlowSpec(src_vip=i % 4, dst_vip=4 + (i % 3), size_bytes=4_000,
                      start_ns=i * usec(250)) for i in range(12)]
    player.add_flows(flows)
    network.run(until=msec(30))
    return network.collector


def test_hoverboard_without_offload_equals_nocache():
    """An unreachable threshold makes Hoverboard behave as NoCache."""
    hoverboard = run(Hoverboard(offload_threshold=10**9))
    nocache = run(NoCache())
    assert hoverboard.gateway_arrivals == nocache.gateway_arrivals
    assert hoverboard.average_fct_ns() == nocache.average_fct_ns()
    assert hoverboard.average_stretch() == nocache.average_stretch()


def test_hoverboard_immediate_offload_approaches_ondemand():
    """Threshold 1 with OnDemand's install delay reproduces OnDemand's
    per-destination behaviour."""
    hoverboard = run(Hoverboard(offload_threshold=1,
                                install_delay_ns=usec(52)))
    ondemand = run(OnDemand(install_delay_ns=usec(52)))
    assert hoverboard.gateway_arrivals == ondemand.gateway_arrivals
    assert hoverboard.average_fct_ns() == ondemand.average_fct_ns()


def test_switchv2p_all_features_off_is_pure_role_learning():
    """With every special function disabled, SwitchV2P still caches
    (plain role-based learning) but emits zero protocol packets."""
    config = SwitchV2PConfig(enable_learning_packets=False,
                             enable_spillover=False,
                             enable_promotion=False,
                             enable_invalidation=False)
    scheme = SwitchV2P(total_cache_slots=400, config=config)
    network = small_network(scheme, num_vms=8)
    player = TrafficPlayer(network)
    flows = [FlowSpec(src_vip=i % 4, dst_vip=4 + (i % 3), size_bytes=4_000,
                      start_ns=i * usec(250)) for i in range(12)]
    player.add_flows(flows)
    network.run(until=msec(30))
    assert scheme.learning_packets_sent == 0
    assert scheme.invalidation_packets_sent == 0
    assert scheme.promotions_sent == 0
    assert scheme.spillovers_reinserted == 0
    assert network.collector.in_network_hits > 0


def test_identical_seeds_identical_results_across_scheme_instances():
    a = run(Hoverboard(offload_threshold=5), seed=3)
    b = run(Hoverboard(offload_threshold=5), seed=3)
    assert a.average_fct_ns() == b.average_fct_ns()
    assert a.gateway_arrivals == b.gateway_arrivals
