"""Tests for the Tofino resource model (Table 6)."""

import pytest

from repro.hw.tofino import (
    ENTRY_BITS,
    TABLE6_ENTRIES_PER_SWITCH,
    estimate_utilization,
    fits_pipeline,
    max_entries,
    register_bits,
)

#: The paper's Table 6 at the 50% cache configuration.
TABLE6_EXPECTED = {
    "Match Crossbar": 7.2,
    "Meter ALU": 17.5,
    "Gateway": 25.0,
    "SRAM": 3.9,
    "TCAM": 1.7,
    "VLIW Instruction": 10.0,
    "Hash Bits": 4.7,
}


def test_reproduces_table6_exactly():
    estimate = estimate_utilization(TABLE6_ENTRIES_PER_SWITCH)
    for resource, expected in TABLE6_EXPECTED.items():
        assert estimate[resource] == pytest.approx(expected, abs=1e-9)


def test_only_sram_and_hash_bits_scale():
    small = estimate_utilization(0)
    large = estimate_utilization(100_000)
    for resource in TABLE6_EXPECTED:
        if resource in ("SRAM", "Hash Bits"):
            assert large[resource] > small[resource]
        else:
            assert large[resource] == small[resource]


def test_fits_pipeline_at_paper_size():
    assert fits_pipeline(TABLE6_ENTRIES_PER_SWITCH)


def test_max_entries_is_bluebird_scale():
    # Bluebird reports ~192K entries per switch; the model should allow
    # the same order of magnitude.
    assert max_entries() > 100_000


def test_register_bits():
    assert register_bits(0) == 0
    assert register_bits(10) == 10 * ENTRY_BITS


def test_negative_entries_rejected():
    with pytest.raises(ValueError):
        estimate_utilization(-1)
    with pytest.raises(ValueError):
        register_bits(-1)
