"""Tests for forwarding-path probes."""

import pytest

from repro.baselines import NoCache
from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Layer, Switch
from repro.net.probing import ForwardingLoopError, forwarding_path, path_length
from repro.vnet.hypervisor import Host

from conftest import small_network


def test_same_rack_path():
    network = small_network(NoCache(), num_vms=8)
    src, dst = network.hosts[0], network.hosts[1]
    path = forwarding_path(network, src.pip, dst.pip, flow_id=1)
    assert len(path) == 2  # tor, host
    assert isinstance(path[0], Switch)
    assert path[-1] is dst


def test_cross_pod_path_is_five_switches():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst = next(h for h in network.hosts if pip_pod(h.pip) != pip_pod(src.pip))
    assert path_length(network, src.pip, dst.pip, flow_id=1) == 5
    path = forwarding_path(network, src.pip, dst.pip, flow_id=1)
    layers = [node.layer for node in path if isinstance(node, Switch)]
    assert layers == [Layer.TOR, Layer.SPINE, Layer.CORE, Layer.SPINE,
                      Layer.TOR]
    assert path[-1] is dst


def test_probe_matches_actual_delivery():
    """The probe predicts exactly the hops a real packet takes."""
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst = next(h for h in network.hosts if pip_pod(h.pip) != pip_pod(src.pip))
    predicted = path_length(network, src.pip, dst.pip, flow_id=9)

    from repro.net.packet import Packet, PacketKind
    packet = Packet(PacketKind.DATA, flow_id=9, seq=0, payload_bytes=64,
                    src_vip=0, dst_vip=next(iter(dst.vms)),
                    outer_src=src.pip, outer_dst=dst.pip)
    packet.resolved = True
    src.reforward(packet)
    network.engine.run()
    assert packet.hops == predicted


def test_gateway_path_ends_at_gateway():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    gateway = network.gateways[0]
    path = forwarding_path(network, src.pip, gateway.pip, flow_id=3)
    assert path[-1] is gateway


def test_probe_stops_at_failed_fabric():
    network = small_network(NoCache(), num_vms=8)
    for j in range(network.config.spec.spines_per_pod):
        network.fabric.spines[(0, j)].failed = True
    src = network.hosts[0]
    dst = next(h for h in network.hosts if pip_pod(h.pip) != pip_pod(src.pip))
    path = forwarding_path(network, src.pip, dst.pip, flow_id=1)
    # Only the source ToR is reachable.
    assert len(path) == 1


def test_ecmp_varies_with_flow_id():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst = next(h for h in network.hosts if pip_pod(h.pip) != pip_pod(src.pip))
    spines = set()
    for flow_id in range(16):
        path = forwarding_path(network, src.pip, dst.pip, flow_id)
        spine = next(n for n in path
                     if isinstance(n, Switch) and n.layer == Layer.SPINE)
        spines.add(spine.switch_id)
    assert len(spines) > 1
