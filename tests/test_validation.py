"""Tests for the network invariant checker."""

import pytest

from repro.baselines import NoCache
from repro.vnet.validation import assert_valid, validate_network

from conftest import small_network


def test_fresh_network_is_valid():
    network = small_network(NoCache(), num_vms=8)
    assert validate_network(network) == []
    assert_valid(network)


def test_network_valid_after_migration():
    network = small_network(NoCache(), num_vms=8)
    target = next(h for h in network.hosts if 0 not in h.vms)
    network.migrate(0, target)
    assert validate_network(network) == []


def test_network_valid_after_gateway_commission():
    network = small_network(NoCache(), num_vms=8)
    network.commission_gateway(pod=0)
    assert validate_network(network) == []


def test_detects_placement_inconsistency():
    network = small_network(NoCache(), num_vms=8)
    # Corrupt: database says vip 0 lives elsewhere.
    other = next(h for h in network.hosts if 0 not in h.vms)
    network.database.set(0, other.pip)
    issues = validate_network(network)
    assert issues
    assert any("vip 0" in issue for issue in issues)


def test_detects_orphan_endpoint():
    network = small_network(NoCache(), num_vms=8)
    host = network.hosts[0]
    host.endpoints[999] = object()
    issues = validate_network(network)
    assert any("endpoint" in issue for issue in issues)


def test_detects_missing_attachment():
    network = small_network(NoCache(), num_vms=8)
    host = network.hosts[0]
    from repro.net.addresses import pip_pod, pip_rack
    tor = network.fabric.tor_of(pip_pod(host.pip), pip_rack(host.pip))
    tor.attached_pips.discard(host.pip)
    issues = validate_network(network)
    assert any("attachment" in issue for issue in issues)


def test_assert_valid_raises_with_details():
    network = small_network(NoCache(), num_vms=8)
    network.hosts[0].endpoints[999] = object()
    with pytest.raises(AssertionError, match="endpoint"):
        assert_valid(network)
