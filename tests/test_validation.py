"""Tests for the network invariant checker."""

import pytest

from repro.baselines import NoCache
from repro.vnet.validation import assert_valid, validate_network

from conftest import small_network


def test_fresh_network_is_valid():
    network = small_network(NoCache(), num_vms=8)
    assert validate_network(network) == []
    assert_valid(network)


def test_network_valid_after_migration():
    network = small_network(NoCache(), num_vms=8)
    target = next(h for h in network.hosts if 0 not in h.vms)
    network.migrate(0, target)
    assert validate_network(network) == []


def test_network_valid_after_gateway_commission():
    network = small_network(NoCache(), num_vms=8)
    network.commission_gateway(pod=0)
    assert validate_network(network) == []


def test_detects_placement_inconsistency():
    network = small_network(NoCache(), num_vms=8)
    # Corrupt: database says vip 0 lives elsewhere.
    other = next(h for h in network.hosts if 0 not in h.vms)
    network.database.set(0, other.pip)
    issues = validate_network(network)
    assert issues
    assert any("vip 0" in issue for issue in issues)


def test_detects_orphan_endpoint():
    network = small_network(NoCache(), num_vms=8)
    host = network.hosts[0]
    host.endpoints[999] = object()
    issues = validate_network(network)
    assert any("endpoint" in issue for issue in issues)


def test_detects_missing_attachment():
    network = small_network(NoCache(), num_vms=8)
    host = network.hosts[0]
    from repro.net.addresses import pip_pod, pip_rack
    tor = network.fabric.tor_of(pip_pod(host.pip), pip_rack(host.pip))
    tor.attached_pips.discard(host.pip)
    issues = validate_network(network)
    assert any("attachment" in issue for issue in issues)


def test_assert_valid_raises_with_details():
    network = small_network(NoCache(), num_vms=8)
    network.hosts[0].endpoints[999] = object()
    with pytest.raises(AssertionError, match="endpoint"):
        assert_valid(network)


# ----------------------------------------------------------------------
# check_invariants: the chaos oracles' structural sweep
# ----------------------------------------------------------------------
def test_check_invariants_clean_on_degraded_network():
    """Legitimate fault states (mid-outage) are not violations."""
    from repro.core import SwitchV2P
    from repro.faults import FaultSchedule
    from repro.sim.engine import msec, usec
    from repro.vnet.validation import check_invariants

    network = small_network(SwitchV2P(200), num_vms=8)
    schedule = (FaultSchedule()
                .switch_outage("spine", (0, 0), usec(100), msec(2))
                .link_outage(("tor", 0, 0), ("spine", 0, 1),
                             usec(150), msec(2))
                .gateway_outage(0, usec(200), msec(2)))
    schedule.apply(network)
    network.run(until=msec(1))  # mid-outage: everything still down
    assert check_invariants(network) == []
    network.run(until=msec(5))  # after recovery
    assert check_invariants(network) == []


def test_check_invariants_detects_unaccounted_switch_failure():
    from repro.vnet.validation import check_invariants

    network = small_network(NoCache(), num_vms=8)
    # Corrupt: mark a switch failed without the fabric's accounting.
    network.fabric.spines[(0, 0)]._failed = True
    issues = check_invariants(network)
    assert any("fault_count" in issue for issue in issues)


def test_check_invariants_detects_surviving_sram():
    from repro.core import SwitchV2P
    from repro.vnet.validation import check_invariants

    network = small_network(SwitchV2P(200), num_vms=8)
    switch = network.fabric.spines[(0, 0)]
    switch.fail()
    # Corrupt: resurrect a cache entry inside the powered-off switch.
    network.scheme.cache_of(switch).insert(0, network.database.get(0))
    issues = check_invariants(network)
    assert any("SRAM" in issue for issue in issues)


def test_check_invariants_detects_corrupt_gateway_pool():
    from repro.vnet.validation import check_invariants

    network = small_network(NoCache(), num_vms=8)
    network.live_gateways.append(network.live_gateways[0])
    issues = check_invariants(network)
    assert any("twice" in issue for issue in issues)


def test_assert_valid_covers_fault_state():
    network = small_network(NoCache(), num_vms=8)
    network.fabric.fault_count = 5  # no visible fault justifies this
    with pytest.raises(AssertionError, match="fault_count"):
        assert_valid(network)
