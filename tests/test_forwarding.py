"""Tests for switch forwarding: routing decisions, ECMP, delivery."""

from repro.baselines.nocache import NoCache
from repro.net.addresses import pip_pod, pip_rack
from repro.net.node import Layer, ecmp_index
from repro.net.packet import Packet, PacketKind
from repro.vnet.gateway import Gateway
from repro.vnet.hypervisor import Host

from conftest import small_network, tiny_spec


def make_data_packet(src_pip, dst_pip, flow_id=1, seq=0):
    packet = Packet(PacketKind.DATA, flow_id=flow_id, seq=seq,
                    payload_bytes=100, src_vip=0, dst_vip=1,
                    outer_src=src_pip, outer_dst=dst_pip)
    packet.resolved = True
    return packet


def test_ecmp_index_is_deterministic_and_in_range():
    for key in range(100):
        for n in (1, 2, 3, 7):
            index = ecmp_index(key, 42, n)
            assert 0 <= index < n
            assert index == ecmp_index(key, 42, n)


def test_ecmp_spreads_across_paths():
    choices = {ecmp_index(key, 7, 4) for key in range(64)}
    assert choices == {0, 1, 2, 3}


def test_same_rack_delivery():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst = network.hosts[1]  # same rack (2 servers per rack)
    assert pip_rack(src.pip) == pip_rack(dst.pip)
    packet = make_data_packet(src.pip, dst.pip)
    packet.dst_vip = next(iter(dst.vms))
    src.reforward(packet)
    network.engine.run()
    # host -> tor -> host: exactly one switch traversed
    assert packet.hops == 1


def test_cross_pod_delivery_traverses_five_switches():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst = next(h for h in network.hosts if pip_pod(h.pip) != pip_pod(src.pip))
    packet = make_data_packet(src.pip, dst.pip)
    packet.dst_vip = next(iter(dst.vms))
    src.reforward(packet)
    network.engine.run()
    # tor, spine, core, spine, tor
    assert packet.hops == 5


def test_same_pod_cross_rack_traverses_three_switches():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst = next(h for h in network.hosts
               if pip_pod(h.pip) == pip_pod(src.pip)
               and pip_rack(h.pip) != pip_rack(src.pip))
    packet = make_data_packet(src.pip, dst.pip)
    packet.dst_vip = next(iter(dst.vms))
    src.reforward(packet)
    network.engine.run()
    assert packet.hops == 3


def test_unknown_host_pip_dropped_at_tor():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    bogus = src.pip + 1000  # same rack bits unlikely; use same-rack host idx
    from repro.net.addresses import make_pip
    bogus = make_pip(pip_pod(src.pip), pip_rack(src.pip), 99)
    packet = make_data_packet(src.pip, bogus)
    tor = network.fabric.tor_of(pip_pod(src.pip), pip_rack(src.pip))
    drops_before = tor.stats.drops
    src.reforward(packet)
    network.engine.run()
    assert tor.stats.drops == drops_before + 1


def test_switch_byte_counters_increase():
    network = small_network(NoCache(), num_vms=8)
    src, dst = network.hosts[0], network.hosts[-1]
    packet = make_data_packet(src.pip, dst.pip)
    packet.dst_vip = next(iter(dst.vms))
    src.reforward(packet)
    network.engine.run()
    total = sum(s.stats.bytes for s in network.fabric.switches)
    assert total == packet.wire_bytes * packet.hops


def test_gateway_resolution_and_forwarding():
    network = small_network(NoCache(), num_vms=8)
    src = network.hosts[0]
    dst_vip = 5
    dst_host = network.host_of(dst_vip)
    packet = Packet(PacketKind.DATA, flow_id=3, seq=0, payload_bytes=64,
                    src_vip=0, dst_vip=dst_vip, outer_src=src.pip)
    delivered = []
    dst_host.endpoints[dst_vip] = type(
        "E", (), {"on_packet": staticmethod(lambda p: delivered.append(p))})
    src.send(packet)
    network.engine.run()
    assert delivered == [packet]
    assert packet.resolved
    assert packet.outer_dst == dst_host.pip
    assert packet.gateway_visits == 1
