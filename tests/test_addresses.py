"""Tests for hierarchical PIPs and flat VIPs."""

import pytest

from repro.net.addresses import (
    MAX_HOSTS_PER_RACK,
    MAX_PODS,
    MAX_RACKS_PER_POD,
    UNRESOLVED,
    format_pip,
    format_vip,
    make_pip,
    pip_host,
    pip_pod,
    pip_rack,
    split_pip,
)


def test_roundtrip():
    pip = make_pip(3, 7, 42)
    assert pip_pod(pip) == 3
    assert pip_rack(pip) == 7
    assert pip_host(pip) == 42
    assert split_pip(pip) == (3, 7, 42)


def test_zero_coordinates():
    assert split_pip(make_pip(0, 0, 0)) == (0, 0, 0)


def test_max_coordinates():
    pip = make_pip(MAX_PODS - 1, MAX_RACKS_PER_POD - 1, MAX_HOSTS_PER_RACK - 1)
    assert split_pip(pip) == (MAX_PODS - 1, MAX_RACKS_PER_POD - 1,
                              MAX_HOSTS_PER_RACK - 1)


def test_distinct_hosts_get_distinct_pips():
    seen = set()
    for pod in range(4):
        for rack in range(4):
            for host in range(4):
                seen.add(make_pip(pod, rack, host))
    assert len(seen) == 64


@pytest.mark.parametrize("pod,rack,host", [
    (-1, 0, 0),
    (0, -1, 0),
    (0, 0, -1),
    (MAX_PODS, 0, 0),
    (0, MAX_RACKS_PER_POD, 0),
    (0, 0, MAX_HOSTS_PER_RACK),
])
def test_out_of_range_raises(pod, rack, host):
    with pytest.raises(ValueError):
        make_pip(pod, rack, host)


def test_format_helpers():
    assert format_pip(make_pip(1, 2, 3)) == "pip(1.2.3)"
    assert format_pip(UNRESOLVED) == "pip(unresolved)"
    assert format_vip(9) == "vip(9)"
